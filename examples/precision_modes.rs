//! Storage-precision modes: the same workload solved over `f64` and `f32`
//! coordinate stores.
//!
//! The nearest-center scans are DRAM-bound at the paper's million-point
//! scale, so `f32` storage halves the bytes each scan pulls — while the
//! reported covering radius is still certified in `f64` (recomputed from
//! the stored rows with `f64` accumulation), so quality numbers never
//! silently degrade.  Run with:
//!
//! ```text
//! cargo run --release --example precision_modes
//! ```

use kcenter::prelude::*;
use kcenter_metric::Scalar;
use std::time::Instant;

fn solve_at<S: Scalar>(spec: &DatasetSpec, seed: u64, k: usize) -> (f64, std::time::Duration) {
    let dataset = spec.build_at::<S>(seed);
    let start = Instant::now();
    let solution = GonzalezConfig::new(k)
        .with_parallel_scan(true)
        .solve(&dataset.space)
        .expect("GON runs");
    (solution.radius, start.elapsed())
}

fn main() {
    let spec = DatasetSpec::Gau {
        n: 200_000,
        k_prime: 25,
    };
    let (k, seed) = (25, 42);
    println!("workload: {} (k = {k}, seed = {seed})", spec.describe());

    let (r64, t64) = solve_at::<f64>(&spec, seed, k);
    let (r32, t32) = solve_at::<f32>(&spec, seed, k);

    println!("f64 storage: radius {r64:.6}  ({t64:?})");
    println!("f32 storage: radius {r32:.6}  ({t32:?})");
    println!(
        "radius drift {:.3e} (input rounding only; both radii are f64-certified)",
        (r64 - r32).abs()
    );
    println!(
        "scan speedup f32 vs f64: {:.2}x",
        t64.as_secs_f64() / t32.as_secs_f64().max(1e-9)
    );
}
