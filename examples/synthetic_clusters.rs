//! Recovering planted clusters: generates the paper's three synthetic
//! families (UNIF, GAU, UNB) and checks how well each algorithm's solution
//! value tracks the planted structure as k crosses the true cluster count
//! k' — the effect behind Tables 2 and 4 (the objective collapses once
//! k ≥ k').
//!
//! ```text
//! cargo run --release --example synthetic_clusters
//! ```

use kcenter::prelude::*;

fn report(space: &VecSpace, family: &str, k_values: &[usize]) {
    println!(
        "\n=== {family} (n = {}) ===",
        kcenter_metric::MetricSpace::len(space)
    );
    println!("{:>6} {:>14} {:>14} {:>14}", "k", "MRG", "EIM", "GON");
    for &k in k_values {
        let mrg = MrgConfig::new(k)
            .with_unchecked_capacity()
            .run(space)
            .expect("MRG failed");
        let eim = EimConfig::new(k)
            .with_seed(3)
            .run(space)
            .expect("EIM failed");
        let gon = GonzalezConfig::new(k).solve(space).expect("GON failed");
        println!(
            "{:>6} {:>14.4} {:>14.4} {:>14.4}",
            k, mrg.solution.radius, eim.solution.radius, gon.radius
        );
    }
}

fn main() {
    let n = 30_000;
    let k_prime = 10;
    let ks = [2usize, 5, 10, 20, 40];

    let unif = VecSpace::from_flat(UnifGenerator::new(n).generate_flat(1));
    report(&unif, "UNIF (no planted clusters)", &ks);

    let gau = VecSpace::from_flat(GauGenerator::new(n, k_prime).generate_flat(1));
    report(&gau, "GAU (10 balanced planted clusters)", &ks);

    let unb = VecSpace::from_flat(UnbGenerator::new(n, k_prime).generate_flat(1));
    report(&unb, "UNB (half the points in one cluster)", &ks);

    println!(
        "\nNote how the clustered families show a sharp drop in the objective once k reaches k' = {k_prime},\n\
         while UNIF decreases smoothly — the same qualitative picture as Tables 2-4 in the paper."
    );
}
