//! The spatial-grid assignment arm: same centers, fewer distance pairs.
//!
//! Every solver in the workspace spends its time in one of two scans —
//! "relax each point's nearest-center distance against the newest center"
//! (Gonzalez selection) and "find each point's nearest center" (assignment
//! and the coreset weights round).  Both are `O(n·k)` dense scans; the
//! `kcenter_metric::grid` module buckets the flat rows into an axis-aligned
//! grid and serves the same scans from the occupied cells, visiting only
//! candidates that can still win.  The arm is bit-identical to the dense
//! scans — same comparison values, same lowest-index tie-breaking — so the
//! determinism tuple just grows to `(seed, precision, kernel, assign)`.
//!
//! This example pins each arm in turn (the library equivalent of the CLI's
//! `--assign` / the `KCENTER_ASSIGN` variable), solves the same clustered
//! instance, and shows: identical centers and certified radius, and the
//! scan telemetry proving which arm actually ran.  Run with:
//!
//! ```text
//! cargo run --release --example grid_assignment
//! ```

use kcenter::metric::grid;
use kcenter::prelude::*;
use std::time::Instant;

fn main() {
    // A clustered workload is where bucketing pays: most cells are empty,
    // so each query touches a handful of candidates instead of all k.
    let spec = DatasetSpec::Gau {
        n: 200_000,
        k_prime: 25,
    };
    let dataset = spec.build(42);
    let space = &dataset.space;
    let k = 50;
    println!("workload: {} (seed 42), k = {k}", spec.describe());

    let mut outcomes = Vec::new();
    for arm in [
        AssignChoice::Fixed(AssignMode::Dense),
        AssignChoice::Fixed(AssignMode::Grid),
    ] {
        grid::set_choice(arm);
        grid::reset_scan_counts();
        let start = Instant::now();
        let solution = GonzalezConfig::new(k).solve(space).expect("gonzalez solve");
        let labels = assign(space, &solution.centers);
        let wall = start.elapsed();
        let (grid_scans, dense_scans) = grid::scan_counts();
        println!(
            "{arm:>5}: radius {:.6}, first centers {:?}, selection + assignment \
             in {:.1}ms ({grid_scans} grid / {dense_scans} dense scans)",
            solution.radius,
            &solution.centers[..4.min(solution.centers.len())],
            wall.as_secs_f64() * 1e3,
        );
        outcomes.push((solution.centers, solution.radius, labels));
    }
    grid::set_choice(AssignChoice::Auto);

    // The promise the parity proptests pin down across every solver: the
    // grid arm is an execution strategy, not an approximation.
    let (dense, grid_arm) = (&outcomes[0], &outcomes[1]);
    assert_eq!(dense.0, grid_arm.0, "centers must be bit-identical");
    assert_eq!(dense.1, grid_arm.1, "certified radii must be bit-identical");
    assert_eq!(dense.2, grid_arm.2, "labels must be bit-identical");
    println!("dense and grid arms agree bit-for-bit; `auto` picks per scan shape");
}
