//! Multi-round MRG (Section 3.3): when one machine cannot hold the k·m
//! centers produced by the first round, MRG keeps reducing for additional
//! rounds, paying +2 in the approximation factor per extra round.  This
//! example shrinks the per-machine capacity step by step and reports how the
//! round count, the proven factor, and the actual solution value react.
//!
//! ```text
//! cargo run --release --example multi_round
//! ```

use kcenter::prelude::*;

fn main() {
    let n = 60_000;
    let k = 20;
    let machines = 40;
    println!("UNIF data set: n = {n}, k = {k}, m = {machines} machines\n");
    let points = UnifGenerator::new(n).generate_flat(9);
    let space = VecSpace::from_flat(points);

    let gon = GonzalezConfig::new(k).solve(&space).expect("GON failed");
    println!("GON baseline: value = {:.4}\n", gon.radius);

    println!(
        "{:>10} {:>18} {:>10} {:>14} {:>14}",
        "capacity", "two-round ok?", "rounds", "proven factor", "value"
    );
    // From a comfortable two-round capacity down to barely above n/m.
    let per_machine = n / machines;
    let capacities = [
        per_machine + k * machines, // the paper's two-round capacity
        per_machine + k * machines / 2,
        per_machine + k * machines / 4,
        per_machine + k * 4,
        per_machine + k + 1,
    ];
    for capacity in capacities {
        let cluster = ClusterConfig::new(machines, capacity);
        let two_round_ok = cluster.allows_two_round(n, k);
        match MrgConfig::new(k)
            .with_machines(machines)
            .with_capacity(capacity)
            .run(&space)
        {
            Ok(result) => println!(
                "{:>10} {:>18} {:>10} {:>14} {:>14.4}",
                capacity,
                if two_round_ok { "yes" } else { "no" },
                result.mapreduce_rounds,
                result.approximation_factor,
                result.solution.radius,
            ),
            Err(e) => println!(
                "{:>10} {:>18} failed: {e}",
                capacity,
                if two_round_ok { "yes" } else { "no" }
            ),
        }
    }

    println!(
        "\nEvery extra reduction round adds 2 to the proven approximation factor (Lemma 3), yet the\n\
         measured solution values barely move — the same observation the paper makes for the two-round case."
    );
}
