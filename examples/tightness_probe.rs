//! Probing MRG's approximation factor in practice — the paper's future-work
//! question ("The approximation factor of four for MRG is tight. ... How
//! likely are such cases in practice?").
//!
//! The probe reruns MRG on one small instance hundreds of times while
//! randomising the two adversarial degrees of freedom the tightness example
//! relies on: the assignment of points to machines and the GON seeding.
//! Ratios are measured against the exact (brute-force) optimum.
//!
//! ```text
//! cargo run --release --example tightness_probe
//! ```

use kcenter::algorithms::tightness::TightnessProbe;
use kcenter::prelude::*;

fn main() {
    // A 16-point instance with four tight groups of unequal diameter — small
    // enough for brute force, structured enough that bad partitions hurt.
    let mut points = Vec::new();
    for (cx, cy, spread) in [
        (0.0, 0.0, 0.5),
        (40.0, 0.0, 1.0),
        (0.0, 40.0, 2.0),
        (40.0, 40.0, 4.0),
    ] {
        points.push(Point::xy(cx, cy));
        points.push(Point::xy(cx + spread, cy));
        points.push(Point::xy(cx, cy + spread));
        points.push(Point::xy(cx + spread, cy + spread));
    }

    println!(
        "{:>3} {:>8} {:>12} {:>12} {:>12} {:>14}",
        "k", "trials", "best", "mean", "worst", "proven bound"
    );
    for k in [2usize, 3, 4, 6] {
        // Capacity 8 forces one or two reduction rounds; for k = 6 the
        // per-machine chunks are no larger than k, which is exactly the
        // "sample cannot shrink" condition the paper discusses after
        // Lemma 3 — the probe reports it as an error.
        match TightnessProbe::new(k, 400)
            .with_cluster(3, 8)
            .with_seed(99)
            .run(&points)
        {
            Ok(report) => println!(
                "{:>3} {:>8} {:>12.3} {:>12.3} {:>12.3} {:>14.1}{}",
                k,
                report.trials,
                report.best_ratio,
                report.mean_ratio,
                report.worst_ratio,
                report.proven_factor,
                if report.bound_violated() {
                    "  BOUND VIOLATED (bug!)"
                } else {
                    ""
                },
            ),
            Err(e) => println!("{k:>3}      MRG cannot finish with capacity 8: {e}"),
        }
    }

    println!(
        "\nEven with hundreds of adversarially-randomised partitions and seedings, the observed\n\
         ratio stays far below the worst-case factor — the empirical answer the paper anticipated."
    );
}
