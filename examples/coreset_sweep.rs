//! Build one weighted coreset, sweep many `(k, φ)` instances on it.
//!
//! EIM's sample `C = S ∪ R` is normally recomputed from scratch for every
//! run; the coreset layer factors that work out.  This example builds a
//! Gonzalez-seeded weighted coreset of a 100k-point GAU workload once (as
//! MapReduce rounds, so the build cost lands in the same simulated-time
//! accounting as everything else), then solves a 3×3 `(k, φ)` grid on the
//! summary and compares quality and simulated time against rerunning EIM
//! per cell.  Run with:
//!
//! ```text
//! cargo run --release --example coreset_sweep
//! ```

use kcenter::prelude::*;
use std::time::Duration;

fn ms(d: Duration) -> String {
    format!("{:.1}ms", d.as_secs_f64() * 1e3)
}

fn main() {
    let spec = DatasetSpec::Gau {
        n: 100_000,
        k_prime: 25,
    };
    let seed = 42;
    let (ks, phis) = (vec![10usize, 25, 50], vec![1.0f64, 4.0, 8.0]);
    let dataset = spec.build(seed);
    let space = &dataset.space;
    println!("workload: {} (seed {seed})", spec.describe());

    // Build once: three labelled MapReduce rounds (local Gonzalez per
    // reducer, merge, weights + certification).
    let coreset = GonzalezCoresetConfig::new(1_000)
        .with_machines(50)
        .build(space)
        .expect("coreset build");
    println!(
        "coreset: {} representatives covering {} points, construction radius {:.4}, \
         {} rounds, simulated {}",
        coreset.len(),
        coreset.total_weight(),
        coreset.construction_radius(),
        coreset.stats().num_rounds_labelled("coreset"),
        ms(coreset.stats().simulated_time()),
    );

    // Solve many: each k costs O(k · t) on the 1,000-row summary, and the
    // certificate bounds the full-data radius without rescanning anything.
    let mut sweep_simulated = coreset.stats().simulated_time();
    let mut solve_cluster = Cluster::unchecked(ClusterConfig::new(50, coreset.len()));
    let mut eim_simulated = Duration::ZERO;
    for &k in &ks {
        let sol = coreset
            .solve_on_cluster(
                k,
                SequentialSolver::Gonzalez,
                FirstCenter::default(),
                &mut solve_cluster,
                &format!("sweep solve k={k}"),
            )
            .expect("coreset solve");
        let certified = sol.certify(space);
        for &phi in &phis {
            let rerun = EimConfig::new(k)
                .with_machines(50)
                .with_phi(phi)
                .with_seed(seed)
                .run(space)
                .expect("EIM rerun");
            eim_simulated += rerun.stats.simulated_time();
            println!(
                "k={k:>3} phi={phi:>3}: coreset certified {certified:.4} (bound {:.4}) \
                 | eim rerun {:.4} in {}",
                sol.radius_bound,
                rerun.solution.radius,
                ms(rerun.stats.simulated_time()),
            );
        }
    }
    sweep_simulated += solve_cluster.stats().simulated_time();

    println!(
        "sweep-via-coreset simulated {} vs per-cell EIM reruns {} -> {:.2}x",
        ms(sweep_simulated),
        ms(eim_simulated),
        eim_simulated.as_secs_f64() / sweep_simulated.as_secs_f64().max(1e-9),
    );
}
