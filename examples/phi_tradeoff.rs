//! The φ trade-off (Section 6, Tables 6 and 7): lowering the pivot-rank
//! parameter φ of the EIM sampling scheme below the guarantee threshold of
//! 5.15 makes it markedly faster while the solution values stay acceptable —
//! and occasionally even improve, because fewer perimeter points are
//! sampled.
//!
//! ```text
//! cargo run --release --example phi_tradeoff
//! ```

use kcenter::prelude::*;

fn main() {
    let n = 40_000;
    let k_prime = 25;
    let k = 5;
    // Epsilon near 1/ln n keeps the sampling threshold below n at this
    // scale, so the sampling loop actually runs (at the paper's n = 200,000
    // the default 0.1 behaves the same way).
    let epsilon = 0.12;

    println!("GAU data set: n = {n}, k' = {k_prime}, clustering with k = {k}");
    let points = GauGenerator::new(n, k_prime).generate_flat(11);
    let space = VecSpace::from_flat(points);

    let gon = GonzalezConfig::new(k).solve(&space).expect("GON failed");
    println!("GON baseline: value = {:.4}\n", gon.radius);

    println!(
        "{:>6} {:>14} {:>16} {:>12} {:>12}",
        "phi", "value", "simulated (s)", "iterations", "sample size"
    );
    for phi in [1.0, 4.0, 6.0, 8.0] {
        let result = EimConfig::new(k)
            .with_epsilon(epsilon)
            .with_phi(phi)
            .with_seed(5)
            .run(&space)
            .expect("EIM failed");
        let guarantee = if phi > kcenter::algorithms::select::PHI_GUARANTEE_THRESHOLD {
            ""
        } else {
            "  (below the 5.15 guarantee threshold)"
        };
        println!(
            "{:>6} {:>14.4} {:>16.4} {:>12} {:>12}{guarantee}",
            phi,
            result.solution.radius,
            result.stats.simulated_time().as_secs_f64(),
            result.iterations,
            result.sample_size,
        );
    }
}
