//! A larger run in the spirit of the paper's headline claim: on big inputs
//! the two-round MRG is dramatically faster than the sequential baseline
//! (the paper reports roughly two orders of magnitude at n = 1,000,000)
//! while giving essentially the same solution value.
//!
//! The default size is 300,000 points so the example finishes in seconds;
//! pass a different point count as the first argument to go bigger:
//!
//! ```text
//! cargo run --release --example massive_uniform -- 1000000
//! ```

use kcenter::prelude::*;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);
    let k = 50;
    println!("UNIF data set: n = {n}, k = {k}, 50 simulated machines");

    let generate_start = Instant::now();
    let points = UnifGenerator::new(n).generate_flat(123);
    let space = VecSpace::from_flat(points);
    println!("generated in {:?}\n", generate_start.elapsed());

    // Sequential baseline, with the rayon-accelerated inner scan so the
    // comparison against MRG is conservative.
    let start = Instant::now();
    let gon = GonzalezConfig::new(k)
        .with_parallel_scan(true)
        .solve(&space)
        .expect("GON failed");
    let gon_wall = start.elapsed();

    let mrg = MrgConfig::new(k).run(&space).expect("MRG failed");
    let mrg_simulated = mrg.stats.simulated_time();
    let mrg_wall = mrg.stats.wall_time();

    println!("GON : value = {:10.4}   wall = {gon_wall:?}", gon.radius);
    println!(
        "MRG : value = {:10.4}   simulated = {mrg_simulated:?}   wall = {mrg_wall:?}   rounds = {}",
        mrg.solution.radius, mrg.mapreduce_rounds
    );

    let speedup_simulated = gon_wall.as_secs_f64() / mrg_simulated.as_secs_f64().max(1e-9);
    let quality_ratio = mrg.solution.radius / gon.radius.max(1e-12);
    println!(
        "\nMRG is {speedup_simulated:.0}x faster than the sequential baseline under the paper's runtime metric,\n\
         with a solution value {quality_ratio:.3}x the baseline's — the paper's headline observation."
    );
}
