//! Quickstart: cluster a synthetic Gaussian data set with all three
//! algorithm families from the paper and compare their solution values and
//! (simulated) runtimes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kcenter::prelude::*;

fn main() {
    // The paper's GAU family: n points spread over k' Gaussian clusters
    // whose centers are uniform in a cube (sigma = 1/10 of the cube side).
    let n = 50_000;
    let k_prime = 25;
    let k = 25;
    println!("generating GAU data set: n = {n}, k' = {k_prime}");
    let points = GauGenerator::new(n, k_prime).generate_flat(42);
    let space = VecSpace::from_flat(points);

    // Sequential baseline: Gonzalez's greedy 2-approximation (GON).
    let start = std::time::Instant::now();
    let gon = GonzalezConfig::new(k).solve(&space).expect("GON failed");
    let gon_time = start.elapsed();
    println!(
        "GON  : value = {:10.4}   wall = {:8.3?}   (2-approximation, sequential)",
        gon.radius, gon_time
    );

    // MRG: MapReduce Gonzalez on 50 simulated machines, two rounds.
    let mrg = MrgConfig::new(k).run(&space).expect("MRG failed");
    println!(
        "MRG  : value = {:10.4}   simulated = {:8.3?}   wall = {:8.3?}   rounds = {}   ({}-approximation)",
        mrg.solution.radius,
        mrg.stats.simulated_time(),
        mrg.stats.wall_time(),
        mrg.mapreduce_rounds,
        mrg.approximation_factor,
    );

    // EIM: the iterative-sampling scheme with the original phi = 8.
    let eim = EimConfig::new(k)
        .with_seed(7)
        .run(&space)
        .expect("EIM failed");
    println!(
        "EIM  : value = {:10.4}   simulated = {:8.3?}   wall = {:8.3?}   rounds = {}   sample = {}{}",
        eim.solution.radius,
        eim.stats.simulated_time(),
        eim.stats.wall_time(),
        eim.mapreduce_rounds,
        eim.sample_size,
        if eim.fell_back_to_sequential { "   (fell back to sequential GON)" } else { "" },
    );

    // Where did the points go?  Report the largest and smallest cluster.
    let assignment = kcenter::algorithms::evaluate::assign(&space, &mrg.solution.centers);
    let sizes =
        kcenter::algorithms::evaluate::cluster_sizes(&assignment, mrg.solution.centers.len());
    println!(
        "MRG cluster sizes: min = {}, max = {} (over {} clusters)",
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap(),
        sizes.len()
    );
}
