//! No-op stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types but
//! never serialises anything yet, so the derives expand to nothing.  When a
//! real serialisation backend lands, swap this for the genuine crate.

use proc_macro::TokenStream;

/// Derives a (no-op) `Serialize` implementation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives a (no-op) `Deserialize` implementation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
