//! Offline stand-in for the `rand` crate.
//!
//! Provides the surface the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range}` and
//! `seq::SliceRandom::shuffle` — backed by xoshiro256++ (public domain,
//! Blackman & Vigna).  Streams are deterministic per seed, which is all the
//! reproducibility protocol of the paper needs; they do **not** match the
//! byte streams of the real `rand` crate.

use std::ops::Range;

/// Core RNG interface: a source of raw random words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full `gen()` distribution
/// (unit interval for floats, full range for integers).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer/float types usable with `gen_range(lo..hi)`.
pub trait RangeSample: PartialOrd + Copy {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free bounded sampling; the tiny
                // modulo bias is irrelevant at the span sizes used here.
                let r = rng.next_u64() as u128;
                (lo as i128 + (r * span >> 64) as i128) as $t
            }
        }
    )*};
}

impl_range_int!(usize, u64, u32, i64, i32);

impl RangeSample for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range requires a non-empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `[range.start, range.end)`.
    #[inline]
    fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RangeSample, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn f64_lies_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut r = StdRng::seed_from_u64(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
