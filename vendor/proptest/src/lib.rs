//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset the workspace's property tests use: the `proptest!`
//! macro, the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, `collection::vec`, `any`, `prop_oneof!`, `Just`, and
//! the `prop_assert*`/`prop_assume!` macros.  Inputs are drawn from a
//! seeded xoshiro256++ stream (deterministic per test name), without
//! shrinking: a failing case panics with the standard assertion message.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG driving input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a deterministic generator from a seed.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of random test inputs.
pub trait Strategy: Sized {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy { gen: Box::new(move |rng| self.generate(rng)) }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    gen: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Primitive types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: property tests feed these into metrics.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: PhantomData }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run-time configuration accepted by `proptest!`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-test seed derived from the test path (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Expands to `continue`, so it must appear directly inside the per-case
/// loop body (the position `proptest!` puts the test body in).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Chooses uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let choices = vec![$($crate::Strategy::boxed($strategy)),+];
        $crate::OneOf { choices }
    }};
}

/// The strategy produced by [`prop_oneof!`].
pub struct OneOf<T> {
    /// The equally likely alternatives.
    pub choices: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.choices.len() as u64) as usize;
        self.choices[idx].generate(rng)
    }
}

/// Defines property tests, mirroring proptest's macro.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::seeded($crate::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
    // With a leading config attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // Without a config attribute.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
