//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-definition surface the workspace uses
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`,
//! `BenchmarkId`, `black_box`) with straightforward wall-clock timing:
//! every benchmark is warmed up once, then timed over up to `sample_size`
//! iterations or until the configured measurement time is spent, and the
//! mean per-iteration time is printed as one plain-text line.  No
//! statistics, plotting, or baseline storage.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new<N: fmt::Display, P: fmt::Display>(function_name: N, parameter: P) -> Self {
        Self { name: format!("{function_name}/{parameter}") }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Runs closures under the timer.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Duration,
}

impl Bencher {
    /// Times `f`, storing the mean per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also primes caches/allocations
        let start = Instant::now();
        let mut iters = 0u32;
        while iters < self.samples as u32 {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        self.last_mean = start.elapsed() / iters.max(1);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the warm-up is always one iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            budget: self.measurement_time,
            last_mean: Duration::ZERO,
        };
        f(&mut bencher);
        self.criterion
            .report(&format!("{}/{}", self.name, id), bencher.last_mean);
        self
    }

    /// Benchmarks `f` with an explicit input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting happens eagerly, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility with the real crate.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }

    fn report(&mut self, name: &str, mean: Duration) {
        println!("{name:<60} {mean:>12.3?}/iter");
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
