//! Offline stand-in for the `rayon` crate.
//!
//! Implements the parallel-iterator surface the workspace uses with plain
//! `std::thread::scope` fan-out: every *expensive* combinator (`map`,
//! `filter_map`, `flat_map_iter`, `for_each`, `reduce`) splits its items
//! into one contiguous chunk per available core and joins in order, while
//! cheap adaptors (`enumerate`, `zip`, `cloned`) restructure sequentially.
//! Semantics match rayon for the pure closures used here; there is no work
//! stealing, so callers should keep their own sequential-cutoff heuristics
//! (the workspace does).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Process-wide override of the worker-thread count; `0` means "no
/// override" (use the host's available parallelism).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins the number of worker threads every parallel stage may use (real
/// rayon configures this through `ThreadPoolBuilder::num_threads`; the
/// stand-in keeps one process-global knob).  `0` clears the override and
/// returns to the host's available parallelism.  `1` makes every
/// combinator run strictly sequentially on the calling thread.
pub fn set_num_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Number of worker threads a parallel stage may use: the
/// [`set_num_threads`] override when set, the host's available
/// parallelism otherwise.
pub fn current_num_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Below this many items a "parallel" stage runs sequentially: spawning
/// scoped threads costs tens of microseconds, which dominates tiny inputs.
const SPAWN_CUTOFF: usize = 2;

/// Applies `f` to every item, in parallel, preserving order.
fn parallel_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: F) -> Vec<R> {
    parallel_map_with_threads(items, current_num_threads(), f)
}

/// [`parallel_map`] with an explicit worker-thread budget: splits the
/// items into one contiguous chunk per thread, runs the chunks as
/// `std::thread::scope` tasks, and joins in order — results land at
/// their item's position, so the merge order is the ascending input
/// order regardless of which worker finishes first.  A budget of 1 (or
/// fewer items than [`SPAWN_CUTOFF`]) runs sequentially on the caller.
pub fn parallel_map_with_threads<T: Send, R: Send, F: Fn(T) -> R + Sync>(
    items: Vec<T>,
    threads: usize,
    f: F,
) -> Vec<R> {
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if n < SPAWN_CUTOFF || threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut src: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut dst: Vec<Option<R>> = Vec::with_capacity(n);
    dst.resize_with(n, || None);
    let chunk = n.div_ceil(threads);
    thread::scope(|scope| {
        let f = &f;
        for (s, d) in src.chunks_mut(chunk).zip(dst.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot_in, slot_out) in s.iter_mut().zip(d.iter_mut()) {
                    let item = slot_in.take().expect("item consumed twice");
                    *slot_out = Some(f(item));
                }
            });
        }
    });
    dst.into_iter()
        .map(|r| r.expect("worker thread skipped an item"))
        .collect()
}

/// The eager "parallel iterator": a staged pipeline over an owned item list.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter { items: parallel_map(self.items, f) }
    }

    /// Parallel map followed by dropping `None`s, preserving order.
    pub fn filter_map<R: Send, F: Fn(T) -> Option<R> + Sync>(self, f: F) -> ParIter<R> {
        ParIter { items: parallel_map(self.items, f).into_iter().flatten().collect() }
    }

    /// Keeps the items satisfying the predicate.
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
        self.filter_map(|t| if f(&t) { Some(t) } else { None })
    }

    /// Maps every item to a sequential iterator and concatenates the results
    /// in order (rayon's `flat_map_iter`).
    pub fn flat_map_iter<I, F>(self, f: F) -> ParIter<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        I::IntoIter: Send,
        F: Fn(T) -> I + Sync,
    {
        let nested: Vec<Vec<I::Item>> =
            parallel_map(self.items, |t| f(t).into_iter().collect::<Vec<_>>());
        ParIter { items: nested.into_iter().flatten().collect() }
    }

    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Zips with another parallel iterator, truncating to the shorter side.
    pub fn zip<U: Send>(self, other: impl IntoParallelIterator<Item = U>) -> ParIter<(T, U)> {
        ParIter {
            items: self
                .items
                .into_iter()
                .zip(other.into_par_iter().items)
                .collect(),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, f);
    }

    /// Parallel reduction: chunks fold with `op` starting from `identity()`,
    /// then the per-chunk results fold sequentially.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        let n = self.items.len();
        let threads = current_num_threads().min(n.max(1));
        if n < SPAWN_CUTOFF || threads <= 1 {
            return self.items.into_iter().fold(identity(), &op);
        }
        let chunk = n.div_ceil(threads);
        let mut src: Vec<Option<T>> = self.items.into_iter().map(Some).collect();
        let partials: Vec<T> = thread::scope(|scope| {
            let op = &op;
            let identity = &identity;
            let handles: Vec<_> = src
                .chunks_mut(chunk)
                .map(|s| {
                    scope.spawn(move || {
                        s.iter_mut()
                            .map(|slot| slot.take().expect("item consumed twice"))
                            .fold(identity(), op)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Reduction without an identity; `None` on empty input.
    pub fn reduce_with<OP>(self, op: OP) -> Option<T>
    where
        OP: Fn(T, T) -> T + Sync,
    {
        if self.items.is_empty() {
            return None;
        }
        let mut iter = self.items.into_iter();
        let first = iter.next().unwrap();
        Some(iter.fold(first, op))
    }

    /// Whether every item satisfies the predicate, with early termination:
    /// workers poll a shared flag and stop once any item fails.
    pub fn all<F: Fn(T) -> bool + Sync>(self, f: F) -> bool {
        use std::sync::atomic::{AtomicBool, Ordering};
        let n = self.items.len();
        let threads = current_num_threads().min(n.max(1));
        if n < SPAWN_CUTOFF || threads <= 1 {
            return self.items.into_iter().all(f);
        }
        let failed = AtomicBool::new(false);
        let mut src: Vec<Option<T>> = self.items.into_iter().map(Some).collect();
        let chunk = n.div_ceil(threads);
        thread::scope(|scope| {
            let f = &f;
            let failed = &failed;
            for s in src.chunks_mut(chunk) {
                scope.spawn(move || {
                    for slot in s.iter_mut() {
                        if failed.load(Ordering::Relaxed) {
                            return;
                        }
                        let item = slot.take().expect("item consumed twice");
                        if !f(item) {
                            failed.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                });
            }
        });
        !failed.into_inner()
    }

    /// Sums the items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Collects into any `FromIterator` collection, preserving order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<'a, T: Clone + Send + Sync> ParIter<&'a T> {
    /// Clones every referenced item.
    pub fn cloned(self) -> ParIter<T> {
        ParIter { items: self.items.into_iter().cloned().collect() }
    }

    /// Copies every referenced item.
    pub fn copied(self) -> ParIter<T>
    where
        T: Copy,
    {
        ParIter { items: self.items.into_iter().copied().collect() }
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// Builds the iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

/// `par_iter()` over shared references.
pub trait IntoParallelRefIterator<'data> {
    /// The referenced item type.
    type Item: 'data + Sync;
    /// Builds the iterator of references.
    fn par_iter(&'data self) -> ParIter<&'data Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter { items: self.iter().collect() }
    }
}

/// `par_iter_mut()` over exclusive references.
pub trait IntoParallelRefMutIterator<'data> {
    /// The referenced item type.
    type Item: 'data + Send;
    /// Builds the iterator of mutable references.
    fn par_iter_mut(&'data mut self) -> ParIter<&'data mut Self::Item>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = T;
    fn par_iter_mut(&'data mut self) -> ParIter<&'data mut T> {
        ParIter { items: self.iter_mut().collect() }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'data mut self) -> ParIter<&'data mut T> {
        ParIter { items: self.iter_mut().collect() }
    }
}

/// Chunked slice access, mirroring `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous chunks of at most `size` items.
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        assert!(size > 0, "chunk size must be positive");
        ParIter { items: self.chunks(size).collect() }
    }
}

/// Chunked mutable slice access, mirroring `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable contiguous chunks of at most `size`
    /// items.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        assert!(size > 0, "chunk size must be positive");
        ParIter { items: self.chunks_mut(size).collect() }
    }
}

/// The glob-import module, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_matches_sequential_fold() {
        let v: Vec<f64> = (0..5_000).map(|i| i as f64).collect();
        let par = v.par_iter().cloned().reduce(|| f64::NEG_INFINITY, f64::max);
        assert_eq!(par, 4_999.0);
    }

    #[test]
    fn par_iter_mut_zip_for_each_writes_through() {
        let mut dst = vec![0usize; 1000];
        let src: Vec<usize> = (0..1000).collect();
        dst.par_iter_mut().zip(src.par_iter()).for_each(|(d, &s)| *d = s + 1);
        assert!(dst.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn flat_map_iter_concatenates_in_order() {
        let out: Vec<usize> = (0..4usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .flat_map_iter(|c| (0..3).map(move |i| c * 3 + i))
            .collect();
        assert_eq!(out, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn explicit_thread_budget_preserves_order_at_any_width() {
        let v: Vec<usize> = (0..997).collect();
        let expected: Vec<usize> = v.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = crate::parallel_map_with_threads(v.clone(), threads, |x| x * 3 + 1);
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn thread_override_is_read_back_and_clearable() {
        crate::set_num_threads(3);
        assert_eq!(crate::current_num_threads(), 3);
        crate::set_num_threads(0);
        let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(crate::current_num_threads(), host);
    }

    #[test]
    fn par_chunks_covers_everything() {
        let v: Vec<u32> = (0..10_000).collect();
        let total: u32 = v
            .par_chunks(1024)
            .map(|c| c.iter().sum::<u32>())
            .collect::<Vec<_>>()
            .into_iter()
            .sum();
        assert_eq!(total, v.iter().sum::<u32>());
    }
}
