//! Offline stand-in for `serde`: the two marker traits plus no-op derive
//! macros.  Nothing in the workspace serialises yet; the derives exist so
//! the public types already carry the annotations a real backend will use.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
