//! Metric spaces: a point collection plus a distance.
//!
//! The clustering algorithms address points by [`PointId`] and only ever ask
//! the space for distances between indexed points.  Two concrete spaces are
//! provided:
//!
//! * [`VecSpace`] computes distances on demand from coordinates — the
//!   representation the paper uses for its experiments, because shipping a
//!   full `n × n` matrix between simulated machines would be wasteful.
//! * [`MatrixSpace`] pre-computes the full symmetric [`DistanceMatrix`] —
//!   only viable for small `n` but convenient for exact tests and for graphs
//!   given directly by edge weights.

use crate::distance::{Distance, Euclidean};
use crate::matrix::DistanceMatrix;
use crate::point::Point;
use crate::PointId;
use rayon::prelude::*;
use std::sync::Arc;

/// A finite metric space addressable by point index.
pub trait MetricSpace: Send + Sync {
    /// Number of points in the space.
    fn len(&self) -> usize;

    /// Whether the space contains no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distance between the points with indices `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    fn distance(&self, a: PointId, b: PointId) -> f64;

    /// Name of the underlying distance function (for reports).
    fn distance_name(&self) -> &'static str;

    /// Whether the underlying distance satisfies the metric axioms.
    fn is_metric(&self) -> bool;

    /// For each point in `targets`, its distance to point `from`.
    fn distances_from(&self, from: PointId, targets: &[PointId]) -> Vec<f64> {
        targets.iter().map(|&t| self.distance(from, t)).collect()
    }

    /// Minimum distance from point `from` to any point in `to`.
    ///
    /// Returns `f64::INFINITY` when `to` is empty (no center yet covers the
    /// point), mirroring the convention used by Gonzalez-style algorithms.
    fn distance_to_set(&self, from: PointId, to: &[PointId]) -> f64 {
        to.iter()
            .map(|&t| self.distance(from, t))
            .fold(f64::INFINITY, f64::min)
    }
}

/// A metric space backed by an owned point collection and a distance
/// function evaluated on demand.
///
/// Cloning a `VecSpace` is cheap: the point storage is shared through an
/// [`Arc`], which is exactly what the simulated MapReduce machines need
/// (each reducer sees the same immutable point table and works on its own
/// index subset).
#[derive(Clone)]
pub struct VecSpace<D: Distance = Euclidean> {
    points: Arc<Vec<Point>>,
    dist: D,
}

impl<D: Distance> VecSpace<D> {
    /// Creates a space over `points` with the given distance function.
    ///
    /// # Panics
    ///
    /// Panics if the points do not all share the same dimension.
    pub fn with_distance(points: Vec<Point>, dist: D) -> Self {
        if let Some(first) = points.first() {
            let d0 = first.dim();
            assert!(
                points.iter().all(|p| p.dim() == d0),
                "all points in a VecSpace must share one dimension"
            );
        }
        Self { points: Arc::new(points), dist }
    }

    /// The coordinate dimension of the points, or `None` if the space is
    /// empty.
    pub fn dim(&self) -> Option<usize> {
        self.points.first().map(Point::dim)
    }

    /// The point with index `id`.
    pub fn point(&self, id: PointId) -> &Point {
        &self.points[id]
    }

    /// All points, in index order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The distance function.
    pub fn metric(&self) -> &D {
        &self.dist
    }

    /// Distance between two explicit points (not necessarily members of the
    /// space).
    pub fn point_distance(&self, a: &Point, b: &Point) -> f64 {
        self.dist.distance(a, b)
    }

    /// Parallel computation of `distance_to_set` for every point index in
    /// `from`, using rayon.  This is the hot inner scan of Gonzalez's
    /// algorithm when run on large partitions.
    pub fn par_distances_to_set(&self, from: &[PointId], to: &[PointId]) -> Vec<f64> {
        from.par_iter()
            .map(|&f| self.distance_to_set(f, to))
            .collect()
    }

    /// Materialises the full distance matrix of this space.
    ///
    /// Intended for small instances (tests, brute-force OPT); memory is
    /// `O(n^2)`.
    pub fn to_matrix(&self) -> DistanceMatrix {
        DistanceMatrix::from_space(self)
    }
}

impl<D: Distance> std::fmt::Debug for VecSpace<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VecSpace(n={}, dim={:?}, distance={})",
            self.points.len(),
            self.dim(),
            self.dist.name()
        )
    }
}

impl VecSpace<Euclidean> {
    /// Creates a Euclidean space over `points` — the configuration used by
    /// every experiment in the paper.
    pub fn new(points: Vec<Point>) -> Self {
        Self::with_distance(points, Euclidean)
    }
}

impl<D: Distance> MetricSpace for VecSpace<D> {
    fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn distance(&self, a: PointId, b: PointId) -> f64 {
        self.dist.distance(&self.points[a], &self.points[b])
    }

    fn distance_name(&self) -> &'static str {
        self.dist.name()
    }

    fn is_metric(&self) -> bool {
        self.dist.is_metric()
    }
}

/// A metric space backed by a fully materialised [`DistanceMatrix`].
///
/// Useful when the input is given as a weighted complete graph rather than
/// as coordinates, and for exact verification on small instances.
#[derive(Clone)]
pub struct MatrixSpace {
    matrix: Arc<DistanceMatrix>,
    metric: bool,
}

impl MatrixSpace {
    /// Wraps a distance matrix, declaring whether it satisfies the metric
    /// axioms (callers can check with [`DistanceMatrix::verify_metric`]).
    pub fn new(matrix: DistanceMatrix) -> Self {
        let metric = matrix.verify_metric(1e-9).is_ok();
        Self { matrix: Arc::new(matrix), metric }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.matrix
    }
}

impl MetricSpace for MatrixSpace {
    fn len(&self) -> usize {
        self.matrix.len()
    }

    #[inline]
    fn distance(&self, a: PointId, b: PointId) -> f64 {
        self.matrix.get(a, b)
    }

    fn distance_name(&self) -> &'static str {
        "precomputed-matrix"
    }

    fn is_metric(&self) -> bool {
        self.metric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Manhattan;

    fn square() -> Vec<Point> {
        vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(0.0, 1.0),
            Point::xy(1.0, 1.0),
        ]
    }

    #[test]
    fn vecspace_basic_queries() {
        let s = VecSpace::new(square());
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.dim(), Some(2));
        assert!((s.distance(0, 3) - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.distance_name(), "euclidean");
        assert!(s.is_metric());
    }

    #[test]
    fn vecspace_with_alternative_distance() {
        let s = VecSpace::with_distance(square(), Manhattan);
        assert!((s.distance(0, 3) - 2.0).abs() < 1e-12);
        assert_eq!(s.distance_name(), "manhattan");
    }

    #[test]
    fn empty_space_is_empty() {
        let s = VecSpace::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.dim(), None);
    }

    #[test]
    #[should_panic(expected = "share one dimension")]
    fn mixed_dimensions_rejected() {
        VecSpace::new(vec![Point::xy(0.0, 0.0), Point::xyz(0.0, 0.0, 0.0)]);
    }

    #[test]
    fn distance_to_set_takes_minimum_and_handles_empty() {
        let s = VecSpace::new(square());
        assert_eq!(s.distance_to_set(3, &[]), f64::INFINITY);
        let d = s.distance_to_set(3, &[0, 1]);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distances_from_matches_pointwise() {
        let s = VecSpace::new(square());
        let d = s.distances_from(0, &[1, 2, 3]);
        assert_eq!(d.len(), 3);
        assert!((d[0] - 1.0).abs() < 1e-12);
        assert!((d[2] - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn par_distances_to_set_matches_sequential() {
        let s = VecSpace::new(square());
        let from = vec![0, 1, 2, 3];
        let to = vec![0];
        let par = s.par_distances_to_set(&from, &to);
        let seq: Vec<f64> = from.iter().map(|&f| s.distance_to_set(f, &to)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn clone_shares_point_storage() {
        let s = VecSpace::new(square());
        let c = s.clone();
        assert!(Arc::ptr_eq(&s.points, &c.points));
    }

    #[test]
    fn matrix_space_round_trips_vecspace_distances() {
        let s = VecSpace::new(square());
        let m = MatrixSpace::new(s.to_matrix());
        assert_eq!(m.len(), 4);
        assert!(m.is_metric());
        for a in 0..4 {
            for b in 0..4 {
                assert!((m.distance(a, b) - s.distance(a, b)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matrix_space_detects_non_metric() {
        // Distances violating the triangle inequality: d(0,2) > d(0,1)+d(1,2).
        let mut m = DistanceMatrix::zeros(3);
        m.set(0, 1, 1.0);
        m.set(1, 2, 1.0);
        m.set(0, 2, 10.0);
        let space = MatrixSpace::new(m);
        assert!(!space.is_metric());
    }
}
