//! Metric spaces: a point collection plus a distance.
//!
//! The clustering algorithms address points by [`PointId`] and only ever ask
//! the space for distances between indexed points.  Two concrete spaces are
//! provided:
//!
//! * [`VecSpace`] computes distances on demand from coordinates held in a
//!   contiguous [`FlatPoints`] store — the representation the paper uses for
//!   its experiments, because shipping a full `n × n` matrix between
//!   simulated machines would be wasteful.  It is generic over the storage
//!   [`Scalar`] (`VecSpace<Euclidean, f32>` halves the scan bandwidth).
//! * [`MatrixSpace`] pre-computes the full symmetric [`DistanceMatrix`] —
//!   only viable for small `n` but convenient for exact tests and for graphs
//!   given directly by edge weights.
//!
//! # Comparison space and certification space
//!
//! The hot scans (farthest-point selection, nearest-center relaxation) only
//! compare distances, so the trait exposes them in *comparison space*:
//! [`MetricSpace::cmp_distance`] returns an order-equivalent surrogate of
//! type [`MetricSpace::Cmp`] — the storage scalar for [`VecSpace`], so an
//! `f32` space runs these scans entirely in `f32` (squared Euclidean, no
//! `sqrt` per pair) — and [`MetricSpace::cmp_to_distance`] converts a final
//! winner back to a real distance.
//!
//! Evaluation is different: a covering radius is a *reported* number, so
//! the verifiers use the `wide_cmp_*` family instead, which is also
//! order-equivalent but accumulated in `f64` from the stored rows.  Every
//! real-distance query (`distance`, `distance_to_set`, …) and every
//! `wide_cmp_*` scan is therefore exact `f64` arithmetic at any storage
//! precision; only the comparison-space selection scans run narrow.

use crate::distance::{Distance, Euclidean};
use crate::flat::FlatPoints;
use crate::kernel;
use crate::matrix::DistanceMatrix;
use crate::point::Point;
use crate::scalar::Scalar;
use crate::PointId;
use rayon::prelude::*;
use std::sync::Arc;

/// A finite metric space addressable by point index.
pub trait MetricSpace: Send + Sync {
    /// The comparison-space scalar: the type the selection scans run in.
    /// [`VecSpace`] sets this to its storage scalar; spaces with no reduced
    /// storage mode use `f64`.
    type Cmp: Scalar;

    /// Number of points in the space.
    fn len(&self) -> usize;

    /// Whether the space contains no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distance between the points with indices `a` and `b` (exact: `f64`
    /// accumulation regardless of the storage precision).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    fn distance(&self, a: PointId, b: PointId) -> f64;

    /// Name of the underlying distance function (for reports).
    fn distance_name(&self) -> &'static str;

    /// Whether the underlying distance satisfies the metric axioms.
    fn is_metric(&self) -> bool;

    /// Storage-precision name (`"f32"` / `"f64"` for coordinate-backed
    /// spaces); experiment reports record it next to the seed.
    fn precision_name(&self) -> &'static str {
        <Self::Cmp as Scalar>::NAME
    }

    /// The coordinate row of point `id` in the comparison scalar, when the
    /// space is backed by coordinates ([`VecSpace`] overrides this with
    /// its flat-store row).  The spatial grid (`crate::grid`) builds its
    /// geometry from these rows; spaces returning `None` always take the
    /// dense scans.
    fn coord_row(&self, id: PointId) -> Option<&[Self::Cmp]> {
        let _ = id;
        None
    }

    /// Whether the spatial grid's axis-aligned box distance is a valid
    /// lower bound for this space's comparison surrogates — i.e. the space
    /// has coordinate rows and a squared-Euclidean surrogate
    /// ([`crate::distance::Distance::supports_grid`]).  Defaults to
    /// `false` (dense scans only).
    fn grid_compatible(&self) -> bool {
        false
    }

    /// For each point in `targets`, its distance to point `from`.
    ///
    /// Coordinate-backed spaces override this to ride the dispatched kernel
    /// backend (`kernel::simd`), so batch reporting — the distance-matrix
    /// build in particular — is deterministic per `(precision, kernel)`.
    fn distances_from(&self, from: PointId, targets: &[PointId]) -> Vec<f64> {
        targets.iter().map(|&t| self.distance(from, t)).collect()
    }

    /// For each point in `targets`, its certification-space
    /// ([`MetricSpace::wide_cmp_distance`]) value to point `from`.
    ///
    /// Like [`MetricSpace::distances_from`] this is a batch *reporting*
    /// helper and may ride the dispatched kernel backend on
    /// coordinate-backed spaces (the lower-bound scans use it); the
    /// `wide_cmp_*` max/min certification scans do not go through it.
    fn wide_cmp_distances_from(&self, from: PointId, targets: &[PointId]) -> Vec<f64> {
        targets
            .iter()
            .map(|&t| self.wide_cmp_distance(from, t))
            .collect()
    }

    /// Minimum distance from point `from` to any point in `to`.
    ///
    /// Returns `f64::INFINITY` when `to` is empty (no center yet covers the
    /// point), mirroring the convention used by Gonzalez-style algorithms.
    fn distance_to_set(&self, from: PointId, to: &[PointId]) -> f64 {
        to.iter()
            .map(|&t| self.distance(from, t))
            .fold(f64::INFINITY, f64::min)
    }

    /// Like [`MetricSpace::distance_to_set`], but stops scanning `to` as
    /// soon as the running minimum drops to `stop_below` or less.
    ///
    /// The returned value is an upper bound on the true minimum and is exact
    /// whenever it exceeds `stop_below`.  Coverage checks ("is every point
    /// within radius `r`?") and max-of-min scans only need that much, and
    /// the early exit skips most of the center list once a nearby center has
    /// been seen.
    fn distance_to_set_bounded(&self, from: PointId, to: &[PointId], stop_below: f64) -> f64 {
        let mut best = f64::INFINITY;
        for &t in to {
            let d = self.distance(from, t);
            if d < best {
                best = d;
                if best <= stop_below {
                    break;
                }
            }
        }
        best
    }

    /// Comparison-space distance between two points: order-equivalent to
    /// [`MetricSpace::distance`] but possibly cheaper (squared Euclidean at
    /// storage precision for the default [`VecSpace`]).  Defaults to the
    /// distance rounded into [`MetricSpace::Cmp`].
    #[inline]
    fn cmp_distance(&self, a: PointId, b: PointId) -> Self::Cmp {
        Self::Cmp::from_f64(self.distance(a, b))
    }

    /// Converts a comparison-space value back to a real distance.
    #[inline]
    fn cmp_to_distance(&self, c: Self::Cmp) -> f64 {
        c.to_f64()
    }

    /// Converts a real distance into comparison space (the inverse of
    /// [`MetricSpace::cmp_to_distance`] on non-negative values, up to `Cmp`
    /// rounding).
    #[inline]
    fn distance_to_cmp(&self, d: f64) -> Self::Cmp {
        Self::Cmp::from_f64(d)
    }

    /// Comparison-space [`MetricSpace::distance_to_set`].
    fn cmp_distance_to_set(&self, from: PointId, to: &[PointId]) -> Self::Cmp {
        let mut best = Self::Cmp::INFINITY;
        for &t in to {
            let d = self.cmp_distance(from, t);
            if d < best {
                best = d;
            }
        }
        best
    }

    /// Comparison-space [`MetricSpace::distance_to_set_bounded`].
    fn cmp_distance_to_set_bounded(
        &self,
        from: PointId,
        to: &[PointId],
        stop_below: Self::Cmp,
    ) -> Self::Cmp {
        let mut best = Self::Cmp::INFINITY;
        for &t in to {
            let d = self.cmp_distance(from, t);
            if d < best {
                best = d;
                if best <= stop_below {
                    break;
                }
            }
        }
        best
    }

    /// Certification-space distance: order-equivalent to the distance (like
    /// `cmp_distance`) but always an `f64` accumulated from the stored rows.
    /// The covering-radius and coverage verifiers scan on this so that
    /// reported quality numbers are exact at any storage precision.
    /// Defaults to the distance itself.
    #[inline]
    fn wide_cmp_distance(&self, a: PointId, b: PointId) -> f64 {
        self.distance(a, b)
    }

    /// Converts a certification-space value back to a real distance.
    #[inline]
    fn wide_cmp_to_distance(&self, w: f64) -> f64 {
        w
    }

    /// Converts a real distance into certification space (the inverse of
    /// [`MetricSpace::wide_cmp_to_distance`] on non-negative values).
    #[inline]
    fn distance_to_wide_cmp(&self, d: f64) -> f64 {
        d
    }

    /// Certification-space [`MetricSpace::distance_to_set`].
    fn wide_cmp_distance_to_set(&self, from: PointId, to: &[PointId]) -> f64 {
        let mut best = f64::INFINITY;
        for &t in to {
            let d = self.wide_cmp_distance(from, t);
            if d < best {
                best = d;
            }
        }
        best
    }

    /// Certification-space [`MetricSpace::distance_to_set_bounded`].
    fn wide_cmp_distance_to_set_bounded(
        &self,
        from: PointId,
        to: &[PointId],
        stop_below: f64,
    ) -> f64 {
        let mut best = f64::INFINITY;
        for &t in to {
            let d = self.wide_cmp_distance(from, t);
            if d < best {
                best = d;
                if best <= stop_below {
                    break;
                }
            }
        }
        best
    }

    /// The fused Gonzalez relaxation in comparison space: lowers
    /// `nearest[i]` to `min(nearest[i], cmp_distance(subset[i], center))`
    /// for every `i` in one pass.
    ///
    /// # Panics
    ///
    /// Panics if `subset` and `nearest` have different lengths.
    fn relax_nearest(&self, subset: &[PointId], center: PointId, nearest: &mut [Self::Cmp]) {
        assert_eq!(
            subset.len(),
            nearest.len(),
            "subset/nearest length mismatch"
        );
        for (slot, &p) in nearest.iter_mut().zip(subset) {
            let d = self.cmp_distance(p, center);
            if d < *slot {
                *slot = d;
            }
        }
    }

    /// Chunked parallel variant of [`MetricSpace::relax_nearest`] with a
    /// sequential cutoff; identical results (chunking only partitions the
    /// index space).
    fn par_relax_nearest(&self, subset: &[PointId], center: PointId, nearest: &mut [Self::Cmp]) {
        assert_eq!(
            subset.len(),
            nearest.len(),
            "subset/nearest length mismatch"
        );
        if subset.len() < kernel::PAR_CUTOFF {
            return self.relax_nearest(subset, center, nearest);
        }
        nearest
            .par_chunks_mut(kernel::PAR_CHUNK)
            .zip(subset.par_chunks(kernel::PAR_CHUNK))
            .for_each(|(near_chunk, sub_chunk)| {
                for (slot, &p) in near_chunk.iter_mut().zip(sub_chunk) {
                    let d = self.cmp_distance(p, center);
                    if d < *slot {
                        *slot = d;
                    }
                }
            });
    }

    /// The fused Gonzalez iteration: [`MetricSpace::relax_nearest`] plus
    /// the farthest-point argmax in one pass.  Returns the position (into
    /// `subset`) and comparison-space value of the maximum updated entry,
    /// ties toward the smaller position; `(0, -inf)` on an empty subset.
    fn relax_nearest_max(
        &self,
        subset: &[PointId],
        center: PointId,
        nearest: &mut [Self::Cmp],
    ) -> (usize, Self::Cmp) {
        assert_eq!(
            subset.len(),
            nearest.len(),
            "subset/nearest length mismatch"
        );
        let mut best = (0usize, Self::Cmp::NEG_INFINITY);
        for (i, (slot, &p)) in nearest.iter_mut().zip(subset).enumerate() {
            let d = self.cmp_distance(p, center);
            if d < *slot {
                *slot = d;
            }
            if *slot > best.1 {
                best = (i, *slot);
            }
        }
        best
    }

    /// Chunked parallel variant of [`MetricSpace::relax_nearest_max`] with
    /// a sequential cutoff; bit-identical results (per-chunk winners
    /// combine in index order, first maximum wins).
    fn par_relax_nearest_max(
        &self,
        subset: &[PointId],
        center: PointId,
        nearest: &mut [Self::Cmp],
    ) -> (usize, Self::Cmp) {
        assert_eq!(
            subset.len(),
            nearest.len(),
            "subset/nearest length mismatch"
        );
        if subset.len() < kernel::PAR_CUTOFF {
            return self.relax_nearest_max(subset, center, nearest);
        }
        const CHUNK: usize = kernel::PAR_CHUNK;
        nearest
            .par_chunks_mut(CHUNK)
            .zip(subset.par_chunks(CHUNK))
            .enumerate()
            .map(|(chunk_idx, (near_chunk, sub_chunk))| {
                let (pos, v) = self.relax_nearest_max(sub_chunk, center, near_chunk);
                (chunk_idx * CHUNK + pos, v)
            })
            .reduce_with(|a, b| if b.1 > a.1 { b } else { a })
            .unwrap_or((0, Self::Cmp::NEG_INFINITY))
    }

    /// [`MetricSpace::relax_nearest_max`] over the whole space (the
    /// identity subset): `nearest[i]` pairs with point `i` directly, so
    /// implementations can stream rows without any index indirection.
    /// Callers that know their subset is `0..len` (the full-space solvers)
    /// use this to skip both the id loads and the identity re-check.
    fn relax_all_max(&self, center: PointId, nearest: &mut [Self::Cmp]) -> (usize, Self::Cmp) {
        assert_eq!(self.len(), nearest.len(), "space/nearest length mismatch");
        let mut best = (0usize, Self::Cmp::NEG_INFINITY);
        for (i, slot) in nearest.iter_mut().enumerate() {
            let d = self.cmp_distance(i, center);
            if d < *slot {
                *slot = d;
            }
            if *slot > best.1 {
                best = (i, *slot);
            }
        }
        best
    }

    /// Chunked parallel variant of [`MetricSpace::relax_all_max`] with a
    /// sequential cutoff; bit-identical results.
    fn par_relax_all_max(&self, center: PointId, nearest: &mut [Self::Cmp]) -> (usize, Self::Cmp) {
        assert_eq!(self.len(), nearest.len(), "space/nearest length mismatch");
        if self.len() < kernel::PAR_CUTOFF {
            return self.relax_all_max(center, nearest);
        }
        const CHUNK: usize = kernel::PAR_CHUNK;
        nearest
            .par_chunks_mut(CHUNK)
            .enumerate()
            .map(|(chunk_idx, near_chunk)| {
                let offset = chunk_idx * CHUNK;
                let mut best = (0usize, Self::Cmp::NEG_INFINITY);
                for (i, slot) in near_chunk.iter_mut().enumerate() {
                    let d = self.cmp_distance(offset + i, center);
                    if d < *slot {
                        *slot = d;
                    }
                    if *slot > best.1 {
                        best = (offset + i, *slot);
                    }
                }
                best
            })
            .reduce_with(|a, b| if b.1 > a.1 { b } else { a })
            .unwrap_or((0, Self::Cmp::NEG_INFINITY))
    }
}

/// Whether `subset` is exactly the identity `0..n` — the full-space case
/// the row-streaming kernels exploit (no index indirection).
pub fn is_identity_subset(subset: &[PointId], n: usize) -> bool {
    subset.len() == n && subset.iter().enumerate().all(|(i, &p)| i == p)
}

/// A metric space backed by a contiguous [`FlatPoints`] store and a distance
/// function evaluated on demand over coordinate rows.
///
/// The second type parameter is the storage [`Scalar`]: `VecSpace<Euclidean>`
/// (i.e. `VecSpace<Euclidean, f64>`) is the exact reproduction mode, and
/// `VecSpace<Euclidean, f32>` halves the memory traffic of every
/// comparison-space scan while the `wide_cmp_*` certification scans keep the
/// reported quality numbers exact (see the module docs).
///
/// Cloning a `VecSpace` is cheap: the point storage is shared through an
/// [`Arc`], which is exactly what the simulated MapReduce machines need
/// (each reducer sees the same immutable point table and works on its own
/// index subset).
#[derive(Clone)]
pub struct VecSpace<D: Distance = Euclidean, S: Scalar = f64> {
    points: Arc<FlatPoints<S>>,
    dist: D,
}

impl<D: Distance, S: Scalar> VecSpace<D, S> {
    /// Creates a space directly over a flat store — the zero-copy path used
    /// by the data generators, at whatever precision the store carries.
    pub fn from_flat_with_distance(flat: FlatPoints<S>, dist: D) -> Self {
        Self {
            points: Arc::new(flat),
            dist,
        }
    }

    /// The coordinate dimension of the points, or `None` if the space is
    /// empty.
    pub fn dim(&self) -> Option<usize> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.points.dim())
        }
    }

    /// The flat coordinate store backing this space.
    pub fn flat(&self) -> &FlatPoints<S> {
        &self.points
    }

    /// The coordinate row of the point with index `id`.
    #[inline]
    pub fn row(&self, id: PointId) -> &[S] {
        self.points.row(id)
    }

    /// An owned [`Point`] copy of the point with index `id` (widened to
    /// `f64`).
    pub fn point(&self, id: PointId) -> Point {
        self.points.point(id)
    }

    /// All points materialised as owned [`Point`]s, in index order.
    ///
    /// This copies; iterate [`VecSpace::flat`] rows for zero-copy access.
    pub fn points(&self) -> Vec<Point> {
        self.points.to_points()
    }

    /// The distance function.
    pub fn metric(&self) -> &D {
        &self.dist
    }

    /// Distance between two explicit points (not necessarily members of the
    /// space); computed on their own `f64` coordinates.
    pub fn point_distance(&self, a: &Point, b: &Point) -> f64 {
        self.dist.distance(a, b)
    }

    /// Parallel computation of `distance_to_set` for every point index in
    /// `from`, using rayon.  This is the hot inner scan of Gonzalez's
    /// algorithm when run on large partitions.
    pub fn par_distances_to_set(&self, from: &[PointId], to: &[PointId]) -> Vec<f64> {
        if from.len() < kernel::PAR_CUTOFF {
            return from.iter().map(|&f| self.distance_to_set(f, to)).collect();
        }
        from.par_iter()
            .map(|&f| self.distance_to_set(f, to))
            .collect()
    }

    /// Materialises the full distance matrix of this space at `f64`.
    ///
    /// Intended for small instances (tests, brute-force OPT); memory is
    /// `O(n^2)`.
    pub fn to_matrix(&self) -> DistanceMatrix {
        self.to_matrix_at::<f64>()
    }

    /// Materialises the full distance matrix at an explicit storage
    /// precision (`to_matrix_at::<f32>()` halves the packed triangle's
    /// bytes; each entry is rounded once at storage).
    pub fn to_matrix_at<T: Scalar>(&self) -> DistanceMatrix<T> {
        DistanceMatrix::from_space(self)
    }
}

impl<D: Distance, S: Scalar> std::fmt::Debug for VecSpace<D, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VecSpace(n={}, dim={:?}, distance={}, precision={})",
            self.points.len(),
            self.dim(),
            self.dist.name(),
            S::NAME
        )
    }
}

impl<D: Distance> VecSpace<D, f64> {
    /// Creates an `f64` space over `points` with the given distance
    /// function.  (Pinned to `f64` so the storage scalar never has to be
    /// inferred from `Vec<Point>` input; build a [`FlatPoints`] at the
    /// target precision and use [`VecSpace::from_flat_with_distance`] for
    /// the reduced-precision mode.)
    ///
    /// # Panics
    ///
    /// Panics if the points do not all share the same dimension.
    pub fn with_distance(points: Vec<Point>, dist: D) -> Self {
        Self::from_flat_with_distance(FlatPoints::from_points(&points), dist)
    }
}

impl VecSpace<Euclidean, f64> {
    /// Creates a Euclidean `f64` space over `points` — the configuration
    /// used by every experiment in the paper.
    pub fn new(points: Vec<Point>) -> Self {
        Self::with_distance(points, Euclidean)
    }
}

impl<S: Scalar> VecSpace<Euclidean, S> {
    /// Creates a Euclidean space directly over a flat store (at the store's
    /// own precision).
    pub fn from_flat(flat: FlatPoints<S>) -> Self {
        Self::from_flat_with_distance(flat, Euclidean)
    }
}

impl<D: Distance, S: Scalar> MetricSpace for VecSpace<D, S> {
    type Cmp = S;

    fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn distance(&self, a: PointId, b: PointId) -> f64 {
        self.dist
            .distance_slices(self.points.row(a), self.points.row(b))
    }

    fn distance_name(&self) -> &'static str {
        self.dist.name()
    }

    fn is_metric(&self) -> bool {
        self.dist.is_metric()
    }

    #[inline]
    fn coord_row(&self, id: PointId) -> Option<&[S]> {
        Some(self.points.row(id))
    }

    fn grid_compatible(&self) -> bool {
        self.dist.supports_grid()
    }

    fn distances_from(&self, from: PointId, targets: &[PointId]) -> Vec<f64> {
        // Batch reporting rides the dispatched (possibly width-pinned)
        // wide kernels: exact f64 accumulation from the stored rows, in
        // the active backend's pinned summation order.
        let row = self.points.row(from);
        targets
            .iter()
            .map(|&t| {
                self.dist.wide_surrogate_to_distance(
                    self.dist.wide_surrogate_auto(row, self.points.row(t)),
                )
            })
            .collect()
    }

    fn wide_cmp_distances_from(&self, from: PointId, targets: &[PointId]) -> Vec<f64> {
        let row = self.points.row(from);
        targets
            .iter()
            .map(|&t| self.dist.wide_surrogate_auto(row, self.points.row(t)))
            .collect()
    }

    fn distance_to_set(&self, from: PointId, to: &[PointId]) -> f64 {
        // Scan in certification (f64-wide surrogate) space, convert the
        // winner once — exact at any storage precision, one sqrt total.
        self.wide_cmp_to_distance(self.wide_cmp_distance_to_set(from, to))
    }

    fn distance_to_set_bounded(&self, from: PointId, to: &[PointId], stop_below: f64) -> f64 {
        // Distances are non-negative, so a negative threshold can never be
        // reached — and mapping it through e.g. `d*d` would flip its sign.
        let wide_stop = if stop_below < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.distance_to_wide_cmp(stop_below)
        };
        let wide = self.wide_cmp_distance_to_set_bounded(from, to, wide_stop);
        self.wide_cmp_to_distance(wide)
    }

    #[inline]
    fn cmp_distance(&self, a: PointId, b: PointId) -> S {
        self.dist.surrogate(self.points.row(a), self.points.row(b))
    }

    #[inline]
    fn cmp_to_distance(&self, c: S) -> f64 {
        self.dist.surrogate_to_distance(c)
    }

    #[inline]
    fn distance_to_cmp(&self, d: f64) -> S {
        self.dist.distance_to_surrogate(d)
    }

    fn cmp_distance_to_set(&self, from: PointId, to: &[PointId]) -> S {
        let row = self.points.row(from);
        let mut best = S::INFINITY;
        for &t in to {
            let d = self.dist.surrogate(row, self.points.row(t));
            if d < best {
                best = d;
            }
        }
        best
    }

    fn cmp_distance_to_set_bounded(&self, from: PointId, to: &[PointId], stop_below: S) -> S {
        let row = self.points.row(from);
        let mut best = S::INFINITY;
        for &t in to {
            let d = self.dist.surrogate(row, self.points.row(t));
            if d < best {
                best = d;
                if best <= stop_below {
                    break;
                }
            }
        }
        best
    }

    #[inline]
    fn wide_cmp_distance(&self, a: PointId, b: PointId) -> f64 {
        self.dist
            .wide_surrogate(self.points.row(a), self.points.row(b))
    }

    #[inline]
    fn wide_cmp_to_distance(&self, w: f64) -> f64 {
        self.dist.wide_surrogate_to_distance(w)
    }

    #[inline]
    fn distance_to_wide_cmp(&self, d: f64) -> f64 {
        self.dist.distance_to_wide_surrogate(d)
    }

    fn wide_cmp_distance_to_set(&self, from: PointId, to: &[PointId]) -> f64 {
        let row = self.points.row(from);
        let mut best = f64::INFINITY;
        for &t in to {
            let d = self.dist.wide_surrogate(row, self.points.row(t));
            if d < best {
                best = d;
            }
        }
        best
    }

    fn wide_cmp_distance_to_set_bounded(
        &self,
        from: PointId,
        to: &[PointId],
        stop_below: f64,
    ) -> f64 {
        let row = self.points.row(from);
        let mut best = f64::INFINITY;
        for &t in to {
            let d = self.dist.wide_surrogate(row, self.points.row(t));
            if d < best {
                best = d;
                if best <= stop_below {
                    break;
                }
            }
        }
        best
    }

    fn relax_nearest(&self, subset: &[PointId], center: PointId, nearest: &mut [S]) {
        assert_eq!(
            subset.len(),
            nearest.len(),
            "subset/nearest length mismatch"
        );
        let center_row = self.points.row(center);
        for (slot, &p) in nearest.iter_mut().zip(subset) {
            let d = self.dist.surrogate(self.points.row(p), center_row);
            if d < *slot {
                *slot = d;
            }
        }
    }

    fn par_relax_nearest(&self, subset: &[PointId], center: PointId, nearest: &mut [S]) {
        assert_eq!(
            subset.len(),
            nearest.len(),
            "subset/nearest length mismatch"
        );
        if subset.len() < kernel::PAR_CUTOFF {
            return self.relax_nearest(subset, center, nearest);
        }
        let center_row = self.points.row(center);
        nearest
            .par_chunks_mut(kernel::PAR_CHUNK)
            .zip(subset.par_chunks(kernel::PAR_CHUNK))
            .for_each(|(near_chunk, sub_chunk)| {
                for (slot, &p) in near_chunk.iter_mut().zip(sub_chunk) {
                    let d = self.dist.surrogate(self.points.row(p), center_row);
                    if d < *slot {
                        *slot = d;
                    }
                }
            });
    }

    fn relax_nearest_max(
        &self,
        subset: &[PointId],
        center: PointId,
        nearest: &mut [S],
    ) -> (usize, S) {
        assert_eq!(
            subset.len(),
            nearest.len(),
            "subset/nearest length mismatch"
        );
        let flat = &*self.points;
        let center_row = flat.row(center);
        if is_identity_subset(subset, flat.len()) {
            self.dist
                .relax_rows_max(flat.coords(), flat.dim(), center_row, nearest)
        } else {
            self.dist
                .relax_ids_max(flat.coords(), flat.dim(), subset, center_row, nearest)
        }
    }

    fn par_relax_nearest_max(
        &self,
        subset: &[PointId],
        center: PointId,
        nearest: &mut [S],
    ) -> (usize, S) {
        assert_eq!(
            subset.len(),
            nearest.len(),
            "subset/nearest length mismatch"
        );
        if subset.len() < kernel::PAR_CUTOFF {
            return self.relax_nearest_max(subset, center, nearest);
        }
        if is_identity_subset(subset, self.points.len()) {
            return self.par_relax_all_max(center, nearest);
        }
        const CHUNK: usize = kernel::PAR_CHUNK;
        let flat = &*self.points;
        let dim = flat.dim();
        let center_row = flat.row(center);
        nearest
            .par_chunks_mut(CHUNK)
            .zip(subset.par_chunks(CHUNK))
            .enumerate()
            .map(|(chunk_idx, (near_chunk, sub_chunk))| {
                let (pos, v) =
                    self.dist
                        .relax_ids_max(flat.coords(), dim, sub_chunk, center_row, near_chunk);
                (chunk_idx * CHUNK + pos, v)
            })
            .reduce_with(|a, b| if b.1 > a.1 { b } else { a })
            .unwrap_or((0, S::NEG_INFINITY))
    }

    fn relax_all_max(&self, center: PointId, nearest: &mut [S]) -> (usize, S) {
        assert_eq!(
            self.points.len(),
            nearest.len(),
            "space/nearest length mismatch"
        );
        let flat = &*self.points;
        self.dist
            .relax_rows_max(flat.coords(), flat.dim(), flat.row(center), nearest)
    }

    fn par_relax_all_max(&self, center: PointId, nearest: &mut [S]) -> (usize, S) {
        assert_eq!(
            self.points.len(),
            nearest.len(),
            "space/nearest length mismatch"
        );
        if self.points.len() < kernel::PAR_CUTOFF {
            return self.relax_all_max(center, nearest);
        }
        const CHUNK: usize = kernel::PAR_CHUNK;
        let flat = &*self.points;
        let dim = flat.dim();
        let center_row = flat.row(center);
        // Row-streaming: hand each worker its contiguous coordinate block,
        // no index indirection at all.
        nearest
            .par_chunks_mut(CHUNK)
            .zip(flat.coords().par_chunks(CHUNK * dim))
            .enumerate()
            .map(|(chunk_idx, (near_chunk, coord_chunk))| {
                let (pos, v) = self
                    .dist
                    .relax_rows_max(coord_chunk, dim, center_row, near_chunk);
                (chunk_idx * CHUNK + pos, v)
            })
            .reduce_with(|a, b| if b.1 > a.1 { b } else { a })
            .unwrap_or((0, S::NEG_INFINITY))
    }
}

/// A metric space backed by a fully materialised [`DistanceMatrix`].
///
/// Useful when the input is given as a weighted complete graph rather than
/// as coordinates, and for exact verification on small instances.  Generic
/// over the matrix's storage [`Scalar`]: a `MatrixSpace<f32>` runs the
/// comparison-space scans on the stored `f32` entries (half the triangle's
/// bytes) while every reported distance widens exactly to `f64`.
#[derive(Clone)]
pub struct MatrixSpace<S: Scalar = f64> {
    matrix: Arc<DistanceMatrix<S>>,
    metric: bool,
}

impl<S: Scalar> MatrixSpace<S> {
    /// Wraps a distance matrix, declaring whether it satisfies the metric
    /// axioms (callers can check with [`DistanceMatrix::verify_metric`]).
    ///
    /// The triangle-inequality tolerance scales with the storage scalar's
    /// roundoff: storing an entry perturbs it by at most
    /// `UNIT_ROUNDOFF · |entry|`, so a genuinely metric instance can show a
    /// violation of up to ~3 rounding units of the largest entry at `f32` —
    /// far above the `1e-9` floor that suffices at `f64`.
    pub fn new(matrix: DistanceMatrix<S>) -> Self {
        let tol = 1e-9f64.max(8.0 * S::UNIT_ROUNDOFF * matrix.diameter());
        let metric = matrix.verify_metric(tol).is_ok();
        Self {
            matrix: Arc::new(matrix),
            metric,
        }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &DistanceMatrix<S> {
        &self.matrix
    }
}

impl<S: Scalar> MetricSpace for MatrixSpace<S> {
    type Cmp = S;

    fn len(&self) -> usize {
        self.matrix.len()
    }

    #[inline]
    fn distance(&self, a: PointId, b: PointId) -> f64 {
        self.matrix.get(a, b)
    }

    #[inline]
    fn cmp_distance(&self, a: PointId, b: PointId) -> S {
        self.matrix.cmp_get(a, b)
    }

    fn distance_name(&self) -> &'static str {
        "precomputed-matrix"
    }

    fn is_metric(&self) -> bool {
        self.metric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Manhattan;

    fn square() -> Vec<Point> {
        vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(0.0, 1.0),
            Point::xy(1.0, 1.0),
        ]
    }

    #[test]
    fn vecspace_basic_queries() {
        let s = VecSpace::new(square());
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.dim(), Some(2));
        assert!((s.distance(0, 3) - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.distance_name(), "euclidean");
        assert_eq!(s.precision_name(), "f64");
        assert!(s.is_metric());
    }

    #[test]
    fn f32_space_runs_cmp_scans_in_f32_and_certifies_in_f64() {
        let s: VecSpace<Euclidean, f32> =
            VecSpace::from_flat(FlatPoints::<f32>::from_points(&square()));
        assert_eq!(s.precision_name(), "f32");
        // Comparison space is f32 (the storage scalar).
        let c: f32 = s.cmp_distance(0, 3);
        assert_eq!(c, 2.0f32);
        // Certification space is f64-accumulated from the f32 rows.
        assert_eq!(s.wide_cmp_distance(0, 3), 2.0f64);
        assert!((s.distance(0, 3) - 2f64.sqrt()).abs() < 1e-15);
        assert_eq!(s.distance_to_set(3, &[0, 1]), 1.0);
    }

    #[test]
    fn vecspace_with_alternative_distance() {
        let s = VecSpace::with_distance(square(), Manhattan);
        assert!((s.distance(0, 3) - 2.0).abs() < 1e-12);
        assert_eq!(s.distance_name(), "manhattan");
    }

    #[test]
    fn empty_space_is_empty() {
        let s = VecSpace::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.dim(), None);
    }

    #[test]
    #[should_panic(expected = "share one dimension")]
    fn mixed_dimensions_rejected() {
        VecSpace::new(vec![Point::xy(0.0, 0.0), Point::xyz(0.0, 0.0, 0.0)]);
    }

    #[test]
    fn from_flat_shares_no_copies() {
        let flat = FlatPoints::from_coords(vec![0.0, 0.0, 3.0, 4.0], 2).unwrap();
        let s = VecSpace::from_flat(flat);
        assert_eq!(s.len(), 2);
        assert!((s.distance(0, 1) - 5.0).abs() < 1e-12);
        assert_eq!(s.row(1), &[3.0, 4.0]);
        assert_eq!(s.point(1), Point::xy(3.0, 4.0));
    }

    #[test]
    fn distance_to_set_takes_minimum_and_handles_empty() {
        let s = VecSpace::new(square());
        assert_eq!(s.distance_to_set(3, &[]), f64::INFINITY);
        let d = s.distance_to_set(3, &[0, 1]);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_distance_to_set_is_exact_above_threshold() {
        let s = VecSpace::new(square());
        let exact = s.distance_to_set(3, &[0, 1, 2]);
        // Threshold below the true minimum: no early exit, exact result.
        assert_eq!(s.distance_to_set_bounded(3, &[0, 1, 2], 0.5), exact);
        // Generous threshold: may stop early but never understates.
        assert!(s.distance_to_set_bounded(3, &[0, 1, 2], 10.0) >= exact);
    }

    #[test]
    fn cmp_space_round_trips_to_distances() {
        let s = VecSpace::new(square());
        let cmp = s.cmp_distance(0, 3);
        assert!((cmp - 2.0).abs() < 1e-12, "squared surrogate expected");
        assert!((s.cmp_to_distance(cmp) - 2f64.sqrt()).abs() < 1e-12);
        assert!((s.distance_to_cmp(2f64.sqrt()) - 2.0).abs() < 1e-12);
        assert_eq!(
            s.cmp_to_distance(s.cmp_distance_to_set(3, &[0, 1])),
            s.distance_to_set(3, &[0, 1])
        );
    }

    #[test]
    fn wide_cmp_space_round_trips_to_distances() {
        let s: VecSpace<Euclidean, f32> =
            VecSpace::from_flat(FlatPoints::<f32>::from_points(&square()));
        let w = s.wide_cmp_distance(0, 3);
        assert_eq!(w, 2.0);
        assert_eq!(s.wide_cmp_to_distance(w), 2f64.sqrt());
        assert_eq!(s.distance_to_wide_cmp(2f64.sqrt()), 2.0000000000000004);
        assert_eq!(
            s.wide_cmp_to_distance(s.wide_cmp_distance_to_set(3, &[0, 1])),
            s.distance_to_set(3, &[0, 1])
        );
    }

    #[test]
    fn relax_nearest_matches_pairwise_minimum() {
        let s = VecSpace::new(square());
        let subset = vec![0, 1, 2, 3];
        let mut nearest = vec![f64::INFINITY; 4];
        s.relax_nearest(&subset, 0, &mut nearest);
        s.relax_nearest(&subset, 3, &mut nearest);
        for (i, &v) in nearest.iter().enumerate() {
            let naive = s.cmp_distance(i, 0).min(s.cmp_distance(i, 3));
            assert_eq!(v, naive);
        }
        let mut par = vec![f64::INFINITY; 4];
        s.par_relax_nearest(&subset, 0, &mut par);
        s.par_relax_nearest(&subset, 3, &mut par);
        assert_eq!(nearest, par);
    }

    #[test]
    fn distances_from_matches_pointwise() {
        let s = VecSpace::new(square());
        let d = s.distances_from(0, &[1, 2, 3]);
        assert_eq!(d.len(), 3);
        assert!((d[0] - 1.0).abs() < 1e-12);
        assert!((d[2] - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn par_distances_to_set_matches_sequential() {
        let s = VecSpace::new(square());
        let from = vec![0, 1, 2, 3];
        let to = vec![0];
        let par = s.par_distances_to_set(&from, &to);
        let seq: Vec<f64> = from.iter().map(|&f| s.distance_to_set(f, &to)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn clone_shares_point_storage() {
        let s = VecSpace::new(square());
        let c = s.clone();
        assert!(Arc::ptr_eq(&s.points, &c.points));
    }

    #[test]
    fn matrix_space_round_trips_vecspace_distances() {
        let s = VecSpace::new(square());
        let m = MatrixSpace::new(s.to_matrix());
        assert_eq!(m.len(), 4);
        assert!(m.is_metric());
        assert_eq!(m.precision_name(), "f64");
        for a in 0..4 {
            for b in 0..4 {
                assert!((m.distance(a, b) - s.distance(a, b)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn f32_matrix_space_compares_in_storage_and_reports_in_f64() {
        let s = VecSpace::new(square());
        let m = MatrixSpace::new(s.to_matrix_at::<f32>());
        assert_eq!(m.precision_name(), "f32");
        assert!(m.is_metric());
        let c: f32 = m.cmp_distance(0, 3);
        assert_eq!(c, 2f64.sqrt() as f32);
        // Reported distances widen the stored entry exactly.
        assert_eq!(m.distance(0, 3), (2f64.sqrt() as f32) as f64);
        assert!((m.distance(0, 3) - s.distance(0, 3)).abs() < 1e-7);
    }

    #[test]
    fn f32_matrix_space_tolerates_storage_rounding_of_metric_instances() {
        // Collinear points whose f32-rounded distances violate the triangle
        // inequality by ~7e-9 — storage rounding, not a real violation.  A
        // fixed 1e-9 tolerance would misclassify this as non-metric.
        let s = VecSpace::new(vec![
            Point::xy(0.0, 0.0),
            Point::xy(0.1, 0.0),
            Point::xy(0.3, 0.0),
        ]);
        let m = MatrixSpace::new(s.to_matrix_at::<f32>());
        assert!(m.is_metric(), "f32 rounding misread as a metric violation");
        // A genuine violation is still caught at f32 storage.
        let mut bad = DistanceMatrix::<f32>::zeros(3);
        bad.set(0, 1, 1.0);
        bad.set(1, 2, 1.0);
        bad.set(0, 2, 10.0);
        assert!(!MatrixSpace::new(bad).is_metric());
    }

    #[test]
    fn matrix_space_detects_non_metric() {
        // Distances violating the triangle inequality: d(0,2) > d(0,1)+d(1,2).
        let mut m = DistanceMatrix::<f64>::zeros(3);
        m.set(0, 1, 1.0);
        m.set(1, 2, 1.0);
        m.set(0, 2, 10.0);
        let space = MatrixSpace::new(m);
        assert!(!space.is_metric());
    }
}
