//! Contiguous structure-of-arrays point storage, generic over the storage
//! scalar.
//!
//! The hot loops of every algorithm in this workspace — the farthest-point
//! scans of GON, the per-reducer sub-procedures of MRG, and EIM's filter
//! rounds — stream over "distance from point *i* to one center" for millions
//! of *i*.  With one heap-allocated `Vec<f64>` per [`Point`] that scan pays a
//! pointer chase and a potential cache miss per point; storing all
//! coordinates in a single row-major buffer turns it into a linear walk that
//! runs at memory bandwidth.
//!
//! [`FlatPoints<S>`] is that buffer: `coords[i * dim .. (i + 1) * dim]` is
//! the coordinate row of point `i`, with `S` one of the two [`Scalar`]
//! instantiations:
//!
//! * `FlatPoints<f64>` (the default) stores coordinates exactly as
//!   generated/loaded — the exact reproduction mode;
//! * `FlatPoints<f32>` halves the bytes per coordinate.  The scan is
//!   DRAM-bound at the paper's million-point scale, so this is close to a
//!   free 2× on the comparison-space scans.  Each coordinate is rounded
//!   **once** at ingestion ([`Scalar::from_f64`], relative error `2^-24`);
//!   all certified quality numbers are then recomputed from the stored rows
//!   with `f64` accumulation (see [`crate::scalar`] for the contract and
//!   [`crate::kernel`] for the `wide_*` kernels), so reduced storage
//!   precision never silently degrades a reported covering radius.
//!
//! # When is `f32` storage safe to enable?
//!
//! Because certification is structural, the question reduces to whether the
//! *input rounding* is acceptable, not whether scans will drift:
//!
//! * **Safe:** data whose coordinates carry fewer than ~7 significant
//!   decimal digits of real information — all of this repo's workloads
//!   (UNIF/GAU/UNB generator output, the Poker Hand grid, KDD-style
//!   features), and generally anything measured rather than computed.
//!   Selections may differ from the `f64` run only where candidates were
//!   already tied to within `2^-24` relative — and the reported radius is
//!   still the exact `f64` covering radius of the stored (rounded) points.
//! * **Not safe:** coordinates whose magnitude exceeds the storage
//!   scalar's safe bound ([`crate::Scalar::MAX_ABS_COORD`], `1e15` at
//!   `f32`) — beyond it a squared distance could overflow to infinity
//!   inside the comparison-space kernels, so the store *rejects* such
//!   coordinates at construction rather than silently keeping them — or
//!   workloads that need distances between near-equal points resolved
//!   below the `2^-24`-relative input rounding (e.g. near-duplicate
//!   detection at 1e-8 relative scale).
//!
//! [`Point`] remains the owned, `f64`-coordinate, per-point view type used
//! at API boundaries; conversions in both directions are provided (widening
//! is lossless, narrowing rounds to nearest).

use crate::point::{Point, PointError};
use crate::scalar::Scalar;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a coordinate is storable: finite and within the scalar's safe
/// magnitude (beyond [`Scalar::MAX_ABS_COORD`] a squared distance could
/// overflow to infinity inside the comparison-space kernels, silently
/// degenerating the farthest-point selection).
#[inline]
fn coord_ok<S: Scalar>(c: S) -> bool {
    c.is_finite() && c.to_f64().abs() <= S::MAX_ABS_COORD
}

/// A dense, row-major point store: all coordinates in one contiguous buffer.
///
/// Invariants: `coords.len() == len * dim`, every coordinate is finite and
/// within [`Scalar::MAX_ABS_COORD`], and `dim > 0` whenever `len > 0` (an
/// empty store may carry `dim == 0`, which means "dimension not yet
/// known").
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatPoints<S: Scalar = f64> {
    coords: Vec<S>,
    dim: usize,
    len: usize,
}

impl<S: Scalar> FlatPoints<S> {
    /// An empty store whose dimension is fixed by the first pushed row.
    pub fn empty() -> Self {
        Self {
            coords: Vec::new(),
            dim: 0,
            len: 0,
        }
    }

    /// An empty store of the given dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            coords: Vec::new(),
            dim,
            len: 0,
        }
    }

    /// An empty store of the given dimension with room for `n` points.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            coords: Vec::with_capacity(dim * n),
            dim,
            len: 0,
        }
    }

    /// Wraps a raw coordinate buffer holding `buffer.len() / dim` rows.
    ///
    /// This is the zero-copy entry point for generators that fill flat
    /// buffers directly (at any storage precision — no convert-after-generate
    /// pass).
    pub fn from_coords(coords: Vec<S>, dim: usize) -> Result<Self, PointError> {
        if dim == 0 {
            if coords.is_empty() {
                return Ok(Self::empty());
            }
            return Err(PointError::Empty);
        }
        assert!(
            coords.len().is_multiple_of(dim),
            "coordinate buffer length {} is not a multiple of the dimension {}",
            coords.len(),
            dim
        );
        if let Some(idx) = coords.iter().position(|c| !coord_ok(*c)) {
            let value = coords[idx].to_f64();
            return Err(if value.is_finite() {
                PointError::OutOfRange {
                    index: idx,
                    value,
                    limit: S::MAX_ABS_COORD,
                }
            } else {
                PointError::NonFinite { index: idx, value }
            });
        }
        let len = coords.len() / dim;
        Ok(Self { coords, dim, len })
    }

    /// Builds the store from per-point views, rounding each `f64`
    /// coordinate to `S` (a no-op at `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the points do not all share one dimension, or if a
    /// coordinate exceeds [`Scalar::MAX_ABS_COORD`] for the storage scalar
    /// (its squared distances would overflow the comparison-space kernels —
    /// only possible when narrowing, since [`Point`] coordinates are finite
    /// `f64`).
    pub fn from_points(points: &[Point]) -> Self {
        let Some(first) = points.first() else {
            return Self::empty();
        };
        let dim = first.dim();
        let mut flat = Self::with_capacity(dim, points.len());
        for p in points {
            assert_eq!(
                p.dim(),
                dim,
                "all points in a FlatPoints must share one dimension"
            );
            flat.coords.extend(p.coords().iter().map(|&c| {
                let s = S::from_f64(c);
                assert!(
                    coord_ok(s),
                    "coordinate {c} exceeds the {} safe magnitude {}",
                    S::NAME,
                    S::MAX_ABS_COORD
                );
                s
            }));
        }
        flat.len = points.len();
        flat
    }

    /// Appends one coordinate row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length disagrees with the store's dimension or a
    /// coordinate is not finite or exceeds [`Scalar::MAX_ABS_COORD`].  The
    /// first row pushed into an [`FlatPoints::empty`] store fixes the
    /// dimension.
    pub fn push_row(&mut self, row: &[S]) {
        if self.dim == 0 {
            assert!(!row.is_empty(), "cannot push an empty row");
            self.dim = row.len();
        }
        assert_eq!(
            row.len(),
            self.dim,
            "row length must equal the store dimension"
        );
        assert!(
            row.iter().all(|c| coord_ok(*c)),
            "coordinates must be finite and within the storage scalar's safe magnitude"
        );
        self.coords.extend_from_slice(row);
        self.len += 1;
    }

    /// Appends a [`Point`], rounding its `f64` coordinates to `S`.
    pub fn push_point(&mut self, p: &Point) {
        let row: Vec<S> = p.coords().iter().map(|&c| S::from_f64(c)).collect();
        self.push_row(&row);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Coordinate dimension (0 only while the store is empty).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The coordinate row of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn row(&self, i: usize) -> &[S] {
        let start = i * self.dim;
        &self.coords[start..start + self.dim]
    }

    /// Iterates over all coordinate rows in index order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[S]> {
        self.coords.chunks_exact(self.dim.max(1))
    }

    /// The whole backing buffer, row-major.
    pub fn coords(&self) -> &[S] {
        &self.coords
    }

    /// An owned [`Point`] copy of row `i` (widened to `f64`).
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.row(i).iter().map(|c| c.to_f64()).collect())
    }

    /// Materialises every row as an owned [`Point`] (widened to `f64`).
    pub fn to_points(&self) -> Vec<Point> {
        self.rows()
            .map(|r| Point::new(r.iter().map(|c| c.to_f64()).collect()))
            .collect()
    }

    /// Re-stores every coordinate at precision `T`.
    ///
    /// Narrowing (`f64` → `f32`) rounds each coordinate to nearest;
    /// widening is lossless.  This is the conversion the benches use to
    /// measure both precisions over the *same* generated data; production
    /// paths generate at the target precision directly instead.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate exceeds the target scalar's safe magnitude
    /// ([`Scalar::MAX_ABS_COORD`]) — only possible when narrowing.
    pub fn to_precision<T: Scalar>(&self) -> FlatPoints<T> {
        FlatPoints {
            coords: self
                .coords
                .iter()
                .map(|c| {
                    let t = T::from_f64(c.to_f64());
                    assert!(
                        coord_ok(t),
                        "coordinate {c} exceeds the {} safe magnitude {}",
                        T::NAME,
                        T::MAX_ABS_COORD
                    );
                    t
                })
                .collect(),
            dim: self.dim,
            len: self.len,
        }
    }

    /// Appends every row of `other`.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch (unless either side is empty).
    pub fn append(&mut self, other: &FlatPoints<S>) {
        if other.is_empty() {
            return;
        }
        if self.dim == 0 {
            self.dim = other.dim;
        }
        assert_eq!(self.dim, other.dim, "dimension mismatch in append");
        self.coords.extend_from_slice(&other.coords);
        self.len += other.len;
    }
}

impl<S: Scalar> fmt::Debug for FlatPoints<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FlatPoints<{}>(n={}, dim={})",
            S::NAME,
            self.len,
            self.dim
        )
    }
}

impl<S: Scalar> From<Vec<Point>> for FlatPoints<S> {
    fn from(points: Vec<Point>) -> Self {
        FlatPoints::from_points(&points)
    }
}

impl<S: Scalar> From<&[Point]> for FlatPoints<S> {
    fn from(points: &[Point]) -> Self {
        FlatPoints::from_points(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_round_trips() {
        let pts = vec![Point::xy(1.0, 2.0), Point::xy(3.0, 4.0)];
        let flat = FlatPoints::<f64>::from_points(&pts);
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.dim(), 2);
        assert_eq!(flat.row(0), &[1.0, 2.0]);
        assert_eq!(flat.row(1), &[3.0, 4.0]);
        assert_eq!(flat.to_points(), pts);
        assert_eq!(flat.point(1), pts[1]);
    }

    #[test]
    fn f32_store_rounds_once_and_widens_losslessly() {
        let pts = vec![Point::xy(0.1, 0.2), Point::xy(3.0, 4.0)];
        let flat = FlatPoints::<f32>::from_points(&pts);
        assert_eq!(flat.dim(), 2);
        assert_eq!(flat.row(0), &[0.1f32, 0.2f32]);
        // Exactly representable coordinates survive the round trip.
        assert_eq!(flat.point(1), pts[1]);
        // Rounded coordinates widen to the f64 value of their f32 rounding.
        assert_eq!(flat.point(0).coords()[0], 0.1f32 as f64);
    }

    #[test]
    fn to_precision_round_trips_exact_values() {
        let flat = FlatPoints::<f64>::from_coords(vec![1.5, -2.0, 3.25, 4.0], 2).unwrap();
        let narrow = flat.to_precision::<f32>();
        assert_eq!(narrow.row(1), &[3.25f32, 4.0f32]);
        let wide = narrow.to_precision::<f64>();
        assert_eq!(wide, flat);
    }

    #[test]
    fn empty_store_has_no_rows() {
        let flat = FlatPoints::<f64>::from_points(&[]);
        assert!(flat.is_empty());
        assert_eq!(flat.dim(), 0);
        assert_eq!(flat.rows().count(), 0);
        assert!(flat.to_points().is_empty());
    }

    #[test]
    fn push_row_fixes_dimension() {
        let mut flat = FlatPoints::<f64>::empty();
        flat.push_row(&[1.0, 2.0, 3.0]);
        assert_eq!(flat.dim(), 3);
        flat.push_point(&Point::xyz(4.0, 5.0, 6.0));
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn push_row_rejects_dimension_mismatch() {
        let mut flat = FlatPoints::<f64>::new(2);
        flat.push_row(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn push_row_rejects_nan() {
        let mut flat = FlatPoints::<f64>::new(2);
        flat.push_row(&[1.0, f64::NAN]);
    }

    #[test]
    fn from_coords_validates() {
        let flat = FlatPoints::from_coords(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(flat.len(), 2);
        assert!(FlatPoints::from_coords(vec![1.0, f64::INFINITY], 2).is_err());
        assert!(FlatPoints::<f64>::from_coords(Vec::new(), 0)
            .unwrap()
            .is_empty());
        // Out-of-f32-range values rejected at the f32 instantiation too.
        assert!(FlatPoints::from_coords(vec![1.0f32, f32::NAN], 2).is_err());
    }

    #[test]
    fn coordinates_beyond_the_safe_magnitude_are_rejected() {
        use crate::scalar::Scalar;
        // Finite in f32, but its squared differences overflow f32: must be
        // rejected, not silently kept (it would pin every nearest slot at
        // +inf and degenerate the farthest-point selection).
        let too_big = 2e19f32;
        assert!(too_big.is_finite());
        assert!(matches!(
            FlatPoints::from_coords(vec![too_big, 0.0], 2),
            Err(PointError::OutOfRange { .. })
        ));
        // The same magnitude is fine at f64 …
        assert!(FlatPoints::from_coords(vec![2e19f64, 0.0], 2).is_ok());
        // … but f64 has its own overflow bound.
        assert!(matches!(
            FlatPoints::from_coords(vec![1e200f64, 0.0], 2),
            Err(PointError::OutOfRange { .. })
        ));
        // Boundary values are accepted at both precisions.
        assert!(FlatPoints::from_coords(vec![f32::MAX_ABS_COORD as f32, 0.0], 2).is_ok());
        assert!(FlatPoints::from_coords(vec![f64::MAX_ABS_COORD, 0.0], 2).is_ok());
    }

    #[test]
    #[should_panic(expected = "safe magnitude")]
    fn narrowing_conversion_rejects_overflowing_coordinates() {
        let flat = FlatPoints::<f64>::from_coords(vec![2e19, 0.0], 2).unwrap();
        let _ = flat.to_precision::<f32>();
    }

    #[test]
    #[should_panic(expected = "safe magnitude")]
    fn from_points_rejects_coordinates_unsafe_at_the_storage_precision() {
        let _ = FlatPoints::<f32>::from_points(&[Point::xy(2e19, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_coords_rejects_ragged_buffer() {
        let _ = FlatPoints::from_coords(vec![1.0f64, 2.0, 3.0], 2);
    }

    #[test]
    fn append_concatenates() {
        let mut a = FlatPoints::<f64>::from_points(&[Point::xy(0.0, 0.0)]);
        let b = FlatPoints::<f64>::from_points(&[Point::xy(1.0, 1.0), Point::xy(2.0, 2.0)]);
        a.append(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.row(2), &[2.0, 2.0]);
        let mut fresh = FlatPoints::empty();
        fresh.append(&b);
        assert_eq!(fresh.dim(), 2);
        assert_eq!(fresh.len(), 2);
    }

    #[test]
    fn rows_iterates_in_order() {
        let flat = FlatPoints::from_coords(vec![0.0f64, 1.0, 2.0, 3.0, 4.0, 5.0], 3).unwrap();
        let rows: Vec<&[f64]> = flat.rows().collect();
        assert_eq!(rows, vec![&[0.0, 1.0, 2.0][..], &[3.0, 4.0, 5.0][..]]);
    }
}
