//! Contiguous structure-of-arrays point storage.
//!
//! The hot loops of every algorithm in this workspace — the farthest-point
//! scans of GON, the per-reducer sub-procedures of MRG, and EIM's filter
//! rounds — stream over "distance from point *i* to one center" for millions
//! of *i*.  With one heap-allocated `Vec<f64>` per [`Point`] that scan pays a
//! pointer chase and a potential cache miss per point; storing all
//! coordinates in a single row-major buffer turns it into a linear walk that
//! runs at memory bandwidth.
//!
//! [`FlatPoints`] is that buffer: `coords[i * dim .. (i + 1) * dim]` is the
//! coordinate row of point `i`.  [`Point`] remains the owned, per-point view
//! type used at API boundaries; conversions in both directions are provided.

use crate::point::{Point, PointError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major point store: all coordinates in one contiguous buffer.
///
/// Invariants: `coords.len() == len * dim`, every coordinate is finite, and
/// `dim > 0` whenever `len > 0` (an empty store may carry `dim == 0`, which
/// means "dimension not yet known").
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatPoints {
    coords: Vec<f64>,
    dim: usize,
    len: usize,
}

impl FlatPoints {
    /// An empty store whose dimension is fixed by the first pushed row.
    pub fn empty() -> Self {
        Self {
            coords: Vec::new(),
            dim: 0,
            len: 0,
        }
    }

    /// An empty store of the given dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            coords: Vec::new(),
            dim,
            len: 0,
        }
    }

    /// An empty store of the given dimension with room for `n` points.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            coords: Vec::with_capacity(dim * n),
            dim,
            len: 0,
        }
    }

    /// Wraps a raw coordinate buffer holding `buffer.len() / dim` rows.
    ///
    /// This is the zero-copy entry point for generators that fill flat
    /// buffers directly.
    pub fn from_coords(coords: Vec<f64>, dim: usize) -> Result<Self, PointError> {
        if dim == 0 {
            if coords.is_empty() {
                return Ok(Self::empty());
            }
            return Err(PointError::Empty);
        }
        assert!(
            coords.len().is_multiple_of(dim),
            "coordinate buffer length {} is not a multiple of the dimension {}",
            coords.len(),
            dim
        );
        if let Some(idx) = coords.iter().position(|c| !c.is_finite()) {
            return Err(PointError::NonFinite {
                index: idx,
                value: coords[idx],
            });
        }
        let len = coords.len() / dim;
        Ok(Self { coords, dim, len })
    }

    /// Builds the store from per-point views.
    ///
    /// # Panics
    ///
    /// Panics if the points do not all share one dimension.
    pub fn from_points(points: &[Point]) -> Self {
        let Some(first) = points.first() else {
            return Self::empty();
        };
        let dim = first.dim();
        let mut flat = Self::with_capacity(dim, points.len());
        for p in points {
            assert_eq!(
                p.dim(),
                dim,
                "all points in a FlatPoints must share one dimension"
            );
            flat.coords.extend_from_slice(p.coords());
        }
        flat.len = points.len();
        flat
    }

    /// Appends one coordinate row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length disagrees with the store's dimension or a
    /// coordinate is not finite.  The first row pushed into an
    /// [`FlatPoints::empty`] store fixes the dimension.
    pub fn push_row(&mut self, row: &[f64]) {
        if self.dim == 0 {
            assert!(!row.is_empty(), "cannot push an empty row");
            self.dim = row.len();
        }
        assert_eq!(
            row.len(),
            self.dim,
            "row length must equal the store dimension"
        );
        assert!(
            row.iter().all(|c| c.is_finite()),
            "coordinates must be finite"
        );
        self.coords.extend_from_slice(row);
        self.len += 1;
    }

    /// Appends a [`Point`].
    pub fn push_point(&mut self, p: &Point) {
        self.push_row(p.coords());
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Coordinate dimension (0 only while the store is empty).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The coordinate row of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        let start = i * self.dim;
        &self.coords[start..start + self.dim]
    }

    /// Iterates over all coordinate rows in index order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.coords.chunks_exact(self.dim.max(1))
    }

    /// The whole backing buffer, row-major.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// An owned [`Point`] copy of row `i`.
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.row(i).to_vec())
    }

    /// Materialises every row as an owned [`Point`].
    pub fn to_points(&self) -> Vec<Point> {
        self.rows().map(|r| Point::new(r.to_vec())).collect()
    }

    /// Appends every row of `other`.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch (unless either side is empty).
    pub fn append(&mut self, other: &FlatPoints) {
        if other.is_empty() {
            return;
        }
        if self.dim == 0 {
            self.dim = other.dim;
        }
        assert_eq!(self.dim, other.dim, "dimension mismatch in append");
        self.coords.extend_from_slice(&other.coords);
        self.len += other.len;
    }
}

impl fmt::Debug for FlatPoints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FlatPoints(n={}, dim={})", self.len, self.dim)
    }
}

impl From<Vec<Point>> for FlatPoints {
    fn from(points: Vec<Point>) -> Self {
        FlatPoints::from_points(&points)
    }
}

impl From<&[Point]> for FlatPoints {
    fn from(points: &[Point]) -> Self {
        FlatPoints::from_points(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_round_trips() {
        let pts = vec![Point::xy(1.0, 2.0), Point::xy(3.0, 4.0)];
        let flat = FlatPoints::from_points(&pts);
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.dim(), 2);
        assert_eq!(flat.row(0), &[1.0, 2.0]);
        assert_eq!(flat.row(1), &[3.0, 4.0]);
        assert_eq!(flat.to_points(), pts);
        assert_eq!(flat.point(1), pts[1]);
    }

    #[test]
    fn empty_store_has_no_rows() {
        let flat = FlatPoints::from_points(&[]);
        assert!(flat.is_empty());
        assert_eq!(flat.dim(), 0);
        assert_eq!(flat.rows().count(), 0);
        assert!(flat.to_points().is_empty());
    }

    #[test]
    fn push_row_fixes_dimension() {
        let mut flat = FlatPoints::empty();
        flat.push_row(&[1.0, 2.0, 3.0]);
        assert_eq!(flat.dim(), 3);
        flat.push_point(&Point::xyz(4.0, 5.0, 6.0));
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn push_row_rejects_dimension_mismatch() {
        let mut flat = FlatPoints::new(2);
        flat.push_row(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn push_row_rejects_nan() {
        let mut flat = FlatPoints::new(2);
        flat.push_row(&[1.0, f64::NAN]);
    }

    #[test]
    fn from_coords_validates() {
        let flat = FlatPoints::from_coords(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(flat.len(), 2);
        assert!(FlatPoints::from_coords(vec![1.0, f64::INFINITY], 2).is_err());
        assert!(FlatPoints::from_coords(Vec::new(), 0).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_coords_rejects_ragged_buffer() {
        let _ = FlatPoints::from_coords(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn append_concatenates() {
        let mut a = FlatPoints::from_points(&[Point::xy(0.0, 0.0)]);
        let b = FlatPoints::from_points(&[Point::xy(1.0, 1.0), Point::xy(2.0, 2.0)]);
        a.append(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.row(2), &[2.0, 2.0]);
        let mut fresh = FlatPoints::empty();
        fresh.append(&b);
        assert_eq!(fresh.dim(), 2);
        assert_eq!(fresh.len(), 2);
    }

    #[test]
    fn rows_iterates_in_order() {
        let flat = FlatPoints::from_coords(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], 3).unwrap();
        let rows: Vec<&[f64]> = flat.rows().collect();
        assert_eq!(rows, vec![&[0.0, 1.0, 2.0][..], &[3.0, 4.0, 5.0][..]]);
    }
}
