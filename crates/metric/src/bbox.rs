//! Axis-aligned bounding boxes and cheap diameter estimates.
//!
//! The synthetic generators place points in unit squares/cubes and the
//! experiment harness reports objective values whose scale depends on the
//! spread of the data; a bounding box gives a cheap, deterministic way to
//! normalise and sanity-check those scales (e.g. the covering radius can
//! never exceed the box diagonal).

use crate::flat::FlatPoints;
use crate::point::Point;
use crate::scalar::Scalar;
use rayon::prelude::*;

/// A [`Point`] slice handed to [`BoundingBox::of`] mixed coordinate
/// dimensions: box corners would be meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimensionMismatch {
    /// Dimension of the first point (the one the box was sized for).
    pub expected: usize,
    /// The offending point's dimension.
    pub found: usize,
}

impl std::fmt::Display for DimensionMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dimension mismatch in bounding box: expected {}, found {}",
            self.expected, self.found
        )
    }
}

impl std::error::Error for DimensionMismatch {}

/// An axis-aligned bounding box in `R^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundingBox {
    min: Vec<f64>,
    max: Vec<f64>,
}

impl BoundingBox {
    /// Computes the bounding box of a non-empty point slice.
    ///
    /// Returns `Ok(None)` for an empty slice and a named
    /// [`DimensionMismatch`] when the points do not share one dimension
    /// (the flat-store variants cannot hit this — a [`FlatPoints`]
    /// guarantees uniform rows).
    pub fn of(points: &[Point]) -> Result<Option<Self>, DimensionMismatch> {
        let Some(first) = points.first() else {
            return Ok(None);
        };
        let dim = first.dim();
        let mut min = first.coords().to_vec();
        let mut max = first.coords().to_vec();
        for p in &points[1..] {
            if p.dim() != dim {
                return Err(DimensionMismatch {
                    expected: dim,
                    found: p.dim(),
                });
            }
            for (i, &c) in p.coords().iter().enumerate() {
                if c < min[i] {
                    min[i] = c;
                }
                if c > max[i] {
                    max[i] = c;
                }
            }
        }
        Ok(Some(Self { min, max }))
    }

    /// Parallel variant of [`BoundingBox::of`] for large point sets.
    pub fn par_of(points: &[Point]) -> Result<Option<Self>, DimensionMismatch> {
        if points.is_empty() {
            return Ok(None);
        }
        let expected = points[0].dim();
        points
            .par_chunks(4096)
            .map(BoundingBox::of)
            .reduce_with(|a, b| match (a?, b?) {
                (Some(a), Some(b)) => {
                    if a.dim() != b.dim() {
                        // Chunk boundaries can split a mismatch that the
                        // sequential scan would catch inside one chunk.
                        return Err(DimensionMismatch {
                            expected,
                            found: if a.dim() == expected {
                                b.dim()
                            } else {
                                a.dim()
                            },
                        });
                    }
                    Ok(Some(a.merged(&b)))
                }
                (a, b) => Ok(a.or(b)),
            })
            .unwrap_or(Ok(None))
    }

    /// Computes the bounding box of a flat point store (at any storage
    /// precision; the box corners are widened to `f64`) in one contiguous
    /// scan.  Returns `None` for an empty store.
    pub fn of_flat<S: Scalar>(points: &FlatPoints<S>) -> Option<Self> {
        Self::of_rows(points.coords(), points.dim())
    }

    /// Bounding box of a raw row-major coordinate block (zero-copy core of
    /// the flat variants).
    fn of_rows<S: Scalar>(coords: &[S], dim: usize) -> Option<Self> {
        if coords.is_empty() || dim == 0 {
            return None;
        }
        let mut min: Vec<f64> = coords[..dim].iter().map(|c| c.to_f64()).collect();
        let mut max = min.clone();
        for row in coords.chunks_exact(dim).skip(1) {
            for i in 0..dim {
                let c = row[i].to_f64();
                if c < min[i] {
                    min[i] = c;
                }
                if c > max[i] {
                    max[i] = c;
                }
            }
        }
        Some(Self { min, max })
    }

    /// Parallel variant of [`BoundingBox::of_flat`] for large stores; folds
    /// min/max directly over coordinate blocks without copying them.
    pub fn par_of_flat<S: Scalar>(points: &FlatPoints<S>) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        let dim = points.dim();
        points
            .coords()
            .par_chunks(4096 * dim)
            .filter_map(|block| BoundingBox::of_rows(block, dim))
            .reduce_with(|a, b| a.merged(&b))
    }

    /// The smallest box containing both `self` and `other`.
    pub fn merged(&self, other: &BoundingBox) -> BoundingBox {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in merge");
        BoundingBox {
            min: self
                .min
                .iter()
                .zip(other.min.iter())
                .map(|(a, b)| a.min(*b))
                .collect(),
            max: self
                .max
                .iter()
                .zip(other.max.iter())
                .map(|(a, b)| a.max(*b))
                .collect(),
        }
    }

    /// The coordinate dimension of the box.
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Minimum corner.
    pub fn min(&self) -> &[f64] {
        &self.min
    }

    /// Maximum corner.
    pub fn max(&self) -> &[f64] {
        &self.max
    }

    /// Side length along dimension `i`.
    pub fn extent(&self, i: usize) -> f64 {
        self.max[i] - self.min[i]
    }

    /// Length of the box diagonal — an upper bound on any pairwise distance
    /// (and therefore on the optimal k-center radius).
    pub fn diagonal(&self) -> f64 {
        self.min
            .iter()
            .zip(self.max.iter())
            .map(|(lo, hi)| {
                let d = hi - lo;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Whether the point lies inside (or on the boundary of) the box.
    pub fn contains(&self, p: &Point) -> bool {
        p.dim() == self.dim()
            && p.coords()
                .iter()
                .enumerate()
                .all(|(i, &c)| c >= self.min[i] - 1e-12 && c <= self.max[i] + 1e-12)
    }

    /// Center of the box.
    pub fn center(&self) -> Point {
        Point::new(
            self.min
                .iter()
                .zip(self.max.iter())
                .map(|(lo, hi)| (lo + hi) / 2.0)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> Vec<Point> {
        vec![
            Point::xy(0.0, 0.0),
            Point::xy(2.0, 1.0),
            Point::xy(-1.0, 3.0),
            Point::xy(1.0, -2.0),
        ]
    }

    #[test]
    fn of_empty_is_none() {
        assert_eq!(BoundingBox::of(&[]), Ok(None));
        assert_eq!(BoundingBox::par_of(&[]), Ok(None));
    }

    #[test]
    fn of_single_point_is_degenerate() {
        let b = BoundingBox::of(&[Point::xy(1.0, 2.0)]).unwrap().unwrap();
        assert_eq!(b.min(), &[1.0, 2.0]);
        assert_eq!(b.max(), &[1.0, 2.0]);
        assert_eq!(b.diagonal(), 0.0);
    }

    #[test]
    fn of_covers_all_points() {
        let pts = cloud();
        let b = BoundingBox::of(&pts).unwrap().unwrap();
        assert_eq!(b.min(), &[-1.0, -2.0]);
        assert_eq!(b.max(), &[2.0, 3.0]);
        assert!(pts.iter().all(|p| b.contains(p)));
        assert!(!b.contains(&Point::xy(10.0, 0.0)));
    }

    #[test]
    fn par_of_matches_sequential() {
        let pts: Vec<Point> = (0..10_000)
            .map(|i| Point::xy((i % 173) as f64, ((i * 7) % 311) as f64))
            .collect();
        assert_eq!(BoundingBox::of(&pts), BoundingBox::par_of(&pts));
    }

    #[test]
    fn merged_covers_both() {
        let a = BoundingBox::of(&[Point::xy(0.0, 0.0), Point::xy(1.0, 1.0)])
            .unwrap()
            .unwrap();
        let b = BoundingBox::of(&[Point::xy(-5.0, 2.0), Point::xy(0.5, 3.0)])
            .unwrap()
            .unwrap();
        let m = a.merged(&b);
        assert_eq!(m.min(), &[-5.0, 0.0]);
        assert_eq!(m.max(), &[1.0, 3.0]);
    }

    #[test]
    fn diagonal_and_extent() {
        let b = BoundingBox::of(&[Point::xy(0.0, 0.0), Point::xy(3.0, 4.0)])
            .unwrap()
            .unwrap();
        assert!((b.diagonal() - 5.0).abs() < 1e-12);
        assert_eq!(b.extent(0), 3.0);
        assert_eq!(b.extent(1), 4.0);
    }

    #[test]
    fn center_is_midpoint() {
        let b = BoundingBox::of(&[Point::xy(0.0, 0.0), Point::xy(2.0, 4.0)])
            .unwrap()
            .unwrap();
        assert_eq!(b.center(), Point::xy(1.0, 2.0));
    }

    #[test]
    fn of_rejects_mixed_dimensions_with_named_error() {
        let err = BoundingBox::of(&[Point::xy(0.0, 0.0), Point::xyz(0.0, 0.0, 0.0)]).unwrap_err();
        assert_eq!(
            err,
            DimensionMismatch {
                expected: 2,
                found: 3
            }
        );
        assert!(err.to_string().contains("expected 2, found 3"));
        // The parallel variant surfaces the same class of error instead of
        // panicking mid-reduce.
        let mut pts = vec![Point::xy(0.0, 0.0); 5000];
        pts.push(Point::xyz(1.0, 2.0, 3.0));
        assert!(BoundingBox::par_of(&pts).is_err());
    }
}
