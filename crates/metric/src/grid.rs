//! Axis-aligned spatial grid bucketing for sub-quadratic assignment scans.
//!
//! Every solver and the coreset weights round pay a dense `O(n · k)`
//! comparison-space scan per assignment/relax step.  For the
//! constant-dimensional Euclidean case this module buckets flat-store rows
//! into an axis-aligned grid built over the [`crate::bbox`] layer, so the
//! hot scans visit only *candidate* cells instead of every pair — the
//! output-sensitive probing that Coy–Czumaj–Mishra's parallel k-center
//! bounds are built on.  Two accelerators are provided:
//!
//! * [`GridRelaxer`] backs the fused Gonzalez relaxation
//!   ([`MetricSpace::relax_nearest_max`] / `relax_all_max`): the member
//!   rows are bucketed once, and each relax pass sweeps the occupied cells
//!   in ascending cell order, skipping any cell whose bounding-box distance
//!   to the new center proves that no `nearest[]` slot in it can change.
//! * [`SpatialGrid::nearest_member`] and
//!   [`SpatialGrid::wide_nearest_bounded`] back the nearest-candidate
//!   argmin scans (the coreset weights round, per-point assignment) by
//!   expanding Chebyshev rings of cells around the query until the ring
//!   lower bound exceeds the best distance seen.
//!
//! # Cell-width choice
//!
//! The classical analysis buckets at cell width `~r/√d` so that a cell's
//! diagonal is at most the current radius `r`.  `r` changes every Gonzalez
//! round, though, and rebucketing per round would erase the win.  Instead
//! the grid picks a *fixed* resolution from the member count: with `m`
//! members and a target occupancy `OCC`, each dimension of positive extent
//! gets `res = max(1, floor((m / OCC)^(1/d_eff)))` cells, i.e. about
//! `m / OCC` cells total and `OCC` members per cell on uniform data.  The
//! radius-dependence moves into the *pruning* instead of the bucketing:
//! every cell stores the tight bounding box of its members, and a scan
//! skips the cell when the squared box distance (a lower bound on every
//! member's squared distance) proves the scan outcome cannot change.  That
//! is exactly the `r/√d` test, evaluated per cell per query against the
//! current radius rather than baked into the cell width.
//!
//! Dimensions of zero extent (duplicate-heavy data) get a single cell and
//! do not count toward `d_eff`, so a cell width can never be zero; if
//! *every* dimension is degenerate the build returns `None` and callers
//! fall back to the dense scan.
//!
//! # Probe order and determinism
//!
//! Grid results are **bit-identical** to the dense scans, so the
//! determinism tuple extends cleanly to `(seed, precision, kernel,
//! assign)`:
//!
//! * Cells are enumerated in fixed ascending cell order; within a cell,
//!   rows are scanned in ascending member order.  The relax sweep folds
//!   per-cell records with a "greater value, or equal value at a lower
//!   position" rule, which reproduces the dense lowest-index argmax
//!   regardless of which cells were skipped; the ring argmin keeps the
//!   lowest candidate index on ties for the same reason.
//! * Pruning never changes a value: a cell is skipped only when a
//!   conservative rounding-slack margin (`(d + 8) · 4 · u` for storage
//!   unit roundoff `u`) proves every member comparison in it is a no-op.
//!   Comparison-space distances themselves come from the same per-pair
//!   [`MetricSpace::cmp_distance`] path as the dense argmin, and the
//!   `wide_cmp_*` f64 certification scans stay ground truth.
//! * The per-pair comparison values match the dense fused relax kernels
//!   bit-for-bit under the `scalar` and `portable` backends (identical
//!   summation order); the AVX2 fused-rows kernels use a different
//!   reduction tree, so under `avx2` the relax arms agree exactly only on
//!   inputs whose squared distances are exactly representable (e.g.
//!   integer lattices) — same caveat as the kernel A/B in
//!   [`crate::kernel::simd`].
//!
//! # Dispatch
//!
//! Mirroring the kernel table, the active arm is selected once per process
//! from the `--assign` flag / [`ASSIGN_ENV`] (`auto` | `dense` | `grid`)
//! via [`set_choice`] / [`active_choice`], and `auto` applies a *measured*
//! dense-scan crossover (see [`auto_mode`]) — brute force wins when the
//! candidate count or point count is small.  Call sites report which arm
//! actually ran through the [`note_scan`] / [`scan_counts`] telemetry.

use crate::scalar::Scalar;
use crate::space::MetricSpace;
use crate::PointId;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

/// Environment variable naming the assignment arm (`auto` | `dense` |
/// `grid`), mirroring `KCENTER_KERNEL`; the CLI `--assign` flag wins over
/// it.
pub const ASSIGN_ENV: &str = "KCENTER_ASSIGN";

/// Dimensions above this never build a grid (the cells-per-ring blowup
/// makes bucketing useless long before this, and the coordinate scratch
/// buffers are stack-pinned to this length).
pub const MAX_GRID_DIM: usize = 32;

/// Target members per cell for the relax grids (built once over the whole
/// subset, swept many times).
pub const RELAX_OCCUPANCY: usize = 8;

/// Target members per cell for the small candidate grids behind the
/// nearest-member argmin (centers / coreset reps): smaller cells give the
/// ring search tighter bounds.
pub const NEAREST_OCCUPANCY: usize = 2;

/// An assignment-scan implementation the dispatcher can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AssignMode {
    /// The dense SIMD scan over every candidate (the pre-grid behaviour).
    Dense = 0,
    /// Spatial-grid bucketing with box-distance pruning.
    Grid = 1,
}

impl AssignMode {
    /// Every mode, in preference order.
    pub const ALL: [AssignMode; 2] = [AssignMode::Dense, AssignMode::Grid];

    /// The name used by `KCENTER_ASSIGN`, the CLI `--assign` flag, and
    /// reports.
    pub fn name(&self) -> &'static str {
        match self {
            AssignMode::Dense => "dense",
            AssignMode::Grid => "grid",
        }
    }
}

impl fmt::Display for AssignMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parsed assignment request: either defer to the measured crossover
/// (`auto`) or pin one arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignChoice {
    /// Pick per scan via [`auto_mode`]'s measured crossover.
    Auto,
    /// Pin this arm everywhere (grid still falls back to dense on spaces
    /// it cannot index — non-Euclidean surrogates, degenerate extents).
    Fixed(AssignMode),
}

impl AssignChoice {
    /// Parses an assignment name (`auto` | `dense` | `grid`,
    /// case-insensitive).  Unknown names are a named
    /// [`AssignSelectError::Unknown`].
    pub fn parse(name: &str) -> Result<AssignChoice, AssignSelectError> {
        match name.to_ascii_lowercase().as_str() {
            "auto" => Ok(AssignChoice::Auto),
            "dense" => Ok(AssignChoice::Fixed(AssignMode::Dense)),
            "grid" => Ok(AssignChoice::Fixed(AssignMode::Grid)),
            _ => Err(AssignSelectError::Unknown { value: name.into() }),
        }
    }

    /// Reads the request from [`ASSIGN_ENV`]; unset means `auto`.
    pub fn from_env() -> Result<AssignChoice, AssignSelectError> {
        match std::env::var(ASSIGN_ENV) {
            Ok(value) => AssignChoice::parse(&value),
            Err(_) => Ok(AssignChoice::Auto),
        }
    }

    /// The name this request parses from.
    pub fn name(&self) -> &'static str {
        match self {
            AssignChoice::Auto => "auto",
            AssignChoice::Fixed(m) => m.name(),
        }
    }
}

impl fmt::Display for AssignChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an assignment request could not be honoured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignSelectError {
    /// The name is not one of `auto` / `dense` / `grid`.
    Unknown {
        /// The rejected name.
        value: String,
    },
}

impl fmt::Display for AssignSelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignSelectError::Unknown { value } => write!(
                f,
                "unknown assignment mode {value:?} (expected auto, dense, or grid)"
            ),
        }
    }
}

impl std::error::Error for AssignSelectError {}

const CHOICE_AUTO: u8 = 0;
const CHOICE_DENSE: u8 = 1;
const CHOICE_GRID: u8 = 2;
const CHOICE_UNSET: u8 = u8::MAX;

/// The process-wide assignment choice; `UNSET` until first queried, then
/// latched from [`ASSIGN_ENV`] (or [`set_choice`]).
static ACTIVE: AtomicU8 = AtomicU8::new(CHOICE_UNSET);

fn choice_to_u8(choice: AssignChoice) -> u8 {
    match choice {
        AssignChoice::Auto => CHOICE_AUTO,
        AssignChoice::Fixed(AssignMode::Dense) => CHOICE_DENSE,
        AssignChoice::Fixed(AssignMode::Grid) => CHOICE_GRID,
    }
}

fn choice_from_u8(v: u8) -> AssignChoice {
    match v {
        CHOICE_DENSE => AssignChoice::Fixed(AssignMode::Dense),
        CHOICE_GRID => AssignChoice::Fixed(AssignMode::Grid),
        _ => AssignChoice::Auto,
    }
}

/// The active assignment choice, initialised from [`ASSIGN_ENV`] on first
/// use.
///
/// # Panics
///
/// Panics if [`ASSIGN_ENV`] is set to an unknown name.  The CLI validates
/// the variable up front (surfacing a named `InvalidParameter` error)
/// before any scan runs; library users hitting the panic should call
/// [`AssignChoice::from_env`] themselves and [`set_choice`] the result.
pub fn active_choice() -> AssignChoice {
    let v = ACTIVE.load(Ordering::Relaxed);
    if v != CHOICE_UNSET {
        return choice_from_u8(v);
    }
    let choice = AssignChoice::from_env().unwrap_or_else(|e| panic!("{ASSIGN_ENV}: {e}"));
    ACTIVE.store(choice_to_u8(choice), Ordering::Relaxed);
    choice
}

/// Pins the process-wide assignment choice (the CLI `--assign` path).
/// Infallible: both arms always exist — a pinned `grid` still falls back
/// to dense per scan on spaces the grid cannot index.
pub fn set_choice(choice: AssignChoice) {
    ACTIVE.store(choice_to_u8(choice), Ordering::Relaxed);
}

/// The shape of one assignment scan, for the crossover decision.
#[derive(Debug, Clone, Copy)]
pub struct ScanShape {
    /// How many points get scanned (queries / relax slots).
    pub points: usize,
    /// How many candidates each point is compared against (`k` centers,
    /// coreset reps, or Gonzalez rounds for the relax grid).
    pub candidates: usize,
    /// Coordinate dimension (0 when the space has no coordinate rows).
    pub dim: usize,
}

/// What `auto` resolves to for a scan of this shape: the measured
/// dense-scan crossover.
///
/// The constants come from `flat_report`'s dense-vs-grid columns
/// (`BENCH_flat.json`, `assign_crossover` records): per dimension, the
/// smallest candidate count at which the grid arm beat the dense SIMD
/// scan on the clustered 1M-point workload, with a point-count floor below
/// which grid build cost dominates.  Brute force wins at small `k` or `d`
/// above the bucketing range, so those shapes stay dense.
pub fn auto_mode(shape: ScanShape) -> AssignMode {
    if shape.dim == 0 || shape.dim > 16 || shape.points < 1 << 12 {
        return AssignMode::Dense;
    }
    // Measured crossover (candidates axis) per dimension band; see
    // BENCH_flat.json "assign_crossover".
    let min_candidates = match shape.dim {
        1..=2 => 16,
        3..=4 => 16,
        5..=8 => 24,
        _ => 48,
    };
    if shape.candidates >= min_candidates {
        AssignMode::Grid
    } else {
        AssignMode::Dense
    }
}

/// Resolves the arm for one scan: the pinned arm if the active choice is
/// fixed, the measured crossover otherwise.  Callers still fall back to
/// dense when the grid build refuses the space (see
/// [`SpatialGrid::build`]) and report the arm that actually ran via
/// [`note_scan`].
pub fn select_mode(shape: ScanShape) -> AssignMode {
    match active_choice() {
        AssignChoice::Auto => auto_mode(shape),
        AssignChoice::Fixed(m) => m,
    }
}

static GRID_SCANS: AtomicU64 = AtomicU64::new(0);
static DENSE_SCANS: AtomicU64 = AtomicU64::new(0);

/// Records that one assignment scan (a full relax loop, weights round, or
/// per-point assignment pass) ran on `mode`'s arm.  The CLI prints these
/// next to the round accounting so A/B runs show which arm actually
/// executed.
pub fn note_scan(mode: AssignMode) {
    match mode {
        AssignMode::Grid => GRID_SCANS.fetch_add(1, Ordering::Relaxed),
        AssignMode::Dense => DENSE_SCANS.fetch_add(1, Ordering::Relaxed),
    };
}

/// `(grid, dense)` scan counts recorded by [`note_scan`] since process
/// start (or the last [`reset_scan_counts`]).
pub fn scan_counts() -> (u64, u64) {
    (
        GRID_SCANS.load(Ordering::Relaxed),
        DENSE_SCANS.load(Ordering::Relaxed),
    )
}

/// Zeroes the [`scan_counts`] telemetry (tests; per-command accounting).
pub fn reset_scan_counts() {
    GRID_SCANS.store(0, Ordering::Relaxed);
    DENSE_SCANS.store(0, Ordering::Relaxed);
}

/// A uniform axis-aligned grid over a member list of a coordinate-backed
/// space, with per-cell tight bounding boxes for distance lower bounds.
///
/// Members are addressed by their *position* in the member list handed to
/// [`SpatialGrid::build`] (matching the position-based contracts of the
/// relax/argmin scans).  All box geometry is kept in `f64`, widened
/// exactly from the storage rows.
pub struct SpatialGrid {
    dim: usize,
    len: usize,
    origin: Vec<f64>,
    inv_width: Vec<f64>,
    res: Vec<usize>,
    stride: Vec<usize>,
    /// CSR cell starts (`cells + 1` entries).
    starts: Vec<u32>,
    /// Member positions, grouped by cell, ascending within each cell.
    bucket: Vec<u32>,
    /// Indices of non-empty cells, ascending.
    occupied: Vec<u32>,
    /// Per-cell tight member bounding boxes (`cells × dim`, `±inf` for
    /// empty cells).
    cell_lo: Vec<f64>,
    cell_hi: Vec<f64>,
    /// Smallest positive cell width, for the ring lower bound.
    min_cell_width: f64,
    /// Relative slack covering storage-precision comparison rounding: a
    /// cell is pruned only when `lb · (1 - cmp_slack)` already decides it.
    cmp_slack: f64,
    /// Same, for the f64 `wide_cmp_*` scans.
    wide_slack: f64,
}

impl SpatialGrid {
    /// Buckets `members` of `space` into a grid of roughly
    /// `members.len() / occupancy` cells.
    ///
    /// Returns `None` — callers fall back to the dense scan — when the
    /// space exposes no coordinate rows or its surrogate is not squared
    /// Euclidean ([`MetricSpace::grid_compatible`]), when the member list
    /// is empty or larger than `u32` positions, when the dimension is 0 or
    /// above [`MAX_GRID_DIM`], or when every dimension has zero extent
    /// (all members identical — the degenerate case where a cell width
    /// would be zero).
    pub fn build<Sp: MetricSpace + ?Sized>(
        space: &Sp,
        members: &[PointId],
        occupancy: usize,
    ) -> Option<SpatialGrid> {
        if !space.grid_compatible() || members.is_empty() || members.len() > u32::MAX as usize {
            return None;
        }
        let dim = space.coord_row(members[0])?.len();
        if dim == 0 || dim > MAX_GRID_DIM {
            return None;
        }

        // Member bounding box, widened exactly to f64.
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for &m in members {
            let row = space.coord_row(m)?;
            for (i, &c) in row.iter().enumerate() {
                let c = c.to_f64();
                if c < lo[i] {
                    lo[i] = c;
                }
                if c > hi[i] {
                    hi[i] = c;
                }
            }
        }
        let d_eff = (0..dim).filter(|&i| hi[i] > lo[i]).count();
        if d_eff == 0 {
            return None;
        }

        // Uniform per-dimension resolution from the target cell count:
        // res^d_eff ≈ members / occupancy, so the product of resolutions
        // can never exceed the member count.
        let target_cells = (members.len() / occupancy.max(1)).max(1);
        let res_eff = ((target_cells as f64).powf(1.0 / d_eff as f64).floor() as usize).max(1);
        let mut res = vec![1usize; dim];
        let mut inv_width = vec![0.0f64; dim];
        let mut stride = vec![0usize; dim];
        let mut min_cell_width = f64::INFINITY;
        for i in 0..dim {
            if hi[i] > lo[i] {
                res[i] = res_eff;
                let extent = hi[i] - lo[i];
                inv_width[i] = res[i] as f64 / extent;
                min_cell_width = min_cell_width.min(extent / res[i] as f64);
            }
        }
        let mut cells = 1usize;
        for i in (0..dim).rev() {
            stride[i] = cells;
            cells = cells.checked_mul(res[i])?;
        }

        let mut grid = SpatialGrid {
            dim,
            len: members.len(),
            origin: lo,
            inv_width,
            res,
            stride,
            starts: vec![0; cells + 1],
            bucket: vec![0; members.len()],
            occupied: Vec::new(),
            cell_lo: vec![f64::INFINITY; cells * dim],
            cell_hi: vec![f64::NEG_INFINITY; cells * dim],
            min_cell_width,
            cmp_slack: cmp_slack::<Sp::Cmp>(dim),
            wide_slack: cmp_slack::<f64>(dim),
        };

        // Counting sort by cell: positions placed in ascending order land
        // ascending within each cell.
        let mut counts = vec![0u32; cells];
        for &m in members {
            counts[grid.cell_of(space.coord_row(m)?)] += 1;
        }
        let mut acc = 0u32;
        for (c, &count) in counts.iter().enumerate() {
            grid.starts[c] = acc;
            acc += count;
            if count > 0 {
                grid.occupied.push(c as u32);
            }
        }
        grid.starts[cells] = acc;
        let mut cursor: Vec<u32> = grid.starts[..cells].to_vec();
        for (pos, &m) in members.iter().enumerate() {
            let row = space.coord_row(m)?;
            let cell = grid.cell_of(row);
            grid.bucket[cursor[cell] as usize] = pos as u32;
            cursor[cell] += 1;
            for (i, &c) in row.iter().enumerate() {
                let c = c.to_f64();
                let slot = cell * dim + i;
                if c < grid.cell_lo[slot] {
                    grid.cell_lo[slot] = c;
                }
                if c > grid.cell_hi[slot] {
                    grid.cell_hi[slot] = c;
                }
            }
        }
        Some(grid)
    }

    /// Coordinate dimension of the indexed rows.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of member positions indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid indexes no members (never true for a built grid).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of cells.
    pub fn cells(&self) -> usize {
        self.starts.len() - 1
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.occupied.len()
    }

    /// Per-dimension clamped cell coordinates of a row.
    fn coords_of<S: Scalar>(&self, row: &[S], out: &mut [usize; MAX_GRID_DIM]) {
        for i in 0..self.dim {
            let f = (row[i].to_f64() - self.origin[i]) * self.inv_width[i];
            // `as usize` saturates: negative / NaN → 0.
            out[i] = (f as usize).min(self.res[i] - 1);
        }
    }

    /// Flat cell index of a row (clamped into the grid).
    fn cell_of<S: Scalar>(&self, row: &[S]) -> usize {
        let mut c = [0usize; MAX_GRID_DIM];
        self.coords_of(row, &mut c);
        (0..self.dim).map(|i| c[i] * self.stride[i]).sum()
    }

    /// Squared box distance (f64) from `row` to the tight member bounding
    /// box of `cell` — a lower bound on the exact squared distance from
    /// `row` to every member in the cell.  Meaningful only for non-empty
    /// cells.
    fn lb_dist2<S: Scalar>(&self, cell: usize, row: &[S]) -> f64 {
        let base = cell * self.dim;
        let mut acc = 0.0f64;
        for (i, coord) in row.iter().enumerate().take(self.dim) {
            let x = coord.to_f64();
            let lo = self.cell_lo[base + i];
            let hi = self.cell_hi[base + i];
            let gap = if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                0.0
            };
            acc += gap * gap;
        }
        acc
    }

    /// Lower bound (f64, squared) on the distance from any query to any
    /// member in a cell at Chebyshev ring `rho` from the query's cell: the
    /// offset dimension spans at least `rho - 1` whole cells.
    fn ring_lb(&self, rho: usize) -> f64 {
        if rho <= 1 {
            0.0
        } else {
            let gap = (rho - 1) as f64 * self.min_cell_width;
            gap * gap
        }
    }

    /// Visits every non-empty cell at Chebyshev distance exactly `rho`
    /// from cell coordinates `q`, in ascending flat-index order, until
    /// `visit` returns `false`.  Returns `false` if the visitor stopped.
    fn for_each_ring_cell(
        &self,
        q: &[usize; MAX_GRID_DIM],
        rho: usize,
        mut visit: impl FnMut(usize) -> bool,
    ) -> bool {
        let dim = self.dim;
        let mut lo = [0usize; MAX_GRID_DIM];
        let mut hi = [0usize; MAX_GRID_DIM];
        let mut cur = [0usize; MAX_GRID_DIM];
        for i in 0..dim {
            lo[i] = q[i].saturating_sub(rho);
            hi[i] = (q[i] + rho).min(self.res[i] - 1);
            cur[i] = lo[i];
        }
        loop {
            let cheb = (0..dim).map(|i| cur[i].abs_diff(q[i])).max().unwrap_or(0);
            if cheb == rho {
                let cell: usize = (0..dim).map(|i| cur[i] * self.stride[i]).sum();
                if self.starts[cell] < self.starts[cell + 1] && !visit(cell) {
                    return false;
                }
            }
            // Odometer: last dimension fastest = ascending flat index.
            let mut i = dim;
            loop {
                if i == 0 {
                    return true;
                }
                i -= 1;
                if cur[i] < hi[i] {
                    cur[i] += 1;
                    break;
                }
                cur[i] = lo[i];
            }
        }
    }

    /// Largest ring that still contains cells, from `q`.
    fn max_ring(&self, q: &[usize; MAX_GRID_DIM]) -> usize {
        (0..self.dim)
            .map(|i| q[i].max(self.res[i] - 1 - q[i]))
            .max()
            .unwrap_or(0)
    }

    /// The comparison-space nearest member to `query`: bit-identical to
    /// the dense argmin `min_pos (cmp_distance(query, members[pos]))` with
    /// ties toward the smaller position, returned as
    /// `(position, cmp value)`.
    ///
    /// `members` must be the list the grid was built over.
    pub fn nearest_member<Sp: MetricSpace + ?Sized>(
        &self,
        space: &Sp,
        members: &[PointId],
        query: PointId,
    ) -> (usize, Sp::Cmp) {
        debug_assert_eq!(members.len(), self.len, "grid/member list mismatch");
        let row = space.coord_row(query).expect("grid-compatible space");
        let mut q = [0usize; MAX_GRID_DIM];
        self.coords_of(row, &mut q);
        let mut best = (0usize, <Sp::Cmp as Scalar>::INFINITY);
        let mut found = false;
        for rho in 0..=self.max_ring(&q) {
            // Every member beyond this ring is strictly farther than the
            // best (slack covers comparison-space rounding), and strict
            // inequality protects the lowest-position tie rule.
            if found && self.ring_lb(rho) * (1.0 - self.cmp_slack) > best.1.to_f64() {
                break;
            }
            self.for_each_ring_cell(&q, rho, |cell| {
                if !found || self.lb_dist2(cell, row) * (1.0 - self.cmp_slack) <= best.1.to_f64() {
                    for &pos in
                        &self.bucket[self.starts[cell] as usize..self.starts[cell + 1] as usize]
                    {
                        let d = space.cmp_distance(query, members[pos as usize]);
                        if d < best.1 || (d == best.1 && (pos as usize) < best.0) {
                            best = (pos as usize, d);
                            found = true;
                        }
                    }
                }
                true
            });
        }
        best
    }

    /// Grid variant of [`MetricSpace::wide_cmp_distance_to_set_bounded`]
    /// over the grid's members: an upper bound on the true
    /// certification-space minimum, exact whenever it exceeds
    /// `stop_below`.  All distances are the ground-truth f64
    /// [`MetricSpace::wide_cmp_distance`] pairs.
    pub fn wide_nearest_bounded<Sp: MetricSpace + ?Sized>(
        &self,
        space: &Sp,
        members: &[PointId],
        query: PointId,
        stop_below: f64,
    ) -> f64 {
        debug_assert_eq!(members.len(), self.len, "grid/member list mismatch");
        let row = space.coord_row(query).expect("grid-compatible space");
        let mut q = [0usize; MAX_GRID_DIM];
        self.coords_of(row, &mut q);
        let mut best = f64::INFINITY;
        for rho in 0..=self.max_ring(&q) {
            // A ring that cannot *lower* the minimum cannot change the
            // result (non-strict: an equal value is not an improvement).
            if self.ring_lb(rho) * (1.0 - self.wide_slack) >= best {
                break;
            }
            let keep_going = self.for_each_ring_cell(&q, rho, |cell| {
                if self.lb_dist2(cell, row) * (1.0 - self.wide_slack) < best {
                    for &pos in
                        &self.bucket[self.starts[cell] as usize..self.starts[cell + 1] as usize]
                    {
                        let w = space.wide_cmp_distance(query, members[pos as usize]);
                        if w < best {
                            best = w;
                            if best <= stop_below {
                                return false;
                            }
                        }
                    }
                }
                true
            });
            if !keep_going {
                break;
            }
        }
        best
    }
}

/// Conservative relative slack covering the worst-case rounding of a
/// storage-precision squared-distance accumulation plus the f64 box-bound
/// arithmetic: `(d + 8) · 4 · u` for unit roundoff `u`, several times the
/// `~(d + 3) · u` analytic bound.
fn cmp_slack<S: Scalar>(dim: usize) -> f64 {
    (dim as f64 + 8.0) * 4.0 * S::UNIT_ROUNDOFF
}

/// Grid accelerator for the fused Gonzalez relaxation: buckets the subset
/// once, then serves [`GridRelaxer::relax_max`] passes that sweep occupied
/// cells in ascending order, skipping cells the new center provably cannot
/// touch.
///
/// Each occupied cell caches `(position, value)` of the lowest-position
/// maximum `nearest[]` entry among its members; a skipped cell's cache
/// stays valid because the skip condition proves no slot in it changed.
/// Folding the caches with a "greater value, or equal value at a lower
/// position" rule reproduces the dense lowest-index argmax bit-for-bit.
pub struct GridRelaxer<S: Scalar> {
    /// Shared so a sweep can rebuild relaxers from one cached bucketing —
    /// [`SpatialGrid::build`] (bbox pass + counting sort) is the expensive
    /// part; the per-selection `cell_best` state below is O(occupied).
    grid: Arc<SpatialGrid>,
    /// Per *occupied* cell (parallel to `grid.occupied`): lowest-position
    /// argmax of `nearest[]` over the cell's members.  Starts at
    /// `(first member, +inf)` — every slot is `+inf` before the first
    /// relax pass.
    cell_best: Vec<(u32, S)>,
}

impl<S: Scalar> GridRelaxer<S> {
    /// Buckets `members` (the relax subset, positions `0..members.len()`)
    /// of `space`; `None` exactly when [`SpatialGrid::build`] refuses the
    /// space ([`RELAX_OCCUPANCY`] members per cell).
    pub fn build<Sp: MetricSpace<Cmp = S> + ?Sized>(
        space: &Sp,
        members: &[PointId],
    ) -> Option<GridRelaxer<S>> {
        SpatialGrid::build(space, members, RELAX_OCCUPANCY)
            .map(Arc::new)
            .map(Self::from_grid)
    }

    /// Wraps an already-built bucketing (of the *same* member list) with
    /// fresh relax state — the cheap part of [`GridRelaxer::build`], so a
    /// sweep can run many selections against one [`SpatialGrid`] (see
    /// [`RelaxGridCache`]).
    pub fn from_grid(grid: Arc<SpatialGrid>) -> GridRelaxer<S> {
        let cell_best = grid
            .occupied
            .iter()
            .map(|&c| (grid.bucket[grid.starts[c as usize] as usize], S::INFINITY))
            .collect();
        GridRelaxer { grid, cell_best }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &SpatialGrid {
        &self.grid
    }

    /// The underlying grid, shareable with further relaxers.
    pub fn shared_grid(&self) -> &Arc<SpatialGrid> {
        &self.grid
    }

    /// One fused Gonzalez iteration, bit-identical to
    /// [`MetricSpace::relax_nearest_max`] (lower `nearest[pos]` to the
    /// distance to `center`, return the lowest-position maximum entry)
    /// whenever the per-pair comparison values match the dense kernel's —
    /// see the module docs for the backend caveat.
    ///
    /// # Panics
    ///
    /// Panics if `members`/`nearest` do not match the list the relaxer was
    /// built over.
    pub fn relax_max<Sp: MetricSpace<Cmp = S> + ?Sized>(
        &mut self,
        space: &Sp,
        members: &[PointId],
        center: PointId,
        nearest: &mut [S],
    ) -> (usize, S) {
        assert_eq!(members.len(), self.grid.len, "grid/member list mismatch");
        assert_eq!(
            members.len(),
            nearest.len(),
            "subset/nearest length mismatch"
        );
        let center_row = space.coord_row(center).expect("grid-compatible space");
        for (oi, &cell_u) in self.grid.occupied.iter().enumerate() {
            let cell = cell_u as usize;
            let cached = self.cell_best[oi].1.to_f64();
            // No member of this cell can get closer than the box bound; if
            // even that (with comparison-rounding slack) cannot undercut
            // the cell's current maximum slot, no slot in the cell changes
            // and the cached record stays exact.
            if self.grid.lb_dist2(cell, center_row) * (1.0 - self.grid.cmp_slack) >= cached {
                continue;
            }
            let mut rec = (u32::MAX, S::NEG_INFINITY);
            let span = self.grid.starts[cell] as usize..self.grid.starts[cell + 1] as usize;
            for &pos in &self.grid.bucket[span] {
                let p = pos as usize;
                let d = space.cmp_distance(members[p], center);
                let slot = &mut nearest[p];
                if d < *slot {
                    *slot = d;
                }
                if *slot > rec.1 {
                    rec = (pos, *slot);
                }
            }
            self.cell_best[oi] = rec;
        }
        let mut best = (usize::MAX, S::NEG_INFINITY);
        for &(p, v) in &self.cell_best {
            if v > best.1 || (v == best.1 && (p as usize) < best.0) {
                best = (p as usize, v);
            }
        }
        if best.0 == usize::MAX {
            (0, S::NEG_INFINITY)
        } else {
            best
        }
    }
}

/// Build-once cache of the relax bucketing for a **fixed** member list.
///
/// A `(k, φ)` sweep re-runs the Gonzalez selection many times over the
/// same candidate rows (a coreset's representatives never change once
/// built), and each selection used to re-bucket them from scratch.  The
/// cache latches the first [`SpatialGrid::build`] outcome — including a
/// refusal (`None`), so incompatible spaces are probed exactly once — and
/// every later selection pays only the O(occupied) relax-state reset in
/// [`GridRelaxer::from_grid`].  Results are bit-identical to fresh builds
/// because the grid depends only on the rows and the occupancy target.
///
/// The caller owns the keying: a cache is valid for exactly one
/// `(space, members)` pair at [`RELAX_OCCUPANCY`].  Cloning shares the
/// latched grid (it is behind an [`Arc`]).
#[derive(Clone, Default)]
pub struct RelaxGridCache {
    slot: OnceLock<Option<Arc<SpatialGrid>>>,
}

impl RelaxGridCache {
    /// An empty cache; the grid is built on first use.
    pub fn new() -> RelaxGridCache {
        RelaxGridCache::default()
    }

    /// A relaxer over `members` of `space`, bucketing on the first call
    /// and reusing the cached [`SpatialGrid`] afterwards.  `None` exactly
    /// when [`GridRelaxer::build`] would refuse the space.
    pub fn get_or_build<S: Scalar, Sp: MetricSpace<Cmp = S> + ?Sized>(
        &self,
        space: &Sp,
        members: &[PointId],
    ) -> Option<GridRelaxer<S>> {
        self.slot
            .get_or_init(|| SpatialGrid::build(space, members, RELAX_OCCUPANCY).map(Arc::new))
            .clone()
            .map(GridRelaxer::from_grid)
    }

    /// Whether the build outcome (grid or refusal) is already latched.
    pub fn is_built(&self) -> bool {
        self.slot.get().is_some()
    }
}

impl fmt::Debug for RelaxGridCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = match self.slot.get() {
            None => "unbuilt",
            Some(Some(_)) => "built",
            Some(None) => "refused",
        };
        write!(f, "RelaxGridCache({state})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{Euclidean, Manhattan};
    use crate::flat::FlatPoints;
    use crate::matrix::DistanceMatrix;
    use crate::space::{MatrixSpace, VecSpace};

    /// Deterministic integer-lattice coordinates: squared distances stay
    /// exactly representable at f32, so grid/dense parity is exact under
    /// every kernel backend.
    fn lattice_flat<S: Scalar>(n: usize, dim: usize, seed: u64) -> FlatPoints<S> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coords = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            coords.push(S::from_f64((next() % 1000) as f64));
        }
        FlatPoints::from_coords(coords, dim).unwrap()
    }

    fn dense_nearest<Sp: MetricSpace + ?Sized>(
        space: &Sp,
        members: &[PointId],
        query: PointId,
    ) -> (usize, Sp::Cmp) {
        let mut best = (0usize, <Sp::Cmp as Scalar>::INFINITY);
        for (i, &m) in members.iter().enumerate() {
            let d = space.cmp_distance(query, m);
            if d < best.1 {
                best = (i, d);
            }
        }
        best
    }

    #[test]
    fn choice_parses_and_rejects() {
        assert_eq!(AssignChoice::parse("auto").unwrap(), AssignChoice::Auto);
        assert_eq!(
            AssignChoice::parse("DENSE").unwrap(),
            AssignChoice::Fixed(AssignMode::Dense)
        );
        assert_eq!(
            AssignChoice::parse("grid").unwrap(),
            AssignChoice::Fixed(AssignMode::Grid)
        );
        let err = AssignChoice::parse("quadtree").unwrap_err();
        assert_eq!(
            err,
            AssignSelectError::Unknown {
                value: "quadtree".into()
            }
        );
        assert!(err.to_string().contains("quadtree"));
        assert_eq!(AssignChoice::Fixed(AssignMode::Grid).name(), "grid");
    }

    #[test]
    fn auto_mode_prefers_dense_for_small_shapes() {
        // Tiny scans and coordinate-free spaces stay dense.
        for shape in [
            ScanShape {
                points: 100,
                candidates: 1000,
                dim: 2,
            },
            ScanShape {
                points: 1 << 20,
                candidates: 2,
                dim: 2,
            },
            ScanShape {
                points: 1 << 20,
                candidates: 1000,
                dim: 0,
            },
            ScanShape {
                points: 1 << 20,
                candidates: 1000,
                dim: 64,
            },
        ] {
            assert_eq!(auto_mode(shape), AssignMode::Dense, "{shape:?}");
        }
        assert_eq!(
            auto_mode(ScanShape {
                points: 1 << 20,
                candidates: 64,
                dim: 2,
            }),
            AssignMode::Grid
        );
    }

    #[test]
    fn scan_telemetry_counts_both_arms() {
        reset_scan_counts();
        note_scan(AssignMode::Grid);
        note_scan(AssignMode::Grid);
        note_scan(AssignMode::Dense);
        assert_eq!(scan_counts(), (2, 1));
        reset_scan_counts();
        assert_eq!(scan_counts(), (0, 0));
    }

    #[test]
    fn build_refuses_degenerate_inputs() {
        // All-duplicate members: every extent is zero.
        let flat = FlatPoints::from_coords(vec![3.0, 4.0, 3.0, 4.0, 3.0, 4.0], 2).unwrap();
        let space = VecSpace::from_flat(flat);
        assert!(SpatialGrid::build(&space, &[0, 1, 2], RELAX_OCCUPANCY).is_none());
        // Empty member list.
        assert!(SpatialGrid::build(&space, &[], RELAX_OCCUPANCY).is_none());
        // Non-Euclidean surrogate: box bounds would be invalid.
        let flat = FlatPoints::from_coords(vec![0.0, 0.0, 5.0, 1.0], 2).unwrap();
        let manhattan = VecSpace::from_flat_with_distance(flat, Manhattan);
        assert!(SpatialGrid::build(&manhattan, &[0, 1], RELAX_OCCUPANCY).is_none());
        // Matrix spaces expose no coordinate rows.
        let mut m = DistanceMatrix::<f64>::zeros(2);
        m.set(0, 1, 1.0);
        let ms = MatrixSpace::new(m);
        assert!(SpatialGrid::build(&ms, &[0, 1], RELAX_OCCUPANCY).is_none());
    }

    #[test]
    fn duplicate_heavy_but_not_degenerate_data_builds_and_matches() {
        // One dimension collapses to a point; the other carries extent.
        let mut coords = Vec::new();
        for i in 0..64 {
            coords.push(7.0);
            coords.push((i % 4) as f64);
        }
        let flat = FlatPoints::from_coords(coords, 2).unwrap();
        let space = VecSpace::from_flat(flat);
        let members: Vec<PointId> = (0..64).collect();
        let grid = SpatialGrid::build(&space, &members, NEAREST_OCCUPANCY).unwrap();
        for q in 0..64 {
            assert_eq!(
                grid.nearest_member(&space, &members, q),
                dense_nearest(&space, &members, q),
                "query {q}"
            );
        }
    }

    #[test]
    fn nearest_member_matches_dense_argmin_with_ties() {
        let flat = lattice_flat::<f64>(256, 3, 11);
        let space = VecSpace::from_flat(flat);
        // Members: a strided candidate subset (with deliberate duplicate
        // coordinates from the small lattice forcing distance ties).
        let members: Vec<PointId> = (0..256).step_by(3).collect();
        let grid = SpatialGrid::build(&space, &members, NEAREST_OCCUPANCY).unwrap();
        for q in 0..256 {
            assert_eq!(
                grid.nearest_member(&space, &members, q),
                dense_nearest(&space, &members, q),
                "query {q}"
            );
        }
    }

    #[test]
    fn nearest_member_matches_dense_at_f32() {
        let flat = lattice_flat::<f32>(300, 4, 23);
        let space: VecSpace<Euclidean, f32> = VecSpace::from_flat(flat);
        let members: Vec<PointId> = (0..300).step_by(7).collect();
        let grid = SpatialGrid::build(&space, &members, NEAREST_OCCUPANCY).unwrap();
        for q in 0..300 {
            assert_eq!(
                grid.nearest_member(&space, &members, q),
                dense_nearest(&space, &members, q),
                "query {q}"
            );
        }
    }

    #[test]
    fn wide_nearest_bounded_is_exact_above_stop_and_upper_bound_below() {
        let flat = lattice_flat::<f64>(200, 2, 5);
        let space = VecSpace::from_flat(flat);
        let members: Vec<PointId> = (0..200).step_by(5).collect();
        let grid = SpatialGrid::build(&space, &members, NEAREST_OCCUPANCY).unwrap();
        for q in 0..200 {
            let exact = space.wide_cmp_distance_to_set(q, &members);
            // Threshold below the minimum: exact.
            let got = grid.wide_nearest_bounded(&space, &members, q, -1.0);
            assert_eq!(got, exact, "query {q}");
            // Generous threshold: never understates.
            let bounded = grid.wide_nearest_bounded(&space, &members, q, f64::INFINITY);
            assert!(bounded >= exact, "query {q}");
        }
    }

    #[test]
    fn relax_trajectory_matches_dense_over_many_centers() {
        let flat = lattice_flat::<f64>(512, 2, 42);
        let space = VecSpace::from_flat(flat);
        let members: Vec<PointId> = (0..512).collect();
        let mut relaxer = GridRelaxer::build(&space, &members).unwrap();
        let mut grid_nearest = vec![f64::INFINITY; members.len()];
        let mut dense_nearest = vec![f64::INFINITY; members.len()];
        let mut center = 17;
        for round in 0..24 {
            let g = relaxer.relax_max(&space, &members, center, &mut grid_nearest);
            let d = space.relax_nearest_max(&members, center, &mut dense_nearest);
            assert_eq!(g, d, "round {round}");
            assert_eq!(grid_nearest, dense_nearest, "round {round}");
            center = members[g.0];
        }
    }

    #[test]
    fn relax_trajectory_matches_dense_at_f32_with_duplicates() {
        let mut flat = lattice_flat::<f32>(400, 3, 9);
        // Duplicate a block of rows to force exact ties in the argmax.
        for i in 0..40 {
            let row: Vec<f32> = flat.row(i).to_vec();
            flat.push_row(&row);
        }
        let space: VecSpace<Euclidean, f32> = VecSpace::from_flat(flat);
        let members: Vec<PointId> = (0..440).collect();
        let mut relaxer = GridRelaxer::build(&space, &members).unwrap();
        let mut grid_nearest = vec![f32::INFINITY; members.len()];
        let mut dense_nearest = vec![f32::INFINITY; members.len()];
        let mut center = 3;
        for round in 0..16 {
            let g = relaxer.relax_max(&space, &members, center, &mut grid_nearest);
            let d = space.relax_nearest_max(&members, center, &mut dense_nearest);
            assert_eq!(g, d, "round {round}");
            assert_eq!(grid_nearest, dense_nearest, "round {round}");
            center = members[g.0];
        }
    }

    #[test]
    fn relax_handles_non_identity_subsets() {
        let flat = lattice_flat::<f64>(600, 4, 77);
        let space = VecSpace::from_flat(flat);
        let members: Vec<PointId> = (0..600).step_by(2).collect();
        let mut relaxer = GridRelaxer::build(&space, &members).unwrap();
        let mut grid_nearest = vec![f64::INFINITY; members.len()];
        let mut dense_nearest = vec![f64::INFINITY; members.len()];
        let mut center = members[5];
        for round in 0..12 {
            let g = relaxer.relax_max(&space, &members, center, &mut grid_nearest);
            let d = space.relax_nearest_max(&members, center, &mut dense_nearest);
            assert_eq!(g, d, "round {round}");
            assert_eq!(grid_nearest, dense_nearest, "round {round}");
            center = members[g.0];
        }
    }

    #[test]
    fn relax_grid_cache_builds_once_and_reuses_bit_identically() {
        let flat = lattice_flat::<f64>(512, 2, 42);
        let space = VecSpace::from_flat(flat);
        let members: Vec<PointId> = (0..512).collect();
        let cache = RelaxGridCache::new();
        assert!(!cache.is_built());
        assert_eq!(format!("{cache:?}"), "RelaxGridCache(unbuilt)");

        let first: GridRelaxer<f64> = cache.get_or_build(&space, &members).unwrap();
        assert!(cache.is_built());
        assert_eq!(format!("{cache:?}"), "RelaxGridCache(built)");
        // The second relaxer shares the first's bucketing rather than
        // rebuilding it — and a clone of the cache shares it too.
        let second: GridRelaxer<f64> = cache.get_or_build(&space, &members).unwrap();
        assert!(Arc::ptr_eq(first.shared_grid(), second.shared_grid()));
        let cloned: GridRelaxer<f64> = cache.clone().get_or_build(&space, &members).unwrap();
        assert!(Arc::ptr_eq(first.shared_grid(), cloned.shared_grid()));

        // A cached relaxer replays the exact trajectory of a fresh build.
        let mut fresh = GridRelaxer::build(&space, &members).unwrap();
        let mut cached = second;
        let mut fresh_nearest = vec![f64::INFINITY; members.len()];
        let mut cached_nearest = vec![f64::INFINITY; members.len()];
        let mut center = 17;
        for round in 0..24 {
            let c = cached.relax_max(&space, &members, center, &mut cached_nearest);
            let f = fresh.relax_max(&space, &members, center, &mut fresh_nearest);
            assert_eq!(c, f, "round {round}");
            assert_eq!(cached_nearest, fresh_nearest, "round {round}");
            center = members[c.0];
        }
    }

    #[test]
    fn relax_grid_cache_latches_a_refusal() {
        // All-duplicate members: the build refuses, and the cache records
        // that outcome instead of re-probing on every selection.
        let flat = FlatPoints::from_coords(vec![3.0, 4.0, 3.0, 4.0, 3.0, 4.0], 2).unwrap();
        let space = VecSpace::from_flat(flat);
        let members: Vec<PointId> = vec![0, 1, 2];
        let cache = RelaxGridCache::new();
        assert!(cache.get_or_build::<f64, _>(&space, &members).is_none());
        assert!(cache.is_built());
        assert_eq!(format!("{cache:?}"), "RelaxGridCache(refused)");
        assert!(cache.get_or_build::<f64, _>(&space, &members).is_none());
    }

    #[test]
    fn grid_shape_is_bounded_by_member_count() {
        let flat = lattice_flat::<f64>(1000, 2, 1);
        let space = VecSpace::from_flat(flat);
        let members: Vec<PointId> = (0..1000).collect();
        let grid = SpatialGrid::build(&space, &members, RELAX_OCCUPANCY).unwrap();
        assert!(grid.cells() <= 1000 / RELAX_OCCUPANCY);
        assert!(grid.occupied_cells() <= grid.cells());
        assert_eq!(grid.len(), 1000);
        assert!(!grid.is_empty());
        assert_eq!(grid.dim(), 2);
    }
}
