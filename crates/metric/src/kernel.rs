//! Hot scan kernels over [`FlatPoints`] rows, generic over the storage
//! scalar.
//!
//! These are the inner loops the whole workspace's runtime comes down to:
//!
//! * [`dist2`] — squared Euclidean distance between two rows, unrolled into
//!   four independent accumulators so the FP adds pipeline (a single
//!   accumulator serialises on the add latency);
//! * [`relax_nearest`] — the fused Gonzalez step: given one new center,
//!   lower every point's "distance to nearest chosen center" in one linear
//!   walk, with **no** square roots (comparisons happen in squared space;
//!   callers take one `sqrt` per final winner, not one per pair);
//! * [`par_relax_nearest`] / [`par_argmax`] — chunked rayon variants with a
//!   sequential cutoff so small partitions (MRG reducers, EIM samples) don't
//!   pay scheduler overhead.
//!
//! # Scalar genericity and the two accumulation modes
//!
//! Every kernel is generic over [`Scalar`] (`f64` or `f32`) and
//! monomorphises to the same 4-accumulator loop at either width, so the
//! `f32` instantiation reads half the bytes per coordinate — the whole point
//! of the reduced-precision storage mode; the comparison-space scans
//! (selection, relaxation, assignment) run entirely in `S`.
//!
//! The `wide_*` variants ([`dist2_wide`]) are the *certification* kernels:
//! they read the same `S` rows but convert each coordinate to `f64` before
//! accumulating, in exactly the same summation order as [`dist2`].  Two
//! consequences:
//!
//! * at `S = f64` the wide kernel is bit-identical to the narrow one, so the
//!   default precision is numerically unchanged by this refactor;
//! * at `S = f32` every *reported* quantity (covering radius, coverage
//!   checks — everything routed through `MetricSpace`'s `wide_cmp_*`
//!   family) is exact `f64` arithmetic over the stored rows: the only error
//!   an `f32` run carries is the one-time `2^-24` input rounding of each
//!   coordinate, never accumulated scan error.
//!
//! # SIMD dispatch
//!
//! The hot entry points ([`relax_max_rows_coords`], [`relax_max_ids_coords`],
//! [`dist2_auto`], [`dist2_wide_auto`]) consult the [`simd`] dispatch table:
//! a backend ([`simd::KernelBackend`]) selected once at startup —
//! `KCENTER_KERNEL={auto,scalar,portable,avx2}`, the CLI `--kernel` flag, or
//! [`simd::set_active`] — provides width-pinned (AVX2+FMA or portable-lane)
//! kernels where the row shape supports them and falls back to the scalar
//! kernels below one vector of coordinates.  The plain kernels ([`dist2`],
//! [`dist2_wide`]) remain the fixed scalar implementations: the `wide_cmp_*`
//! certification scans build on them so reported quality numbers never
//! depend on the dispatched backend (see the [`simd`] module docs).
//!
//! # Determinism
//!
//! The parallel variants compute exactly the same per-element values as the
//! sequential ones (chunking only partitions the index space), so their
//! results are bit-for-bit identical per `(seed, precision, kernel)` triple
//! — a property the `flat_kernels` integration test pins down (the third
//! coordinate is the dispatched [`simd::KernelBackend`]; each backend fixes
//! its own accumulation order, see the [`simd`] docs for the FMA rounding
//! story).  Argmax tie-breaking is part of that contract in **every**
//! backend: ties always resolve to the **lowest index** (see [`argmax`]),
//! which matters more at `f32` where coarser rounding produces more exact
//! ties.

pub mod simd;

use crate::flat::FlatPoints;
use crate::scalar::Scalar;
use crate::PointId;
use rayon::prelude::*;
use simd::KernelBackend;

/// Chunk length for the parallel kernels: big enough to amortise a spawn,
/// small enough to balance across cores on million-point inputs.  Shared
/// with the `MetricSpace`/`VecSpace` parallel scans so there is one tuning
/// knob.
pub const PAR_CHUNK: usize = 1 << 14;

/// Below this many points the `par_*` kernels run sequentially: forking a
/// scan over a few thousand rows costs more than the scan itself.  At
/// least two [`PAR_CHUNK`]s, so the parallel branch always has more than
/// one chunk to hand out.
pub const PAR_CUTOFF: usize = 2 * PAR_CHUNK;

/// Squared Euclidean distance between two equal-length rows, computed and
/// accumulated in `S`.
///
/// Four independent accumulators break the loop-carried dependency on the
/// sum, letting the FP units pipeline; the tails fall back to a plain loop.
#[inline]
pub fn dist2<S: Scalar>(a: &[S], b: &[S]) -> S {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut s0 = S::ZERO;
    let mut s1 = S::ZERO;
    let mut s2 = S::ZERO;
    let mut s3 = S::ZERO;
    let mut i = 0;
    while i + 4 <= n {
        let d0 = a[i] - b[i];
        let d1 = a[i + 1] - b[i + 1];
        let d2 = a[i + 2] - b[i + 2];
        let d3 = a[i + 3] - b[i + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
        i += 4;
    }
    while i < n {
        let d = a[i] - b[i];
        s0 += d * d;
        i += 1;
    }
    (s0 + s1) + (s2 + s3)
}

/// Squared Euclidean distance between two `S` rows, accumulated in `f64`
/// (each coordinate widened before subtracting) — the certification kernel
/// behind the `wide_cmp_*` family.
///
/// Uses the same 4-accumulator summation order as [`dist2`], so at
/// `S = f64` the two kernels are bit-identical.
#[inline]
pub fn dist2_wide<S: Scalar>(a: &[S], b: &[S]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let mut i = 0;
    while i + 4 <= n {
        let d0 = a[i].to_f64() - b[i].to_f64();
        let d1 = a[i + 1].to_f64() - b[i + 1].to_f64();
        let d2 = a[i + 2].to_f64() - b[i + 2].to_f64();
        let d3 = a[i + 3].to_f64() - b[i + 3].to_f64();
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
        i += 4;
    }
    while i < n {
        let d = a[i].to_f64() - b[i].to_f64();
        s0 += d * d;
        i += 1;
    }
    (s0 + s1) + (s2 + s3)
}

/// [`dist2`] through the dispatched kernel backend: width-pinned SIMD when
/// the active [`simd::KernelBackend`] provides a kernel for this scalar and
/// row length, the scalar kernel otherwise.  This is the comparison-space
/// fast path behind `Euclidean::surrogate`; values are bit-deterministic
/// per `(precision, kernel)` (an FMA backend may differ from the scalar
/// kernel in the last ulps — see the [`simd`] module docs).
#[inline]
pub fn dist2_auto<S: Scalar>(a: &[S], b: &[S]) -> S {
    match S::simd_dist2(simd::active(), a, b) {
        Some(v) => v,
        None => dist2(a, b),
    }
}

/// [`dist2_wide`] through the dispatched kernel backend (`f64` lanes fed
/// from the `S` rows).  Batch *reporting* helpers (`distances_from`, the
/// distance-matrix build, the lower-bound scans) ride this; the `wide_cmp_*`
/// certification scans deliberately keep calling the scalar [`dist2_wide`]
/// so certified quality numbers never depend on the dispatched backend.
#[inline]
pub fn dist2_wide_auto<S: Scalar>(a: &[S], b: &[S]) -> f64 {
    match S::simd_dist2_wide(simd::active(), a, b) {
        Some(v) => v,
        None => dist2_wide(a, b),
    }
}

/// Squared Euclidean distance between rows `i` and `j` of the store.
#[inline]
pub fn dist2_rows<S: Scalar>(flat: &FlatPoints<S>, i: PointId, j: PointId) -> S {
    dist2(flat.row(i), flat.row(j))
}

/// Minimum squared distance from `row` to any of the `centers` rows.
///
/// Returns `S::INFINITY` when `centers` is empty.
#[inline]
pub fn nearest2<S: Scalar>(flat: &FlatPoints<S>, row: &[S], centers: &[PointId]) -> S {
    let mut best = S::INFINITY;
    for &c in centers {
        let d = dist2(row, flat.row(c));
        if d < best {
            best = d;
        }
    }
    best
}

/// Like [`nearest2`], but stops scanning centers as soon as the running
/// minimum drops to `stop_below` or less.  The returned value is always an
/// upper bound on the true minimum and is exact whenever it exceeds
/// `stop_below` — exactly what coverage checks and max-of-min scans need.
#[inline]
pub fn nearest2_bounded<S: Scalar>(
    flat: &FlatPoints<S>,
    row: &[S],
    centers: &[PointId],
    stop_below: S,
) -> S {
    let mut best = S::INFINITY;
    for &c in centers {
        let d = dist2(row, flat.row(c));
        if d < best {
            best = d;
            if best <= stop_below {
                break;
            }
        }
    }
    best
}

/// The fused Gonzalez relaxation: for every `subset[i]`, lowers
/// `nearest[i]` to `min(nearest[i], dist2(subset[i], center))`.
///
/// One linear walk over contiguous rows, no `sqrt`, no allocation.
pub fn relax_nearest<S: Scalar>(
    flat: &FlatPoints<S>,
    subset: &[PointId],
    center: PointId,
    nearest: &mut [S],
) {
    debug_assert_eq!(subset.len(), nearest.len());
    let center_row = flat.row(center);
    for (slot, &p) in nearest.iter_mut().zip(subset) {
        let d = dist2(flat.row(p), center_row);
        if d < *slot {
            *slot = d;
        }
    }
}

/// Chunked rayon variant of [`relax_nearest`] with a sequential cutoff.
///
/// Bit-for-bit identical to the sequential kernel: chunking partitions the
/// index space without changing any per-element computation.
pub fn par_relax_nearest<S: Scalar>(
    flat: &FlatPoints<S>,
    subset: &[PointId],
    center: PointId,
    nearest: &mut [S],
) {
    debug_assert_eq!(subset.len(), nearest.len());
    if subset.len() < PAR_CUTOFF {
        return relax_nearest(flat, subset, center, nearest);
    }
    let center_row = flat.row(center);
    nearest
        .par_chunks_mut(PAR_CHUNK)
        .zip(subset.par_chunks(PAR_CHUNK))
        .for_each(|(near_chunk, sub_chunk)| {
            for (slot, &p) in near_chunk.iter_mut().zip(sub_chunk) {
                let d = dist2(flat.row(p), center_row);
                if d < *slot {
                    *slot = d;
                }
            }
        });
}

/// Fused relax + argmax over a raw row-major coordinate block, dispatching
/// to a dimension-specialised inner loop: with the row length known at
/// compile time the distance unrolls fully, bounds checks vanish, and the
/// center row stays in registers.
///
/// Updates `nearest[i] = min(nearest[i], dist2(row_i, center_row))` and
/// returns the position and value of the maximum updated entry (ties toward
/// the smaller index) — one Gonzalez iteration in a single memory pass.
/// This is the kernel behind `Distance::relax_rows_max` for the Euclidean
/// metric; the `MetricSpace` scans in `space.rs` chunk over it for their
/// parallel variants.
pub fn relax_max_rows_coords<S: Scalar>(
    coords: &[S],
    dim: usize,
    center_row: &[S],
    nearest: &mut [S],
) -> (usize, S) {
    relax_max_rows_coords_with(simd::active(), coords, dim, center_row, nearest)
}

/// [`relax_max_rows_coords`] under an explicit kernel backend — the A/B
/// entry the dispatch parity tests and benches use.  Backends without a
/// width-pinned kernel for this `(scalar, dim)` shape (always the case for
/// [`KernelBackend::Scalar`], and for every backend below one vector of
/// coordinates) run the dimension-specialised scalar loop.
pub fn relax_max_rows_coords_with<S: Scalar>(
    backend: KernelBackend,
    coords: &[S],
    dim: usize,
    center_row: &[S],
    nearest: &mut [S],
) -> (usize, S) {
    if let Some(best) = S::simd_relax_rows_max(backend, coords, dim, center_row, nearest) {
        return best;
    }
    macro_rules! dispatch {
        ($($d:literal),*) => {
            match dim {
                $($d => fused_rows::<S, $d>(coords, center_row, nearest),)*
                _ => fused_rows_dyn(coords, dim, center_row, nearest),
            }
        };
    }
    // The workspace's workload dimensions: 2 (UNIF), 3 (GAU/UNB), 10
    // (Poker Hand), 38 (KDD Cup), plus common bench sizes.
    dispatch!(2, 3, 4, 8, 10, 16, 32, 38, 64)
}

/// [`relax_max_rows_coords`] over an explicit id subset (MRG reducer
/// partitions, EIM samples): row `subset[i]` pairs with `nearest[i]`.
/// This is the kernel behind `Distance::relax_ids_max` for the Euclidean
/// metric.
pub fn relax_max_ids_coords<S: Scalar>(
    coords: &[S],
    dim: usize,
    subset: &[PointId],
    center_row: &[S],
    nearest: &mut [S],
) -> (usize, S) {
    relax_max_ids_coords_with(simd::active(), coords, dim, subset, center_row, nearest)
}

/// [`relax_max_ids_coords`] under an explicit kernel backend (see
/// [`relax_max_rows_coords_with`]).
pub fn relax_max_ids_coords_with<S: Scalar>(
    backend: KernelBackend,
    coords: &[S],
    dim: usize,
    subset: &[PointId],
    center_row: &[S],
    nearest: &mut [S],
) -> (usize, S) {
    debug_assert_eq!(subset.len(), nearest.len());
    if let Some(best) = S::simd_relax_ids_max(backend, coords, dim, subset, center_row, nearest) {
        return best;
    }
    macro_rules! dispatch {
        ($($d:literal),*) => {
            match dim {
                $($d => fused_subset::<S, $d>(coords, subset, center_row, nearest),)*
                _ => fused_subset_dyn(coords, dim, subset, center_row, nearest),
            }
        };
    }
    dispatch!(2, 3, 4, 8, 10, 16, 32, 38, 64)
}

/// The dimension-specialised fused inner loop over contiguous rows.
fn fused_rows<S: Scalar, const D: usize>(
    coords: &[S],
    center: &[S],
    nearest: &mut [S],
) -> (usize, S) {
    let center: &[S; D] = center.try_into().expect("center row length");
    let mut best = (0usize, S::NEG_INFINITY);
    for (i, (row, slot)) in coords.chunks_exact(D).zip(nearest.iter_mut()).enumerate() {
        let row: &[S; D] = row.try_into().expect("row length");
        let d = dist2_arrays(row, center);
        if d < *slot {
            *slot = d;
        }
        if *slot > best.1 {
            best = (i, *slot);
        }
    }
    best
}

/// Dynamic-dimension fallback of [`fused_rows`].
fn fused_rows_dyn<S: Scalar>(
    coords: &[S],
    dim: usize,
    center: &[S],
    nearest: &mut [S],
) -> (usize, S) {
    let mut best = (0usize, S::NEG_INFINITY);
    for (i, (row, slot)) in coords.chunks_exact(dim).zip(nearest.iter_mut()).enumerate() {
        let d = dist2(row, center);
        if d < *slot {
            *slot = d;
        }
        if *slot > best.1 {
            best = (i, *slot);
        }
    }
    best
}

/// The dimension-specialised fused inner loop over an id subset.
fn fused_subset<S: Scalar, const D: usize>(
    coords: &[S],
    subset: &[PointId],
    center: &[S],
    nearest: &mut [S],
) -> (usize, S) {
    let center: &[S; D] = center.try_into().expect("center row length");
    let mut best = (0usize, S::NEG_INFINITY);
    for (i, (&p, slot)) in subset.iter().zip(nearest.iter_mut()).enumerate() {
        let row: &[S; D] = coords[p * D..p * D + D].try_into().expect("row length");
        let d = dist2_arrays(row, center);
        if d < *slot {
            *slot = d;
        }
        if *slot > best.1 {
            best = (i, *slot);
        }
    }
    best
}

/// Dynamic-dimension fallback of [`fused_subset`].
fn fused_subset_dyn<S: Scalar>(
    coords: &[S],
    dim: usize,
    subset: &[PointId],
    center: &[S],
    nearest: &mut [S],
) -> (usize, S) {
    let mut best = (0usize, S::NEG_INFINITY);
    for (i, (&p, slot)) in subset.iter().zip(nearest.iter_mut()).enumerate() {
        let d = dist2(&coords[p * dim..p * dim + dim], center);
        if d < *slot {
            *slot = d;
        }
        if *slot > best.1 {
            best = (i, *slot);
        }
    }
    best
}

/// Squared distance between two fixed-size rows: the statically known
/// length fully unrolls the accumulator loop.
#[inline]
fn dist2_arrays<S: Scalar, const D: usize>(a: &[S; D], b: &[S; D]) -> S {
    let mut s0 = S::ZERO;
    let mut s1 = S::ZERO;
    let mut s2 = S::ZERO;
    let mut s3 = S::ZERO;
    let mut i = 0;
    while i + 4 <= D {
        let d0 = a[i] - b[i];
        let d1 = a[i + 1] - b[i + 1];
        let d2 = a[i + 2] - b[i + 2];
        let d3 = a[i + 3] - b[i + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
        i += 4;
    }
    while i < D {
        let d = a[i] - b[i];
        s0 += d * d;
        i += 1;
    }
    (s0 + s1) + (s2 + s3)
}

/// Position and value of the maximum entry.
///
/// **Tie-breaking contract:** when several entries share the maximum value,
/// the *lowest index* wins — the scan only replaces the incumbent on a
/// strictly greater value.  [`par_argmax`] upholds the same rule (per-chunk
/// winners combine in index order, earlier chunk wins ties), so the two
/// never diverge.  This matters at `f32`, where coarser rounding makes
/// exact ties far more common than at `f64`; without the rule, parallel and
/// sequential Gonzalez runs could pick different (equally far) points and
/// diverge from there.
///
/// Returns `None` on an empty slice.
pub fn argmax<S: Scalar>(values: &[S]) -> Option<(usize, S)> {
    let mut best: Option<(usize, S)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// Chunked rayon variant of [`argmax`] with a sequential cutoff; identical
/// result *including tie-breaking*: each chunk reports its lowest-index
/// maximum, and the reduction keeps the earlier chunk's winner unless a
/// later one is strictly greater, so the global winner is the lowest index
/// achieving the maximum — exactly the sequential rule.
pub fn par_argmax<S: Scalar>(values: &[S]) -> Option<(usize, S)> {
    if values.len() < PAR_CUTOFF {
        return argmax(values);
    }
    values
        .par_chunks(PAR_CHUNK)
        .enumerate()
        .filter_map(|(chunk_idx, chunk)| argmax(chunk).map(|(i, v)| (chunk_idx * PAR_CHUNK + i, v)))
        .reduce_with(|a, b| if b.1 > a.1 { b } else { a })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn cloud(n: usize, dim: usize) -> FlatPoints {
        let coords: Vec<f64> = (0..n * dim)
            .map(|i| {
                let v = (i as u64)
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                ((v >> 33) % 2_000) as f64 / 10.0 - 100.0
            })
            .collect();
        FlatPoints::from_coords(coords, dim).unwrap()
    }

    #[test]
    fn dist2_matches_naive_sum() {
        for dim in [1usize, 2, 3, 4, 5, 7, 8, 16, 33] {
            let flat = cloud(2, dim);
            let (a, b) = (flat.row(0), flat.row(1));
            let naive: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
            assert!(
                (dist2(a, b) - naive).abs() <= 1e-12 * (1.0 + naive),
                "dim {dim}: {} != {naive}",
                dist2(a, b)
            );
        }
    }

    #[test]
    fn dist2_wide_is_bit_identical_to_dist2_at_f64() {
        for dim in [1usize, 3, 4, 7, 16, 33] {
            let flat = cloud(2, dim);
            let (a, b) = (flat.row(0), flat.row(1));
            assert_eq!(dist2(a, b), dist2_wide(a, b), "dim {dim}");
        }
    }

    #[test]
    fn dist2_wide_accumulates_f32_rows_in_f64() {
        // Coordinates whose squares cannot be represented distinctly at
        // f32 accumulation, widened correctly by the wide kernel.
        let a: Vec<f32> = vec![1_000.0, 1_000.0, 1_000.0, 1_000.0, 0.001];
        let b: Vec<f32> = vec![0.0; 5];
        let wide = dist2_wide(&a, &b);
        // The contract: the wide kernel equals the f64 kernel run on
        // pre-widened rows (same summation order, f64 accumulation).
        let a64: Vec<f64> = a.iter().map(|&x| x as f64).collect();
        let b64: Vec<f64> = b.iter().map(|&x| x as f64).collect();
        assert_eq!(wide, dist2(&a64, &b64));
        // ... which preserves the tiny term the f32 accumulation absorbs.
        assert!(wide > 4_000_000.0);
        assert_eq!(dist2(&a, &b), 4_000_000.0f32);
    }

    #[test]
    fn dist2_of_identical_rows_is_zero() {
        let p = Point::xyz(1.5, -2.0, 3.25);
        let flat = FlatPoints::<f64>::from_points(&[p.clone(), p]);
        assert_eq!(dist2_rows(&flat, 0, 1), 0.0);
    }

    #[test]
    fn nearest2_takes_minimum_and_handles_empty() {
        let flat = cloud(10, 4);
        assert!(nearest2(&flat, flat.row(0), &[]).is_infinite());
        let centers = vec![3, 7, 9];
        let naive = centers
            .iter()
            .map(|&c| dist2_rows(&flat, 0, c))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(nearest2(&flat, flat.row(0), &centers), naive);
    }

    #[test]
    fn bounded_nearest_is_exact_above_the_threshold() {
        let flat = cloud(50, 3);
        let centers: Vec<usize> = (1..50).collect();
        let exact = nearest2(&flat, flat.row(0), &centers);
        let bounded = nearest2_bounded(&flat, flat.row(0), &centers, exact - 1.0);
        assert_eq!(bounded, exact);
        // With a generous threshold the scan may stop early but never
        // understates the minimum.
        let loose = nearest2_bounded(&flat, flat.row(0), &centers, f64::MAX);
        assert!(loose >= exact);
    }

    #[test]
    fn relax_matches_naive_update() {
        let flat = cloud(200, 5);
        let subset: Vec<usize> = (0..200).collect();
        let mut nearest = vec![f64::INFINITY; 200];
        relax_nearest(&flat, &subset, 17, &mut nearest);
        relax_nearest(&flat, &subset, 91, &mut nearest);
        for (i, &v) in nearest.iter().enumerate() {
            let naive = dist2_rows(&flat, i, 17).min(dist2_rows(&flat, i, 91));
            assert_eq!(v, naive);
        }
    }

    #[test]
    fn f32_kernels_mirror_f64_kernels_on_exact_inputs() {
        // Integer-valued coordinates are exact at both precisions, so the
        // two instantiations must agree exactly.
        let coords: Vec<f64> = (0..300 * 4)
            .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % 200) as f64 - 100.0)
            .collect();
        let flat64 = FlatPoints::from_coords(coords, 4).unwrap();
        let flat32 = flat64.to_precision::<f32>();
        let subset: Vec<usize> = (0..300).collect();
        let mut near64 = vec![f64::INFINITY; 300];
        let mut near32 = vec![f32::INFINITY; 300];
        let (pos64, val64) = {
            relax_nearest(&flat64, &subset, 3, &mut near64);
            relax_max_ids_coords(flat64.coords(), 4, &subset, flat64.row(9), &mut near64)
        };
        let (pos32, val32) = {
            relax_nearest(&flat32, &subset, 3, &mut near32);
            relax_max_ids_coords(flat32.coords(), 4, &subset, flat32.row(9), &mut near32)
        };
        assert_eq!(pos64, pos32);
        assert_eq!(val64, val32 as f64);
    }

    #[test]
    fn par_relax_is_bit_identical_to_sequential() {
        let flat = cloud(40_000, 3);
        let subset: Vec<usize> = (0..40_000).collect();
        let mut seq = vec![f64::INFINITY; subset.len()];
        let mut par = seq.clone();
        for center in [5usize, 1_234, 39_999] {
            relax_nearest(&flat, &subset, center, &mut seq);
            par_relax_nearest(&flat, &subset, center, &mut par);
        }
        assert_eq!(seq, par);
    }

    #[test]
    fn argmax_breaks_ties_toward_smaller_index() {
        assert_eq!(argmax::<f64>(&[]), None);
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some((1, 3.0)));
        // All-equal input: position 0 wins.
        assert_eq!(argmax(&[5.0f32; 17]), Some((0, 5.0f32)));
    }

    #[test]
    fn par_argmax_matches_sequential() {
        let values: Vec<f64> = (0..50_000)
            .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % 100_000) as f64)
            .collect();
        assert_eq!(par_argmax(&values), argmax(&values));
    }

    #[test]
    fn par_argmax_breaks_ties_toward_smallest_index_above_cutoff() {
        // Every entry ties: both variants must report index 0.  Then plant
        // duplicated maxima in several chunks: the first occurrence wins.
        let n = PAR_CUTOFF + 4 * PAR_CHUNK;
        let mut values = vec![1.0f32; n];
        assert_eq!(par_argmax(&values), Some((0, 1.0f32)));
        assert_eq!(par_argmax(&values), argmax(&values));
        values[3 * PAR_CHUNK + 7] = 9.0;
        values[5 * PAR_CHUNK + 1] = 9.0;
        assert_eq!(par_argmax(&values), Some((3 * PAR_CHUNK + 7, 9.0f32)));
        assert_eq!(par_argmax(&values), argmax(&values));
    }
}
