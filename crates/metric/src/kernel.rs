//! Hot scan kernels over [`FlatPoints`] rows.
//!
//! These are the inner loops the whole workspace's runtime comes down to:
//!
//! * [`dist2`] — squared Euclidean distance between two rows, unrolled into
//!   four independent accumulators so the FP adds pipeline (a single
//!   accumulator serialises on the add latency);
//! * [`relax_nearest`] — the fused Gonzalez step: given one new center,
//!   lower every point's "distance to nearest chosen center" in one linear
//!   walk, with **no** square roots (comparisons happen in squared space;
//!   callers take one `sqrt` per final winner, not one per pair);
//! * [`par_relax_nearest`] / [`par_argmax`] — chunked rayon variants with a
//!   sequential cutoff so small partitions (MRG reducers, EIM samples) don't
//!   pay scheduler overhead.
//!
//! The parallel variants compute exactly the same per-element values as the
//! sequential ones (chunking only partitions the index space), so their
//! results are bit-for-bit identical — a property the `flat_kernels`
//! integration test pins down.

use crate::flat::FlatPoints;
use crate::PointId;
use rayon::prelude::*;

/// Chunk length for the parallel kernels: big enough to amortise a spawn,
/// small enough to balance across cores on million-point inputs.  Shared
/// with the `MetricSpace`/`VecSpace` parallel scans so there is one tuning
/// knob.
pub const PAR_CHUNK: usize = 1 << 14;

/// Below this many points the `par_*` kernels run sequentially: forking a
/// scan over a few thousand rows costs more than the scan itself.  At
/// least two [`PAR_CHUNK`]s, so the parallel branch always has more than
/// one chunk to hand out.
pub const PAR_CUTOFF: usize = 2 * PAR_CHUNK;

/// Squared Euclidean distance between two equal-length rows.
///
/// Four independent accumulators break the loop-carried dependency on the
/// sum, letting the FP units pipeline; the tails fall back to a plain loop.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut s0 = 0.0;
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    let mut s3 = 0.0;
    let mut i = 0;
    while i + 4 <= n {
        let d0 = a[i] - b[i];
        let d1 = a[i + 1] - b[i + 1];
        let d2 = a[i + 2] - b[i + 2];
        let d3 = a[i + 3] - b[i + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
        i += 4;
    }
    while i < n {
        let d = a[i] - b[i];
        s0 += d * d;
        i += 1;
    }
    (s0 + s1) + (s2 + s3)
}

/// Squared Euclidean distance between rows `i` and `j` of the store.
#[inline]
pub fn dist2_rows(flat: &FlatPoints, i: PointId, j: PointId) -> f64 {
    dist2(flat.row(i), flat.row(j))
}

/// Minimum squared distance from `row` to any of the `centers` rows.
///
/// Returns `f64::INFINITY` when `centers` is empty.
#[inline]
pub fn nearest2(flat: &FlatPoints, row: &[f64], centers: &[PointId]) -> f64 {
    let mut best = f64::INFINITY;
    for &c in centers {
        let d = dist2(row, flat.row(c));
        if d < best {
            best = d;
        }
    }
    best
}

/// Like [`nearest2`], but stops scanning centers as soon as the running
/// minimum drops to `stop_below` or less.  The returned value is always an
/// upper bound on the true minimum and is exact whenever it exceeds
/// `stop_below` — exactly what coverage checks and max-of-min scans need.
#[inline]
pub fn nearest2_bounded(
    flat: &FlatPoints,
    row: &[f64],
    centers: &[PointId],
    stop_below: f64,
) -> f64 {
    let mut best = f64::INFINITY;
    for &c in centers {
        let d = dist2(row, flat.row(c));
        if d < best {
            best = d;
            if best <= stop_below {
                break;
            }
        }
    }
    best
}

/// The fused Gonzalez relaxation: for every `subset[i]`, lowers
/// `nearest[i]` to `min(nearest[i], dist2(subset[i], center))`.
///
/// One linear walk over contiguous rows, no `sqrt`, no allocation.
pub fn relax_nearest(flat: &FlatPoints, subset: &[PointId], center: PointId, nearest: &mut [f64]) {
    debug_assert_eq!(subset.len(), nearest.len());
    let center_row = flat.row(center);
    for (slot, &p) in nearest.iter_mut().zip(subset) {
        let d = dist2(flat.row(p), center_row);
        if d < *slot {
            *slot = d;
        }
    }
}

/// Chunked rayon variant of [`relax_nearest`] with a sequential cutoff.
///
/// Bit-for-bit identical to the sequential kernel: chunking partitions the
/// index space without changing any per-element computation.
pub fn par_relax_nearest(
    flat: &FlatPoints,
    subset: &[PointId],
    center: PointId,
    nearest: &mut [f64],
) {
    debug_assert_eq!(subset.len(), nearest.len());
    if subset.len() < PAR_CUTOFF {
        return relax_nearest(flat, subset, center, nearest);
    }
    let center_row = flat.row(center);
    nearest
        .par_chunks_mut(PAR_CHUNK)
        .zip(subset.par_chunks(PAR_CHUNK))
        .for_each(|(near_chunk, sub_chunk)| {
            for (slot, &p) in near_chunk.iter_mut().zip(sub_chunk) {
                let d = dist2(flat.row(p), center_row);
                if d < *slot {
                    *slot = d;
                }
            }
        });
}

/// Fused relax + argmax over a raw row-major coordinate block, dispatching
/// to a dimension-specialised inner loop: with the row length known at
/// compile time the distance unrolls fully, bounds checks vanish, and the
/// center row stays in registers.
///
/// Updates `nearest[i] = min(nearest[i], dist2(row_i, center_row))` and
/// returns the position and value of the maximum updated entry (ties toward
/// the smaller index) — one Gonzalez iteration in a single memory pass.
/// This is the kernel behind `Distance::relax_rows_max` for the Euclidean
/// metric; the `MetricSpace` scans in `space.rs` chunk over it for their
/// parallel variants.
pub fn relax_max_rows_coords(
    coords: &[f64],
    dim: usize,
    center_row: &[f64],
    nearest: &mut [f64],
) -> (usize, f64) {
    macro_rules! dispatch {
        ($($d:literal),*) => {
            match dim {
                $($d => fused_rows::<$d>(coords, center_row, nearest),)*
                _ => fused_rows_dyn(coords, dim, center_row, nearest),
            }
        };
    }
    // The workspace's workload dimensions: 2 (UNIF), 3 (GAU/UNB), 10
    // (Poker Hand), 38 (KDD Cup), plus common bench sizes.
    dispatch!(2, 3, 4, 8, 10, 16, 32, 38, 64)
}

/// [`relax_max_rows_coords`] over an explicit id subset (MRG reducer
/// partitions, EIM samples): row `subset[i]` pairs with `nearest[i]`.
/// This is the kernel behind `Distance::relax_ids_max` for the Euclidean
/// metric.
pub fn relax_max_ids_coords(
    coords: &[f64],
    dim: usize,
    subset: &[PointId],
    center_row: &[f64],
    nearest: &mut [f64],
) -> (usize, f64) {
    debug_assert_eq!(subset.len(), nearest.len());
    macro_rules! dispatch {
        ($($d:literal),*) => {
            match dim {
                $($d => fused_subset::<$d>(coords, subset, center_row, nearest),)*
                _ => fused_subset_dyn(coords, dim, subset, center_row, nearest),
            }
        };
    }
    dispatch!(2, 3, 4, 8, 10, 16, 32, 38, 64)
}

/// The dimension-specialised fused inner loop over contiguous rows.
fn fused_rows<const D: usize>(coords: &[f64], center: &[f64], nearest: &mut [f64]) -> (usize, f64) {
    let center: &[f64; D] = center.try_into().expect("center row length");
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, (row, slot)) in coords.chunks_exact(D).zip(nearest.iter_mut()).enumerate() {
        let row: &[f64; D] = row.try_into().expect("row length");
        let d = dist2_arrays(row, center);
        if d < *slot {
            *slot = d;
        }
        if *slot > best.1 {
            best = (i, *slot);
        }
    }
    best
}

/// Dynamic-dimension fallback of [`fused_rows`].
fn fused_rows_dyn(coords: &[f64], dim: usize, center: &[f64], nearest: &mut [f64]) -> (usize, f64) {
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, (row, slot)) in coords.chunks_exact(dim).zip(nearest.iter_mut()).enumerate() {
        let d = dist2(row, center);
        if d < *slot {
            *slot = d;
        }
        if *slot > best.1 {
            best = (i, *slot);
        }
    }
    best
}

/// The dimension-specialised fused inner loop over an id subset.
fn fused_subset<const D: usize>(
    coords: &[f64],
    subset: &[PointId],
    center: &[f64],
    nearest: &mut [f64],
) -> (usize, f64) {
    let center: &[f64; D] = center.try_into().expect("center row length");
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, (&p, slot)) in subset.iter().zip(nearest.iter_mut()).enumerate() {
        let row: &[f64; D] = coords[p * D..p * D + D].try_into().expect("row length");
        let d = dist2_arrays(row, center);
        if d < *slot {
            *slot = d;
        }
        if *slot > best.1 {
            best = (i, *slot);
        }
    }
    best
}

/// Dynamic-dimension fallback of [`fused_subset`].
fn fused_subset_dyn(
    coords: &[f64],
    dim: usize,
    subset: &[PointId],
    center: &[f64],
    nearest: &mut [f64],
) -> (usize, f64) {
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, (&p, slot)) in subset.iter().zip(nearest.iter_mut()).enumerate() {
        let d = dist2(&coords[p * dim..p * dim + dim], center);
        if d < *slot {
            *slot = d;
        }
        if *slot > best.1 {
            best = (i, *slot);
        }
    }
    best
}

/// Squared distance between two fixed-size rows: the statically known
/// length fully unrolls the accumulator loop.
#[inline]
fn dist2_arrays<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut s0 = 0.0;
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    let mut s3 = 0.0;
    let mut i = 0;
    while i + 4 <= D {
        let d0 = a[i] - b[i];
        let d1 = a[i + 1] - b[i + 1];
        let d2 = a[i + 2] - b[i + 2];
        let d3 = a[i + 3] - b[i + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
        i += 4;
    }
    while i < D {
        let d = a[i] - b[i];
        s0 += d * d;
        i += 1;
    }
    (s0 + s1) + (s2 + s3)
}

/// Position and value of the maximum entry, ties broken toward the smaller
/// index.  Returns `None` on an empty slice.
pub fn argmax(values: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// Chunked rayon variant of [`argmax`] with a sequential cutoff; identical
/// result including tie-breaking (per-chunk winners combine in index order).
pub fn par_argmax(values: &[f64]) -> Option<(usize, f64)> {
    if values.len() < PAR_CUTOFF {
        return argmax(values);
    }
    values
        .par_chunks(PAR_CHUNK)
        .enumerate()
        .filter_map(|(chunk_idx, chunk)| argmax(chunk).map(|(i, v)| (chunk_idx * PAR_CHUNK + i, v)))
        .reduce_with(|a, b| if b.1 > a.1 { b } else { a })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn cloud(n: usize, dim: usize) -> FlatPoints {
        let coords: Vec<f64> = (0..n * dim)
            .map(|i| {
                let v = (i as u64)
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                ((v >> 33) % 2_000) as f64 / 10.0 - 100.0
            })
            .collect();
        FlatPoints::from_coords(coords, dim).unwrap()
    }

    #[test]
    fn dist2_matches_naive_sum() {
        for dim in [1usize, 2, 3, 4, 5, 7, 8, 16, 33] {
            let flat = cloud(2, dim);
            let (a, b) = (flat.row(0), flat.row(1));
            let naive: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
            assert!(
                (dist2(a, b) - naive).abs() <= 1e-12 * (1.0 + naive),
                "dim {dim}: {} != {naive}",
                dist2(a, b)
            );
        }
    }

    #[test]
    fn dist2_of_identical_rows_is_zero() {
        let p = Point::xyz(1.5, -2.0, 3.25);
        let flat = FlatPoints::from_points(&[p.clone(), p]);
        assert_eq!(dist2_rows(&flat, 0, 1), 0.0);
    }

    #[test]
    fn nearest2_takes_minimum_and_handles_empty() {
        let flat = cloud(10, 4);
        assert!(nearest2(&flat, flat.row(0), &[]).is_infinite());
        let centers = vec![3, 7, 9];
        let naive = centers
            .iter()
            .map(|&c| dist2_rows(&flat, 0, c))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(nearest2(&flat, flat.row(0), &centers), naive);
    }

    #[test]
    fn bounded_nearest_is_exact_above_the_threshold() {
        let flat = cloud(50, 3);
        let centers: Vec<usize> = (1..50).collect();
        let exact = nearest2(&flat, flat.row(0), &centers);
        let bounded = nearest2_bounded(&flat, flat.row(0), &centers, exact - 1.0);
        assert_eq!(bounded, exact);
        // With a generous threshold the scan may stop early but never
        // understates the minimum.
        let loose = nearest2_bounded(&flat, flat.row(0), &centers, f64::MAX);
        assert!(loose >= exact);
    }

    #[test]
    fn relax_matches_naive_update() {
        let flat = cloud(200, 5);
        let subset: Vec<usize> = (0..200).collect();
        let mut nearest = vec![f64::INFINITY; 200];
        relax_nearest(&flat, &subset, 17, &mut nearest);
        relax_nearest(&flat, &subset, 91, &mut nearest);
        for (i, &v) in nearest.iter().enumerate() {
            let naive = dist2_rows(&flat, i, 17).min(dist2_rows(&flat, i, 91));
            assert_eq!(v, naive);
        }
    }

    #[test]
    fn par_relax_is_bit_identical_to_sequential() {
        let flat = cloud(40_000, 3);
        let subset: Vec<usize> = (0..40_000).collect();
        let mut seq = vec![f64::INFINITY; subset.len()];
        let mut par = seq.clone();
        for center in [5usize, 1_234, 39_999] {
            relax_nearest(&flat, &subset, center, &mut seq);
            par_relax_nearest(&flat, &subset, center, &mut par);
        }
        assert_eq!(seq, par);
    }

    #[test]
    fn argmax_breaks_ties_toward_smaller_index() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some((1, 3.0)));
    }

    #[test]
    fn par_argmax_matches_sequential() {
        let values: Vec<f64> = (0..50_000)
            .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % 100_000) as f64)
            .collect();
        assert_eq!(par_argmax(&values), argmax(&values));
    }
}
