//! Dense point representation.
//!
//! A [`Point`] is an owned, fixed-length vector of `f64` coordinates.  The
//! paper's data sets range from 2-dimensional synthetic clouds to 38+
//! dimensional network-traffic records, so we keep the dimension dynamic
//! rather than baking it into the type.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// A point in `R^d`, stored as a dense coordinate vector.
///
/// Construction validates that every coordinate is finite; `NaN` or infinite
/// coordinates would silently break the metric axioms (and therefore the
/// approximation guarantees), so they are rejected eagerly.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from a coordinate vector.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is `NaN` or infinite, or if the vector is
    /// empty.  Use [`Point::try_new`] for a fallible variant.
    pub fn new(coords: Vec<f64>) -> Self {
        Self::try_new(coords).expect("invalid point")
    }

    /// Fallible constructor: rejects empty or non-finite coordinate vectors.
    pub fn try_new(coords: Vec<f64>) -> Result<Self, PointError> {
        if coords.is_empty() {
            return Err(PointError::Empty);
        }
        if let Some(idx) = coords.iter().position(|c| !c.is_finite()) {
            return Err(PointError::NonFinite {
                index: idx,
                value: coords[idx],
            });
        }
        Ok(Self { coords })
    }

    /// Creates a 2-dimensional point.
    pub fn xy(x: f64, y: f64) -> Self {
        Self::new(vec![x, y])
    }

    /// Creates a 3-dimensional point.
    pub fn xyz(x: f64, y: f64, z: f64) -> Self {
        Self::new(vec![x, y, z])
    }

    /// Creates the origin of `R^d`.
    pub fn origin(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            coords: vec![0.0; dim],
        }
    }

    /// The dimension (number of coordinates) of the point.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinates as a slice.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Consumes the point, returning the raw coordinate vector.
    pub fn into_coords(self) -> Vec<f64> {
        self.coords
    }

    /// Euclidean norm of the point viewed as a vector.
    pub fn norm(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum::<f64>().sqrt()
    }

    /// Coordinate-wise addition, used by generators to offset cluster
    /// members from their cluster center.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add(&self, other: &Point) -> Point {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        Point {
            coords: self
                .coords
                .iter()
                .zip(other.coords.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Coordinate-wise scaling.
    pub fn scale(&self, factor: f64) -> Point {
        Point {
            coords: self.coords.iter().map(|c| c * factor).collect(),
        }
    }
}

impl Index<usize> for Point {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.coords[index]
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Point::new(coords)
    }
}

impl From<&[f64]> for Point {
    fn from(coords: &[f64]) -> Self {
        Point::new(coords.to_vec())
    }
}

/// Errors raised when constructing a [`Point`].
#[derive(Debug, Clone, PartialEq)]
pub enum PointError {
    /// The coordinate vector was empty.
    Empty,
    /// A coordinate was `NaN` or infinite.
    NonFinite {
        /// Index of the offending coordinate.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A coordinate exceeded the storage scalar's safe magnitude
    /// (`Scalar::MAX_ABS_COORD`), beyond which squared distances could
    /// overflow to infinity inside the comparison-space kernels.
    OutOfRange {
        /// Index of the offending coordinate.
        index: usize,
        /// The offending value.
        value: f64,
        /// The magnitude limit of the storage scalar.
        limit: f64,
    },
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointError::Empty => write!(f, "point has no coordinates"),
            PointError::NonFinite { index, value } => {
                write!(f, "coordinate {index} is not finite: {value}")
            }
            PointError::OutOfRange {
                index,
                value,
                limit,
            } => {
                write!(
                    f,
                    "coordinate {index} ({value}) exceeds the storage scalar's safe \
                     magnitude {limit} (squared distances would overflow)"
                )
            }
        }
    }
}

impl std::error::Error for PointError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_finite_coordinates() {
        let p = Point::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn try_new_rejects_empty() {
        assert_eq!(Point::try_new(vec![]), Err(PointError::Empty));
    }

    #[test]
    fn try_new_rejects_nan() {
        let err = Point::try_new(vec![1.0, f64::NAN]).unwrap_err();
        assert!(matches!(err, PointError::NonFinite { index: 1, .. }));
    }

    #[test]
    fn try_new_rejects_infinity() {
        let err = Point::try_new(vec![f64::INFINITY]).unwrap_err();
        assert!(matches!(err, PointError::NonFinite { index: 0, .. }));
    }

    #[test]
    #[should_panic(expected = "invalid point")]
    fn new_panics_on_nan() {
        Point::new(vec![f64::NAN]);
    }

    #[test]
    fn xy_and_xyz_shortcuts() {
        assert_eq!(Point::xy(1.0, 2.0).dim(), 2);
        assert_eq!(Point::xyz(1.0, 2.0, 3.0).dim(), 3);
    }

    #[test]
    fn origin_is_all_zero() {
        let o = Point::origin(4);
        assert_eq!(o.coords(), &[0.0; 4]);
    }

    #[test]
    #[should_panic]
    fn origin_rejects_zero_dim() {
        Point::origin(0);
    }

    #[test]
    fn norm_of_unit_vectors() {
        assert!((Point::xy(3.0, 4.0).norm() - 5.0).abs() < 1e-12);
        assert_eq!(Point::origin(3).norm(), 0.0);
    }

    #[test]
    fn add_and_scale() {
        let a = Point::xy(1.0, 2.0);
        let b = Point::xy(3.0, -1.0);
        assert_eq!(a.add(&b), Point::xy(4.0, 1.0));
        assert_eq!(a.scale(2.0), Point::xy(2.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn add_rejects_dimension_mismatch() {
        Point::xy(1.0, 2.0).add(&Point::xyz(1.0, 2.0, 3.0));
    }

    #[test]
    fn index_operator() {
        let p = Point::xyz(7.0, 8.0, 9.0);
        assert_eq!(p[1], 8.0);
    }

    #[test]
    fn from_slice_and_vec() {
        let v = vec![1.0, 2.0];
        let p1: Point = v.clone().into();
        let p2: Point = v.as_slice().into();
        assert_eq!(p1, p2);
    }

    #[test]
    fn debug_format_contains_coords() {
        let s = format!("{:?}", Point::xy(1.0, 2.0));
        assert!(s.contains("1.0") && s.contains("2.0"));
    }
}
