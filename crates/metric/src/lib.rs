//! Metric-space substrate for the parallel k-center reproduction.
//!
//! The k-center problem is defined over a metric space: a set of points `V`
//! together with a distance function `d` satisfying identity, symmetry and
//! the triangle inequality.  The paper (McClintock & Wirth, ICPP 2016)
//! computes Euclidean distances on demand from point coordinates rather than
//! materialising the full distance matrix (Section 7.3); its real data sets
//! are higher-dimensional and partly categorical.
//!
//! This crate provides:
//!
//! * [`Point`] — a dense, owned coordinate vector with cheap slicing.
//! * [`Distance`] implementations — [`Euclidean`], [`SquaredEuclidean`],
//!   [`Manhattan`], [`Chebyshev`], [`Minkowski`], [`Hamming`].
//! * [`MetricSpace`] — the trait the clustering algorithms are written
//!   against, with a concrete on-demand [`VecSpace`] and a fully
//!   materialised [`MatrixSpace`].
//! * [`DistanceMatrix`] — an explicit symmetric matrix representation (the
//!   "matrix representation of a graph" the paper mentions and argues
//!   against shipping between machines).
//! * [`BoundingBox`] and diameter estimation utilities.
//! * [`lower_bound`] — simple instance lower bounds used to sanity-check
//!   approximation factors in tests.
//!
//! All heavy scans expose rayon-parallel variants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbox;
pub mod distance;
pub mod lower_bound;
pub mod matrix;
pub mod point;
pub mod space;

pub use bbox::BoundingBox;
pub use distance::{Chebyshev, Distance, Euclidean, Hamming, Manhattan, Minkowski, SquaredEuclidean};
pub use lower_bound::{pairwise_lower_bound, scaled_diameter_lower_bound};
pub use matrix::DistanceMatrix;
pub use point::Point;
pub use space::{MatrixSpace, MetricSpace, VecSpace};

/// Index of a point inside a data set / metric space.
///
/// All algorithms in the workspace refer to points by index so that only
/// indices (not coordinate vectors) need to travel between simulated
/// MapReduce machines.
pub type PointId = usize;
