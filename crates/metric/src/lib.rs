//! Metric-space substrate for the parallel k-center reproduction.
//!
//! The k-center problem is defined over a metric space: a set of points `V`
//! together with a distance function `d` satisfying identity, symmetry and
//! the triangle inequality.  The paper (McClintock & Wirth, ICPP 2016)
//! computes Euclidean distances on demand from point coordinates rather than
//! materialising the full distance matrix (Section 7.3); its real data sets
//! are higher-dimensional and partly categorical.
//!
//! This crate provides:
//!
//! * [`Scalar`] — the sealed storage-scalar trait (`f64`, `f32`) the whole
//!   flat-storage/kernel stack is generic over (see *Storage precision*
//!   below).
//! * [`FlatPoints`] — the contiguous structure-of-arrays point store every
//!   hot scan runs against (see *Storage layout* below), generic over the
//!   storage scalar.
//! * [`Point`] — a dense, owned `f64` coordinate vector used as the
//!   per-point view/conversion type at API boundaries.
//! * [`Distance`] implementations — [`Euclidean`], [`SquaredEuclidean`],
//!   [`Manhattan`], [`Chebyshev`], [`Minkowski`], [`Hamming`] — all defined
//!   over raw coordinate slices at either precision, with order-equivalent
//!   *surrogate* forms (squared Euclidean, un-rooted Minkowski) for
//!   comparison-only scans and `f64`-accumulated *wide* forms for
//!   certification.
//! * [`kernel`] — the fused scan kernels (`dist2`, `relax_nearest`,
//!   `argmax`) plus chunked rayon variants with a sequential cutoff, and
//!   [`kernel::simd`] — width-pinned AVX2+FMA / portable-lane backends
//!   behind a runtime dispatch table (`KCENTER_KERNEL`, the `simd` cargo
//!   feature; see *Kernel dispatch* below).
//! * [`MetricSpace`] — the trait the clustering algorithms are written
//!   against, with a concrete on-demand [`VecSpace`] (generic over the
//!   storage scalar) and a fully materialised [`MatrixSpace`].
//! * [`DistanceMatrix`] — an explicit symmetric matrix representation (the
//!   "matrix representation of a graph" the paper mentions and argues
//!   against shipping between machines).
//! * [`BoundingBox`] and diameter estimation utilities.
//! * [`lower_bound`] — simple instance lower bounds used to sanity-check
//!   approximation factors in tests.
//!
//! All heavy scans expose rayon-parallel variants.
//!
//! # Storage layout
//!
//! Every algorithm in the workspace spends its time in one scan: "distance
//! from each point to the nearest chosen center".  Two representation
//! choices make that scan run at memory bandwidth instead of chasing
//! pointers:
//!
//! 1. **Flat rows.**  [`FlatPoints`] keeps all coordinates in a single
//!    row-major `Vec<f64>` (`coords[i*dim .. (i+1)*dim]` is point `i`), so
//!    the scan walks one contiguous buffer with perfect hardware-prefetch
//!    behaviour.  A `Vec<Point>` — one heap allocation per point — costs a
//!    pointer dereference and a likely cache miss per distance evaluation.
//! 2. **Squared space.**  Comparisons don't need the metric's final
//!    normalisation, so the scans run on [`Distance::surrogate`] values
//!    (squared distance for [`Euclidean`]) and the winner is converted back
//!    with one [`Distance::surrogate_to_distance`] call — one `sqrt` per
//!    selected center rather than one per point-center pair.
//!
//! `bench_flat` in `kcenter-bench` measures the combined effect against the
//! old pointer-chasing layout (see `BENCH_flat.json` at the workspace root).
//!
//! # Storage precision
//!
//! All of the above is generic over the sealed [`Scalar`] trait
//! (`f64`/`f32`).  The scans are DRAM-bound at the paper's million-point
//! scale, so `f32` storage halves the bytes the comparison-space scans pull
//! — close to a free 2× — while the accuracy contract stays structural:
//! comparison-only scans run at storage precision, but every *reported*
//! quantity (covering radius, coverage checks) is recomputed through the
//! `wide_cmp_*` certification family, which accumulates in `f64` from the
//! stored rows.  An `f32` run therefore only ever carries the one-time
//! `2^-24` input rounding of each coordinate, never accumulated scan error,
//! and results are bit-for-bit deterministic per `(seed, precision)` pair.
//!
//! # Kernel dispatch
//!
//! The hot kernels additionally dispatch through [`kernel::simd`]: a
//! backend ([`KernelBackend`]: `scalar`, `portable` lanes, or AVX2+FMA
//! intrinsics behind the `simd` cargo feature) selected once at startup via
//! `KCENTER_KERNEL` / the CLI `--kernel` flag.  Comparison-space scans are
//! then bit-deterministic per `(seed, precision, kernel)`; the `wide_cmp_*`
//! certification scans stay on the fixed scalar `f64` kernels so reported
//! quality numbers depend only on which centers were selected.  The default
//! build (feature off, variable unset) resolves to the scalar kernels and
//! is bit-identical to the pre-dispatch behaviour.
//!
//! # Assignment dispatch
//!
//! Orthogonally to the kernel backend, the assignment/relax *scans*
//! dispatch between the dense SIMD path and the spatial-grid path of
//! [`grid`] (`KCENTER_ASSIGN` / the CLI `--assign` flag: `auto` | `dense`
//! | `grid`, where `auto` applies a bench-measured crossover).  The grid
//! arm is bit-identical to the dense arm — same per-pair comparison
//! values, same lowest-index tie-breaking, `wide_cmp_*` certification
//! untouched — so the determinism tuple extends to `(seed, precision,
//! kernel, assign)`; see the [`grid`] module docs for the one AVX2
//! fused-kernel caveat.
//!
//! `unsafe` is denied crate-wide and appears only in the [`kernel::simd`]
//! AVX2 module, where every intrinsic call sits behind a runtime
//! `is_x86_feature_detected!` check.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bbox;
pub mod distance;
pub mod flat;
pub mod grid;
pub mod kernel;
pub mod lower_bound;
pub mod matrix;
pub mod point;
pub mod scalar;
pub mod space;

pub use bbox::{BoundingBox, DimensionMismatch};
pub use distance::{
    Chebyshev, Distance, Euclidean, Hamming, Manhattan, Minkowski, SquaredEuclidean,
};
pub use flat::FlatPoints;
pub use grid::{AssignChoice, AssignMode, AssignSelectError, GridRelaxer, SpatialGrid, ASSIGN_ENV};
pub use kernel::simd::{KernelBackend, KernelChoice, KernelSelectError, KERNEL_ENV};
pub use lower_bound::{pairwise_lower_bound, scaled_diameter_lower_bound};
pub use matrix::DistanceMatrix;
pub use point::Point;
pub use scalar::{Precision, Scalar};
pub use space::{MatrixSpace, MetricSpace, VecSpace};

/// Index of a point inside a data set / metric space.
///
/// All algorithms in the workspace refer to points by index so that only
/// indices (not coordinate vectors) need to travel between simulated
/// MapReduce machines.
pub type PointId = usize;
