//! Width-pinned SIMD kernel backends with runtime dispatch.
//!
//! The scalar kernels in [`crate::kernel`] rely on LLVM auto-vectorising
//! their 4-accumulator loops, which leaves lanes on the table at the
//! baseline `x86-64` target (SSE2: 4 `f32` lanes, no FMA).  This module pins
//! the vector shape explicitly and selects an implementation **once at
//! startup** through a small dispatch table:
//!
//! * [`KernelBackend::Scalar`] — the existing 4-accumulator scalar loops,
//!   bit-identical to every release before the dispatch table existed (and
//!   the default when the `simd` cargo feature is off);
//! * [`KernelBackend::Portable`] — a safe array-of-accumulators fallback
//!   that compiles everywhere: 8 lanes at `f32`, 4 lanes at `f64` (one
//!   32-byte vector register), which LLVM reliably vectorises at whatever
//!   width the build target offers;
//! * [`KernelBackend::Avx2`] — `core::arch` AVX2+FMA intrinsics behind
//!   `#[target_feature(enable = "avx2", enable = "fma")]`, compiled only
//!   under the `simd` cargo feature on `x86_64` and selected only when
//!   `is_x86_feature_detected!` confirms both features at runtime.
//!
//! # Dispatch policy
//!
//! The active backend is resolved once, lazily, from the `KCENTER_KERNEL`
//! environment variable (`auto` | `scalar` | `portable` | `avx2`; unset
//! means `auto`) and cached in an atomic — see [`active`].  `auto` resolves
//! to AVX2 when the `simd` feature is compiled in and the CPU supports
//! AVX2+FMA, to the portable lanes when the feature is on but AVX2 is not
//! available, and to the scalar kernels when the feature is off — so a
//! default build behaves exactly like the pre-SIMD code.  [`set_active`]
//! overrides the choice programmatically (the CLI's `--kernel` flag and the
//! A/B benches use it); an unknown or unavailable kernel name is a named
//! [`KernelSelectError`], which the CLI surfaces as a parameter error.
//!
//! Width-pinned kernels only engage when a row carries at least one full
//! vector of coordinates (`dim >= 8` at `f32`, `dim >= 4` at `f64`); below
//! that every backend falls back to the dimension-specialised scalar
//! kernels, so low-dimensional workloads (UNIF 2-D, GAU 3-D) are
//! bit-identical across all backends by construction.
//!
//! # Determinism and the FMA rounding story
//!
//! Results are **bit-deterministic per `(seed, precision, kernel)`**:
//!
//! * Every backend fixes its accumulation order.  The portable and AVX2
//!   kernels accumulate lane `l` over coordinates `l, l+W, l+2W, …` and add
//!   the scalar-tail sum after the lane reduction.  The pairwise `dist2`
//!   kernels (and the portable fused kernels) reduce their lanes in a
//!   halving tree (`(l0+l4)+(l2+l6)` + `(l1+l5)+(l3+l7)` at `W = 8`); the
//!   AVX2 *fused-rows* kernels process four rows per block and reduce each
//!   row's lanes in a pairwise-adjacent tree
//!   (`((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`), with the trailing
//!   `n mod 4` rows going through the single-row kernel — so a row's
//!   summation order is a fixed function of the kernel, its index, and the
//!   row count, never of thread scheduling (the parallel chunk length is a
//!   multiple of the block size, so chunking preserves the block phase).
//! * AVX2 contracts `d*d + acc` into a **fused multiply-add** (one rounding
//!   instead of two), so its sums can differ from the scalar and portable
//!   kernels in the last few ulps.  That is why the kernel is part of the
//!   determinism tuple rather than something the backends paper over: a
//!   given backend always produces the same bits, but two backends may
//!   disagree on near-ties in *comparison space*.
//! * Argmax tie-breaking is preserved in every backend: the fused kernels
//!   update the incumbent only on a strictly greater value, row by row in
//!   index order, so the lowest index achieving the maximum wins — the same
//!   contract as [`crate::kernel::argmax`].  On inputs whose distances are
//!   exactly representable (integer grids, duplicated rows) all backends
//!   therefore return identical `(index, value)` pairs.
//!
//! # Why certification stays on the scalar `wide_*` kernels
//!
//! The `wide_cmp_*` certification scans (covering radius, coverage checks —
//! every *reported* quality number) deliberately keep using the scalar
//! `f64`-accumulating kernels ([`crate::kernel::dist2_wide`]): they are the
//! quality ground truth, and keeping them fixed means a certified radius
//! depends only on *which centers were selected*, never on which kernel
//! computed the comparison-space scans.  Whenever two dispatch arms select
//! the same centers — always, on instances without sub-ulp ties — their
//! certified radii are bit-identical, which is what the dispatch parity
//! tests pin down.  Batch *reporting* helpers (`distances_from`, the
//! [`crate::DistanceMatrix`] build, the lower-bound scans) do ride the
//! dispatched lanes via the `wide`-accumulating SIMD kernels
//! ([`crate::kernel::dist2_wide_auto`]), and are documented as
//! deterministic per `(precision, kernel)`.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// The environment variable consulted by [`active`] / [`KernelChoice::from_env`]:
/// `KCENTER_KERNEL={auto,scalar,portable,avx2}`.
pub const KERNEL_ENV: &str = "KCENTER_KERNEL";

/// A concrete kernel implementation the dispatch table can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum KernelBackend {
    /// The 4-accumulator scalar loops (auto-vectorised by LLVM, if at all).
    Scalar = 0,
    /// The portable width-pinned array-of-accumulators kernels (8 `f32` /
    /// 4 `f64` lanes); compiles on every target.
    Portable = 1,
    /// AVX2+FMA intrinsics; requires the `simd` cargo feature, an `x86_64`
    /// target, and runtime CPU support.
    Avx2 = 2,
}

impl KernelBackend {
    /// Every backend, in dispatch-preference order (least to most
    /// specialised).
    pub const ALL: [KernelBackend; 3] = [
        KernelBackend::Scalar,
        KernelBackend::Portable,
        KernelBackend::Avx2,
    ];

    /// The name used by `KCENTER_KERNEL`, the CLI `--kernel` flag, and
    /// reports.
    pub fn name(&self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Portable => "portable",
            KernelBackend::Avx2 => "avx2",
        }
    }

    /// Whether this backend can run in this build on this machine.
    ///
    /// `Scalar` and `Portable` always can; `Avx2` requires the `simd` cargo
    /// feature, an `x86_64` target, and runtime AVX2+FMA support.
    pub fn is_available(&self) -> bool {
        match self {
            KernelBackend::Scalar | KernelBackend::Portable => true,
            KernelBackend::Avx2 => avx2_available(),
        }
    }

    /// What `auto` resolves to in this build on this machine: AVX2 when
    /// compiled in (`simd` feature) and supported, otherwise the portable
    /// lanes when the feature is on, otherwise the scalar kernels.
    pub fn auto() -> KernelBackend {
        #[cfg(feature = "simd")]
        {
            if KernelBackend::Avx2.is_available() {
                KernelBackend::Avx2
            } else {
                KernelBackend::Portable
            }
        }
        #[cfg(not(feature = "simd"))]
        KernelBackend::Scalar
    }

    fn from_u8(v: u8) -> Option<KernelBackend> {
        KernelBackend::ALL.into_iter().find(|k| *k as u8 == v)
    }
}

impl fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether AVX2+FMA kernels are compiled in *and* supported by this CPU.
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    false
}

/// A parsed kernel request: either defer to detection (`auto`) or pin one
/// backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// Resolve at startup via [`KernelBackend::auto`].
    Auto,
    /// Pin this backend (checked for availability when resolved).
    Fixed(KernelBackend),
}

impl KernelChoice {
    /// Parses a kernel name (`auto` | `scalar` | `portable` | `avx2`,
    /// case-insensitive).  Unknown names are a named
    /// [`KernelSelectError::Unknown`].
    pub fn parse(name: &str) -> Result<KernelChoice, KernelSelectError> {
        match name.to_ascii_lowercase().as_str() {
            "auto" => Ok(KernelChoice::Auto),
            "scalar" => Ok(KernelChoice::Fixed(KernelBackend::Scalar)),
            "portable" => Ok(KernelChoice::Fixed(KernelBackend::Portable)),
            "avx2" => Ok(KernelChoice::Fixed(KernelBackend::Avx2)),
            _ => Err(KernelSelectError::Unknown { value: name.into() }),
        }
    }

    /// Reads the request from [`KERNEL_ENV`]; unset means `auto`.
    pub fn from_env() -> Result<KernelChoice, KernelSelectError> {
        match std::env::var(KERNEL_ENV) {
            Ok(value) => KernelChoice::parse(&value),
            Err(_) => Ok(KernelChoice::Auto),
        }
    }

    /// Resolves the request to a concrete, available backend.
    pub fn resolve(self) -> Result<KernelBackend, KernelSelectError> {
        match self {
            KernelChoice::Auto => Ok(KernelBackend::auto()),
            KernelChoice::Fixed(k) if k.is_available() => Ok(k),
            KernelChoice::Fixed(k) => Err(KernelSelectError::Unavailable { kernel: k.name() }),
        }
    }
}

/// Why a kernel request could not be honoured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelSelectError {
    /// The name is not one of `auto` / `scalar` / `portable` / `avx2`.
    Unknown {
        /// The rejected name.
        value: String,
    },
    /// The backend exists but cannot run here (not compiled in, or the CPU
    /// lacks the instruction set).
    Unavailable {
        /// Name of the unavailable backend.
        kernel: &'static str,
    },
}

impl fmt::Display for KernelSelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelSelectError::Unknown { value } => write!(
                f,
                "unknown kernel {value:?} (expected auto, scalar, portable, or avx2)"
            ),
            KernelSelectError::Unavailable { kernel } => write!(
                f,
                "kernel {kernel:?} is not available in this build on this machine \
                 (the avx2 kernels need the `simd` cargo feature, an x86-64 target, \
                 and runtime AVX2+FMA support)"
            ),
        }
    }
}

impl std::error::Error for KernelSelectError {}

const ACTIVE_UNSET: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(ACTIVE_UNSET);

/// The dispatched backend every `*_auto` kernel entry point uses.
///
/// Resolved lazily on first use from [`KERNEL_ENV`] (unset means `auto`)
/// and cached; the per-call cost is one relaxed atomic load.  A malformed
/// environment value panics with the [`KernelSelectError`] message — the
/// CLI validates the variable up front and reports the same message as a
/// named parameter error instead.
#[inline]
pub fn active() -> KernelBackend {
    match KernelBackend::from_u8(ACTIVE.load(Ordering::Relaxed)) {
        Some(k) => k,
        None => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> KernelBackend {
    let k = KernelChoice::from_env()
        .and_then(KernelChoice::resolve)
        .unwrap_or_else(|e| panic!("{KERNEL_ENV}: {e}"));
    ACTIVE.store(k as u8, Ordering::Relaxed);
    k
}

/// Overrides the dispatched backend (the CLI `--kernel` flag and the A/B
/// benches/tests use this).  Fails with a named error when the backend is
/// not available in this build on this machine.
///
/// The override takes effect for subsequent kernel calls process-wide;
/// switch only at startup or between self-contained runs (the A/B pattern),
/// not concurrently with a running scan.
pub fn set_active(kernel: KernelBackend) -> Result<(), KernelSelectError> {
    if !kernel.is_available() {
        return Err(KernelSelectError::Unavailable {
            kernel: kernel.name(),
        });
    }
    ACTIVE.store(kernel as u8, Ordering::Relaxed);
    Ok(())
}

/// Per-scalar dispatch hooks for the width-pinned kernels.
///
/// Implemented for exactly the two [`crate::Scalar`] types (`f32`: 8 lanes,
/// `f64`: 4 lanes — one 32-byte vector register each) and wired in as a
/// supertrait of that trait, so the generic kernel entry points in [`crate::kernel`]
/// can dispatch without naming concrete types.  Every hook returns `None`
/// when the requested backend has no width-pinned kernel for the shape
/// (backend `Scalar`, rows shorter than one vector, or AVX2 not compiled
/// in); the caller then falls back to the scalar kernel, keeping the
/// fallback rule identical across call sites.
pub trait SimdScalar: Copy + Sized + Send + Sync + 'static {
    /// Lane count of the width-pinned kernels at this scalar (8 for `f32`,
    /// 4 for `f64`).
    const LANES: usize;

    /// Squared Euclidean distance accumulated in `Self` under `backend`.
    fn simd_dist2(backend: KernelBackend, a: &[Self], b: &[Self]) -> Option<Self>;

    /// Squared Euclidean distance accumulated in `f64` (each coordinate
    /// widened before subtracting) under `backend`.
    fn simd_dist2_wide(backend: KernelBackend, a: &[Self], b: &[Self]) -> Option<f64>;

    /// The fused relax + argmax pass over contiguous rows under `backend`
    /// (see [`crate::kernel::relax_max_rows_coords`] for the contract).
    fn simd_relax_rows_max(
        backend: KernelBackend,
        coords: &[Self],
        dim: usize,
        center_row: &[Self],
        nearest: &mut [Self],
    ) -> Option<(usize, Self)>;

    /// The fused relax + argmax pass over an id subset under `backend`
    /// (see [`crate::kernel::relax_max_ids_coords`] for the contract).
    fn simd_relax_ids_max(
        backend: KernelBackend,
        coords: &[Self],
        dim: usize,
        subset: &[usize],
        center_row: &[Self],
        nearest: &mut [Self],
    ) -> Option<(usize, Self)>;
}

/// The portable width-pinned kernels: plain arrays of `W` accumulators that
/// LLVM vectorises at whatever width the build target offers, with the same
/// fixed lane assignment and halving-tree reduction as the AVX2 kernels
/// (module docs) so each backend's summation order is pinned.
mod portable {
    use crate::scalar::Scalar;

    /// Fixed halving-tree reduction over the first `width = W` lanes:
    /// repeatedly folds lane `l + width/2` into lane `l`.
    #[inline]
    fn reduce_lanes<S: Scalar, const W: usize>(acc: [S; W]) -> S {
        let mut buf = acc;
        let mut width = W;
        while width > 1 {
            width /= 2;
            for l in 0..width {
                buf[l] += buf[l + width];
            }
        }
        buf[0]
    }

    /// Squared distance with `W` lane accumulators (lane `l` sums
    /// coordinates `l, l+W, …`), scalar tail added after the lane
    /// reduction.
    #[inline]
    pub fn dist2<S: Scalar, const W: usize>(a: &[S], b: &[S]) -> S {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut acc = [S::ZERO; W];
        let mut i = 0;
        while i + W <= n {
            for (l, slot) in acc.iter_mut().enumerate() {
                let d = a[i + l] - b[i + l];
                *slot += d * d;
            }
            i += W;
        }
        let mut tail = S::ZERO;
        while i < n {
            let d = a[i] - b[i];
            tail += d * d;
            i += 1;
        }
        reduce_lanes(acc) + tail
    }

    /// [`dist2`] accumulated in `f64` from the `S` rows (the wide /
    /// certification-space shape), `W` lanes.
    #[inline]
    pub fn dist2_wide<S: Scalar, const W: usize>(a: &[S], b: &[S]) -> f64 {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut acc = [0.0f64; W];
        let mut i = 0;
        while i + W <= n {
            for (l, slot) in acc.iter_mut().enumerate() {
                let d = a[i + l].to_f64() - b[i + l].to_f64();
                *slot += d * d;
            }
            i += W;
        }
        let mut tail = 0.0f64;
        while i < n {
            let d = a[i].to_f64() - b[i].to_f64();
            tail += d * d;
            i += 1;
        }
        reduce_lanes(acc) + tail
    }

    /// Fused relax + argmax over contiguous rows on the `W`-lane distance.
    pub fn relax_rows_max<S: Scalar, const W: usize>(
        coords: &[S],
        dim: usize,
        center: &[S],
        nearest: &mut [S],
    ) -> (usize, S) {
        let mut best = (0usize, S::NEG_INFINITY);
        for (i, (row, slot)) in coords.chunks_exact(dim).zip(nearest.iter_mut()).enumerate() {
            let d = dist2::<S, W>(row, center);
            if d < *slot {
                *slot = d;
            }
            if *slot > best.1 {
                best = (i, *slot);
            }
        }
        best
    }

    /// Fused relax + argmax over an id subset on the `W`-lane distance.
    pub fn relax_ids_max<S: Scalar, const W: usize>(
        coords: &[S],
        dim: usize,
        subset: &[usize],
        center: &[S],
        nearest: &mut [S],
    ) -> (usize, S) {
        debug_assert_eq!(subset.len(), nearest.len());
        let mut best = (0usize, S::NEG_INFINITY);
        for (i, (&p, slot)) in subset.iter().zip(nearest.iter_mut()).enumerate() {
            let d = dist2::<S, W>(&coords[p * dim..p * dim + dim], center);
            if d < *slot {
                *slot = d;
            }
            if *slot > best.1 {
                best = (i, *slot);
            }
        }
        best
    }
}

/// The AVX2+FMA kernels.  Every public function runtime-checks CPU support
/// and returns `None` when AVX2 or FMA is missing, so the `unsafe`
/// `#[target_feature]` calls are sound by construction; the dispatch layer
/// never reaches them unless [`KernelBackend::Avx2`] passed
/// [`KernelBackend::is_available`] anyway.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx2 {
    use core::arch::x86_64::*;

    #[inline]
    fn detected() -> bool {
        // `is_x86_feature_detected!` caches its CPUID probe, so this is a
        // relaxed atomic load per call.
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }

    /// Fixed-order horizontal sum of 8 `f32` lanes:
    /// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` — the same halving tree as
    /// the portable kernels.
    ///
    /// # Safety
    ///
    /// Requires AVX2 support.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum_ps(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let q = _mm_add_ps(lo, hi); // l0+l4, l1+l5, l2+l6, l3+l7
        let h = _mm_add_ps(q, _mm_movehl_ps(q, q)); // q0+q2, q1+q3, _, _
        let s = _mm_add_ss(h, _mm_shuffle_ps(h, h, 0b01));
        _mm_cvtss_f32(s)
    }

    /// Fixed-order horizontal sum of 4 `f64` lanes: `(l0+l2) + (l1+l3)`.
    ///
    /// # Safety
    ///
    /// Requires AVX2 support.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum_pd(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd(v, 1);
        let q = _mm_add_pd(lo, hi); // l0+l2, l1+l3
        let s = _mm_add_sd(q, _mm_unpackhi_pd(q, q));
        _mm_cvtsd_f64(s)
    }

    /// 8-lane FMA squared distance (two vector accumulators striding 16
    /// coordinates, then one, then a scalar tail).
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA support; reads stay within the shorter slice.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dist2_f32_impl(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)));
            let d1 = _mm256_sub_ps(
                _mm256_loadu_ps(ap.add(i + 8)),
                _mm256_loadu_ps(bp.add(i + 8)),
            );
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            i += 16;
        }
        if i + 8 <= n {
            let d = _mm256_sub_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)));
            acc0 = _mm256_fmadd_ps(d, d, acc0);
            i += 8;
        }
        let mut sum = hsum_ps(_mm256_add_ps(acc0, acc1));
        while i < n {
            let d = a[i] - b[i];
            sum += d * d;
            i += 1;
        }
        sum
    }

    /// 4-lane FMA squared distance at `f64` (two vector accumulators
    /// striding 8 coordinates, then one, then a scalar tail).
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA support; reads stay within the shorter slice.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dist2_f64_impl(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            let d0 = _mm256_sub_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
            let d1 = _mm256_sub_pd(
                _mm256_loadu_pd(ap.add(i + 4)),
                _mm256_loadu_pd(bp.add(i + 4)),
            );
            acc0 = _mm256_fmadd_pd(d0, d0, acc0);
            acc1 = _mm256_fmadd_pd(d1, d1, acc1);
            i += 8;
        }
        if i + 4 <= n {
            let d = _mm256_sub_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
            acc0 = _mm256_fmadd_pd(d, d, acc0);
            i += 4;
        }
        let mut sum = hsum_pd(_mm256_add_pd(acc0, acc1));
        while i < n {
            let d = a[i] - b[i];
            sum += d * d;
            i += 1;
        }
        sum
    }

    /// 4-lane FMA squared distance over `f32` rows accumulated in `f64`
    /// (each 4-float block widened with `vcvtps2pd` before subtracting) —
    /// the wide / certification-space shape.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA support; reads stay within the shorter slice.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dist2_wide_f32_impl(a: &[f32], b: &[f32]) -> f64 {
        let n = a.len().min(b.len());
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            let a0 = _mm256_cvtps_pd(_mm_loadu_ps(ap.add(i)));
            let b0 = _mm256_cvtps_pd(_mm_loadu_ps(bp.add(i)));
            let a1 = _mm256_cvtps_pd(_mm_loadu_ps(ap.add(i + 4)));
            let b1 = _mm256_cvtps_pd(_mm_loadu_ps(bp.add(i + 4)));
            let d0 = _mm256_sub_pd(a0, b0);
            let d1 = _mm256_sub_pd(a1, b1);
            acc0 = _mm256_fmadd_pd(d0, d0, acc0);
            acc1 = _mm256_fmadd_pd(d1, d1, acc1);
            i += 8;
        }
        if i + 4 <= n {
            let d = _mm256_sub_pd(
                _mm256_cvtps_pd(_mm_loadu_ps(ap.add(i))),
                _mm256_cvtps_pd(_mm_loadu_ps(bp.add(i))),
            );
            acc0 = _mm256_fmadd_pd(d, d, acc0);
            i += 4;
        }
        let mut sum = hsum_pd(_mm256_add_pd(acc0, acc1));
        while i < n {
            let d = a[i] as f64 - b[i] as f64;
            sum += d * d;
            i += 1;
        }
        sum
    }

    /// Fused relax + argmax over contiguous rows, processing **four rows
    /// per block** against the shared center: the distance accumulations of
    /// the four rows run in four independent vector accumulators and reduce
    /// together (pairwise-adjacent `hadd` trees, one cross-128 add), so the
    /// per-row horizontal-reduction cost of the single-row kernel is paid
    /// once per block instead of once per row.  Rows `4·⌊n/4⌋ ..` fall back
    /// to the single-row kernel, so every row's summation order is a fixed
    /// function of its index and the row count — deterministic, and
    /// preserved under the `PAR_CHUNK` chunking (the chunk length is a
    /// multiple of 4, so chunking never re-phases the blocks).
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA support.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn relax_rows_max_f32_impl(
        coords: &[f32],
        dim: usize,
        center: &[f32],
        nearest: &mut [f32],
    ) -> (usize, f32) {
        let n = nearest.len().min(coords.len() / dim.max(1));
        let cp = center.as_ptr();
        let mut best = (0usize, f32::NEG_INFINITY);
        let block = 4 * dim;
        let mut r = 0;
        while r + 4 <= n {
            let p = coords.as_ptr().add(r * dim);
            // Pull the block two ahead into L1 while this one computes:
            // the scan is DRAM-bound, so hiding the line fills behind the
            // FMA work is worth a prefetch per 64-byte line.  (`wrapping_add`
            // may point past the buffer near the end; prefetch hints never
            // fault and carry no provenance requirements.)
            let ahead = p.wrapping_add(2 * block);
            let mut off = 0;
            while off < block {
                _mm_prefetch::<_MM_HINT_T0>(ahead.wrapping_add(off) as *const i8);
                off += 16;
            }
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            let mut j = 0;
            while j + 8 <= dim {
                let c = _mm256_loadu_ps(cp.add(j));
                let d0 = _mm256_sub_ps(_mm256_loadu_ps(p.add(j)), c);
                let d1 = _mm256_sub_ps(_mm256_loadu_ps(p.add(dim + j)), c);
                let d2 = _mm256_sub_ps(_mm256_loadu_ps(p.add(2 * dim + j)), c);
                let d3 = _mm256_sub_ps(_mm256_loadu_ps(p.add(3 * dim + j)), c);
                acc0 = _mm256_fmadd_ps(d0, d0, acc0);
                acc1 = _mm256_fmadd_ps(d1, d1, acc1);
                acc2 = _mm256_fmadd_ps(d2, d2, acc2);
                acc3 = _mm256_fmadd_ps(d3, d3, acc3);
                j += 8;
            }
            // Four horizontal sums at once: hadd pairs adjacent lanes, so
            // each row reduces as ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).
            let t0 = _mm256_hadd_ps(acc0, acc1);
            let t1 = _mm256_hadd_ps(acc2, acc3);
            let t2 = _mm256_hadd_ps(t0, t1);
            let mut quad = _mm_add_ps(_mm256_castps256_ps128(t2), _mm256_extractf128_ps(t2, 1));
            if j < dim {
                // Scalar dimension tail, appended per row after the lane sum.
                let mut sums = [0.0f32; 4];
                _mm_storeu_ps(sums.as_mut_ptr(), quad);
                while j < dim {
                    let c = *center.get_unchecked(j);
                    for (rr, sum) in sums.iter_mut().enumerate() {
                        let d = *p.add(rr * dim + j) - c;
                        *sum += d * d;
                    }
                    j += 1;
                }
                quad = _mm_loadu_ps(sums.as_ptr());
            }
            // Branchless relax: `min` keeps the incumbent on ties exactly
            // like the scalar kernel's strict `<` (distances are
            // non-negative, so there is no -0.0/+0.0 ambiguity), and the
            // store is unconditional — a dirtied line per block is far
            // cheaper than a hard-to-predict branch per row.  The argmax
            // only takes the scalar path when some lane actually beats the
            // running maximum (rare after the first rows of a scan).
            let slots = nearest.as_mut_ptr().add(r);
            let relaxed = _mm_min_ps(quad, _mm_loadu_ps(slots));
            _mm_storeu_ps(slots, relaxed);
            if _mm_movemask_ps(_mm_cmpgt_ps(relaxed, _mm_set1_ps(best.1))) != 0 {
                let mut vals = [0.0f32; 4];
                _mm_storeu_ps(vals.as_mut_ptr(), relaxed);
                for (rr, &v) in vals.iter().enumerate() {
                    if v > best.1 {
                        best = (r + rr, v);
                    }
                }
            }
            r += 4;
        }
        while r < n {
            let d = dist2_f32_impl(&coords[r * dim..r * dim + dim], center);
            let slot = nearest.get_unchecked_mut(r);
            if d < *slot {
                *slot = d;
            }
            if *slot > best.1 {
                best = (r, *slot);
            }
            r += 1;
        }
        best
    }

    /// `f64` counterpart of [`relax_rows_max_f32_impl`]: four rows per
    /// block, 4-lane accumulators, pairwise-adjacent (`hadd`) reduction.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA support.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn relax_rows_max_f64_impl(
        coords: &[f64],
        dim: usize,
        center: &[f64],
        nearest: &mut [f64],
    ) -> (usize, f64) {
        let n = nearest.len().min(coords.len() / dim.max(1));
        let cp = center.as_ptr();
        let mut best = (0usize, f64::NEG_INFINITY);
        let block = 4 * dim;
        let mut r = 0;
        while r + 4 <= n {
            let p = coords.as_ptr().add(r * dim);
            // Same prefetch-two-blocks-ahead scheme as the f32 kernel
            // (8 f64 per 64-byte line).
            let ahead = p.wrapping_add(2 * block);
            let mut off = 0;
            while off < block {
                _mm_prefetch::<_MM_HINT_T0>(ahead.wrapping_add(off) as *const i8);
                off += 8;
            }
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            let mut acc2 = _mm256_setzero_pd();
            let mut acc3 = _mm256_setzero_pd();
            let mut j = 0;
            while j + 4 <= dim {
                let c = _mm256_loadu_pd(cp.add(j));
                let d0 = _mm256_sub_pd(_mm256_loadu_pd(p.add(j)), c);
                let d1 = _mm256_sub_pd(_mm256_loadu_pd(p.add(dim + j)), c);
                let d2 = _mm256_sub_pd(_mm256_loadu_pd(p.add(2 * dim + j)), c);
                let d3 = _mm256_sub_pd(_mm256_loadu_pd(p.add(3 * dim + j)), c);
                acc0 = _mm256_fmadd_pd(d0, d0, acc0);
                acc1 = _mm256_fmadd_pd(d1, d1, acc1);
                acc2 = _mm256_fmadd_pd(d2, d2, acc2);
                acc3 = _mm256_fmadd_pd(d3, d3, acc3);
                j += 4;
            }
            // hadd gives [A0+A1, B0+B1, A2+A3, B2+B3]; adding the two
            // 128-bit halves yields [sumA, sumB] — row order (l0+l1)+(l2+l3).
            let t0 = _mm256_hadd_pd(acc0, acc1);
            let t1 = _mm256_hadd_pd(acc2, acc3);
            let ab = _mm_add_pd(_mm256_castpd256_pd128(t0), _mm256_extractf128_pd(t0, 1));
            let cd = _mm_add_pd(_mm256_castpd256_pd128(t1), _mm256_extractf128_pd(t1, 1));
            let mut quad = _mm256_set_m128d(cd, ab);
            if j < dim {
                let mut sums = [0.0f64; 4];
                _mm256_storeu_pd(sums.as_mut_ptr(), quad);
                while j < dim {
                    let c = *center.get_unchecked(j);
                    for (rr, sum) in sums.iter_mut().enumerate() {
                        let d = *p.add(rr * dim + j) - c;
                        *sum += d * d;
                    }
                    j += 1;
                }
                quad = _mm256_loadu_pd(sums.as_ptr());
            }
            // Branchless relax + movemask-guarded argmax (see the f32
            // kernel for the tie/sign reasoning).
            let slots = nearest.as_mut_ptr().add(r);
            let relaxed = _mm256_min_pd(quad, _mm256_loadu_pd(slots));
            _mm256_storeu_pd(slots, relaxed);
            let above = _mm256_cmp_pd::<_CMP_GT_OQ>(relaxed, _mm256_set1_pd(best.1));
            if _mm256_movemask_pd(above) != 0 {
                let mut vals = [0.0f64; 4];
                _mm256_storeu_pd(vals.as_mut_ptr(), relaxed);
                for (rr, &v) in vals.iter().enumerate() {
                    if v > best.1 {
                        best = (r + rr, v);
                    }
                }
            }
            r += 4;
        }
        while r < n {
            let d = dist2_f64_impl(&coords[r * dim..r * dim + dim], center);
            let slot = nearest.get_unchecked_mut(r);
            if d < *slot {
                *slot = d;
            }
            if *slot > best.1 {
                best = (r, *slot);
            }
            r += 1;
        }
        best
    }

    macro_rules! fused_ids_kernel {
        ($t:ty, $dist2:ident, $ids_impl:ident) => {
            /// Fused relax + argmax over an id subset (single-row distances;
            /// subset gathers defeat the 4-row blocking's contiguity).
            ///
            /// # Safety
            ///
            /// Requires AVX2+FMA support.
            #[target_feature(enable = "avx2", enable = "fma")]
            unsafe fn $ids_impl(
                coords: &[$t],
                dim: usize,
                subset: &[usize],
                center: &[$t],
                nearest: &mut [$t],
            ) -> (usize, $t) {
                debug_assert_eq!(subset.len(), nearest.len());
                let mut best = (0usize, <$t>::NEG_INFINITY);
                for (i, (&p, slot)) in subset.iter().zip(nearest.iter_mut()).enumerate() {
                    let d = $dist2(&coords[p * dim..p * dim + dim], center);
                    if d < *slot {
                        *slot = d;
                    }
                    if *slot > best.1 {
                        best = (i, *slot);
                    }
                }
                best
            }
        };
    }

    fused_ids_kernel!(f32, dist2_f32_impl, relax_ids_max_f32_impl);
    fused_ids_kernel!(f64, dist2_f64_impl, relax_ids_max_f64_impl);

    macro_rules! checked_entries {
        ($t:ty, $rows:ident, $rows_impl:ident, $ids:ident, $ids_impl:ident) => {
            /// Runtime-checked safe entry for the rows kernel.  Declines
            /// (scalar fallback) when the CPU lacks AVX2+FMA **or** the
            /// center row is shorter than `dim` — the impls read `dim`
            /// coordinates from it unchecked, so the length check is part
            /// of the soundness argument, not just hygiene.
            #[inline]
            pub fn $rows(
                coords: &[$t],
                dim: usize,
                center: &[$t],
                nearest: &mut [$t],
            ) -> Option<(usize, $t)> {
                if !detected() || center.len() < dim {
                    return None;
                }
                // SAFETY: AVX2+FMA support and the center length were just
                // confirmed; the impl bounds every other access by the
                // slice lengths it is given.
                Some(unsafe { $rows_impl(coords, dim, center, nearest) })
            }

            /// Runtime-checked safe entry for the subset kernel (same
            /// availability + center-length guard as the rows entry).
            #[inline]
            pub fn $ids(
                coords: &[$t],
                dim: usize,
                subset: &[usize],
                center: &[$t],
                nearest: &mut [$t],
            ) -> Option<(usize, $t)> {
                if !detected() || center.len() < dim {
                    return None;
                }
                // SAFETY: AVX2+FMA support and the center length were just
                // confirmed; row reads go through checked slice indexing.
                Some(unsafe { $ids_impl(coords, dim, subset, center, nearest) })
            }
        };
    }

    checked_entries!(
        f32,
        relax_rows_max_f32,
        relax_rows_max_f32_impl,
        relax_ids_max_f32,
        relax_ids_max_f32_impl
    );
    checked_entries!(
        f64,
        relax_rows_max_f64,
        relax_rows_max_f64_impl,
        relax_ids_max_f64,
        relax_ids_max_f64_impl
    );

    /// Runtime-checked safe entry for the `f32` squared distance.
    #[inline]
    pub fn dist2_f32(a: &[f32], b: &[f32]) -> Option<f32> {
        if !detected() {
            return None;
        }
        // SAFETY: AVX2+FMA support was just confirmed.
        Some(unsafe { dist2_f32_impl(a, b) })
    }

    /// Runtime-checked safe entry for the `f64` squared distance.
    #[inline]
    pub fn dist2_f64(a: &[f64], b: &[f64]) -> Option<f64> {
        if !detected() {
            return None;
        }
        // SAFETY: AVX2+FMA support was just confirmed.
        Some(unsafe { dist2_f64_impl(a, b) })
    }

    /// Runtime-checked safe entry for the wide (`f64`-accumulating) squared
    /// distance over `f32` rows.
    #[inline]
    pub fn dist2_wide_f32(a: &[f32], b: &[f32]) -> Option<f64> {
        if !detected() {
            return None;
        }
        // SAFETY: AVX2+FMA support was just confirmed.
        Some(unsafe { dist2_wide_f32_impl(a, b) })
    }
}

/// Compile-time stub: without the `simd` feature (or off `x86_64`) the AVX2
/// backend is never available, so these entries are unreachable; they exist
/// so the dispatch code needs no `cfg` at the call sites.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
mod avx2 {
    #![allow(clippy::ptr_arg, unused_variables, missing_docs)]

    pub fn dist2_f32(a: &[f32], b: &[f32]) -> Option<f32> {
        None
    }
    pub fn dist2_f64(a: &[f64], b: &[f64]) -> Option<f64> {
        None
    }
    pub fn dist2_wide_f32(a: &[f32], b: &[f32]) -> Option<f64> {
        None
    }
    pub fn relax_rows_max_f32(
        coords: &[f32],
        dim: usize,
        center: &[f32],
        nearest: &mut [f32],
    ) -> Option<(usize, f32)> {
        None
    }
    pub fn relax_rows_max_f64(
        coords: &[f64],
        dim: usize,
        center: &[f64],
        nearest: &mut [f64],
    ) -> Option<(usize, f64)> {
        None
    }
    pub fn relax_ids_max_f32(
        coords: &[f32],
        dim: usize,
        subset: &[usize],
        center: &[f32],
        nearest: &mut [f32],
    ) -> Option<(usize, f32)> {
        None
    }
    pub fn relax_ids_max_f64(
        coords: &[f64],
        dim: usize,
        subset: &[usize],
        center: &[f64],
        nearest: &mut [f64],
    ) -> Option<(usize, f64)> {
        None
    }
}

impl SimdScalar for f32 {
    const LANES: usize = 8;

    #[inline]
    fn simd_dist2(backend: KernelBackend, a: &[f32], b: &[f32]) -> Option<f32> {
        if a.len().min(b.len()) < Self::LANES {
            return None;
        }
        match backend {
            KernelBackend::Scalar => None,
            KernelBackend::Portable => Some(portable::dist2::<f32, 8>(a, b)),
            KernelBackend::Avx2 => avx2::dist2_f32(a, b),
        }
    }

    #[inline]
    fn simd_dist2_wide(backend: KernelBackend, a: &[f32], b: &[f32]) -> Option<f64> {
        // The wide kernels widen to f64 lanes, so the pinned width is 4.
        if a.len().min(b.len()) < 4 {
            return None;
        }
        match backend {
            KernelBackend::Scalar => None,
            KernelBackend::Portable => Some(portable::dist2_wide::<f32, 4>(a, b)),
            KernelBackend::Avx2 => avx2::dist2_wide_f32(a, b),
        }
    }

    #[inline]
    fn simd_relax_rows_max(
        backend: KernelBackend,
        coords: &[f32],
        dim: usize,
        center_row: &[f32],
        nearest: &mut [f32],
    ) -> Option<(usize, f32)> {
        if dim < Self::LANES {
            return None;
        }
        match backend {
            KernelBackend::Scalar => None,
            KernelBackend::Portable => Some(portable::relax_rows_max::<f32, 8>(
                coords, dim, center_row, nearest,
            )),
            KernelBackend::Avx2 => avx2::relax_rows_max_f32(coords, dim, center_row, nearest),
        }
    }

    #[inline]
    fn simd_relax_ids_max(
        backend: KernelBackend,
        coords: &[f32],
        dim: usize,
        subset: &[usize],
        center_row: &[f32],
        nearest: &mut [f32],
    ) -> Option<(usize, f32)> {
        if dim < Self::LANES {
            return None;
        }
        match backend {
            KernelBackend::Scalar => None,
            KernelBackend::Portable => Some(portable::relax_ids_max::<f32, 8>(
                coords, dim, subset, center_row, nearest,
            )),
            KernelBackend::Avx2 => {
                avx2::relax_ids_max_f32(coords, dim, subset, center_row, nearest)
            }
        }
    }
}

impl SimdScalar for f64 {
    const LANES: usize = 4;

    #[inline]
    fn simd_dist2(backend: KernelBackend, a: &[f64], b: &[f64]) -> Option<f64> {
        if a.len().min(b.len()) < Self::LANES {
            return None;
        }
        match backend {
            KernelBackend::Scalar => None,
            KernelBackend::Portable => Some(portable::dist2::<f64, 4>(a, b)),
            KernelBackend::Avx2 => avx2::dist2_f64(a, b),
        }
    }

    #[inline]
    fn simd_dist2_wide(backend: KernelBackend, a: &[f64], b: &[f64]) -> Option<f64> {
        // f64 rows already accumulate in f64: the wide kernel *is* the
        // narrow one, mirroring the scalar kernels' bit-identity contract.
        Self::simd_dist2(backend, a, b)
    }

    #[inline]
    fn simd_relax_rows_max(
        backend: KernelBackend,
        coords: &[f64],
        dim: usize,
        center_row: &[f64],
        nearest: &mut [f64],
    ) -> Option<(usize, f64)> {
        if dim < Self::LANES {
            return None;
        }
        match backend {
            KernelBackend::Scalar => None,
            KernelBackend::Portable => Some(portable::relax_rows_max::<f64, 4>(
                coords, dim, center_row, nearest,
            )),
            KernelBackend::Avx2 => avx2::relax_rows_max_f64(coords, dim, center_row, nearest),
        }
    }

    #[inline]
    fn simd_relax_ids_max(
        backend: KernelBackend,
        coords: &[f64],
        dim: usize,
        subset: &[usize],
        center_row: &[f64],
        nearest: &mut [f64],
    ) -> Option<(usize, f64)> {
        if dim < Self::LANES {
            return None;
        }
        match backend {
            KernelBackend::Scalar => None,
            KernelBackend::Portable => Some(portable::relax_ids_max::<f64, 4>(
                coords, dim, subset, center_row, nearest,
            )),
            KernelBackend::Avx2 => {
                avx2::relax_ids_max_f64(coords, dim, subset, center_row, nearest)
            }
        }
    }
}

/// The backends available in this build on this machine, in
/// [`KernelBackend::ALL`] order — what the A/B tests iterate over.
pub fn available_backends() -> Vec<KernelBackend> {
    KernelBackend::ALL
        .into_iter()
        .filter(KernelBackend::is_available)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{dist2, dist2_wide};

    /// Multiples of 1/8 in [-16, 16): squared differences are multiples of
    /// 1/64 bounded by 1024, so any sum of up to 64 of them stays below
    /// 2^16 — exactly representable at **both** f32 and f64, making every
    /// accumulation order (FMA or not) produce identical bits.
    fn rows(n: usize, dim: usize, salt: u64) -> Vec<f64> {
        (0..n * dim)
            .map(|i| {
                let v = (i as u64 ^ salt)
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                ((v >> 33) % 256) as f64 / 8.0 - 16.0
            })
            .collect()
    }

    #[test]
    fn names_parse_and_round_trip() {
        for k in KernelBackend::ALL {
            assert_eq!(
                KernelChoice::parse(k.name()),
                Ok(KernelChoice::Fixed(k)),
                "{k}"
            );
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!(KernelChoice::parse("AUTO"), Ok(KernelChoice::Auto));
        let err = KernelChoice::parse("warp9").unwrap_err();
        assert!(err.to_string().contains("warp9"));
        assert!(err.to_string().contains("avx2"));
    }

    #[test]
    fn auto_resolution_matches_the_build_configuration() {
        let auto = KernelChoice::Auto.resolve().unwrap();
        #[cfg(not(feature = "simd"))]
        assert_eq!(auto, KernelBackend::Scalar);
        #[cfg(feature = "simd")]
        {
            if KernelBackend::Avx2.is_available() {
                assert_eq!(auto, KernelBackend::Avx2);
            } else {
                assert_eq!(auto, KernelBackend::Portable);
            }
        }
        assert!(available_backends().contains(&auto));
    }

    #[test]
    fn unavailable_backend_is_a_named_resolve_error() {
        if !KernelBackend::Avx2.is_available() {
            let err = KernelChoice::Fixed(KernelBackend::Avx2)
                .resolve()
                .unwrap_err();
            assert!(err.to_string().contains("avx2"));
            assert_eq!(set_active(KernelBackend::Avx2).unwrap_err(), err);
        } else {
            assert!(KernelChoice::Fixed(KernelBackend::Avx2).resolve().is_ok());
        }
    }

    #[test]
    fn portable_dist2_matches_scalar_within_rounding_and_exactly_on_integers() {
        for dim in [4usize, 8, 10, 16, 33, 64] {
            let a = rows(1, dim, 1);
            let b = rows(1, dim, 2);
            // The coordinates above are multiples of 1/16 up to ~60: all
            // products and sums are exact at f64, so every accumulation
            // order gives the same bits.
            assert_eq!(
                portable::dist2::<f64, 4>(&a, &b),
                dist2(&a, &b),
                "dim {dim}"
            );
            let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
            let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
            assert_eq!(
                portable::dist2_wide::<f32, 4>(&a32, &b32),
                dist2_wide(&a32, &b32),
                "dim {dim}"
            );
        }
    }

    #[test]
    fn simd_hooks_decline_small_rows_and_the_scalar_backend() {
        let a = [1.0f32; 4];
        let b = [0.0f32; 4];
        // Below one vector of lanes: every backend declines.
        for k in KernelBackend::ALL {
            assert_eq!(<f32 as SimdScalar>::simd_dist2(k, &a, &b), None);
        }
        // The scalar backend always declines (the caller falls back).
        let a8 = [1.0f32; 8];
        let b8 = [0.0f32; 8];
        assert_eq!(
            <f32 as SimdScalar>::simd_dist2(KernelBackend::Scalar, &a8, &b8),
            None
        );
        assert_eq!(
            <f32 as SimdScalar>::simd_dist2(KernelBackend::Portable, &a8, &b8),
            Some(8.0)
        );
    }

    #[test]
    fn every_available_backend_agrees_on_exact_inputs() {
        // Multiples of 1/16 below 2^11: squares and sums are exact at both
        // precisions, so all backends (FMA or not) must agree bitwise.
        for dim in [8usize, 10, 16, 38] {
            let a = rows(1, dim, 3);
            let b = rows(1, dim, 4);
            let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
            let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
            let want64 = dist2(&a, &b);
            let want32 = dist2(&a32, &b32);
            for k in available_backends() {
                let got64 = <f64 as SimdScalar>::simd_dist2(k, &a, &b).unwrap_or(want64);
                let got32 = <f32 as SimdScalar>::simd_dist2(k, &a32, &b32).unwrap_or(want32);
                assert_eq!(got64, want64, "{k} dim {dim}");
                assert_eq!(got32, want32, "{k} dim {dim}");
                let wide = <f32 as SimdScalar>::simd_dist2_wide(k, &a32, &b32)
                    .unwrap_or_else(|| dist2_wide(&a32, &b32));
                assert_eq!(wide, dist2_wide(&a32, &b32), "{k} dim {dim} wide");
            }
        }
    }

    #[test]
    fn backend_kernels_stay_within_rounding_of_scalar_on_general_inputs() {
        for dim in [8usize, 16, 33] {
            let a: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin() * 55.0).collect();
            let b: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.61).cos() * 55.0).collect();
            let want = dist2(&a, &b);
            for k in available_backends() {
                if let Some(got) = <f64 as SimdScalar>::simd_dist2(k, &a, &b) {
                    let rel = (got - want).abs() / want.max(1e-300);
                    assert!(rel <= 1e-13, "{k} dim {dim}: {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn fused_backend_kernels_preserve_lowest_index_ties() {
        // 20 rows at dim 8; rows 3, 9 and 17 are identical copies of the
        // farthest row, so their squared distances tie exactly in every
        // backend (same bits in, same exact arithmetic on integers).
        let dim = 8;
        let mut coords = rows(20, dim, 9)
            .iter()
            .map(|&x| x.round())
            .collect::<Vec<f64>>();
        let far: Vec<f64> = (0..dim).map(|i| 500.0 + i as f64).collect();
        for &r in &[3usize, 9, 17] {
            coords[r * dim..(r + 1) * dim].copy_from_slice(&far);
        }
        let center: Vec<f64> = vec![0.0; dim];
        for k in available_backends() {
            let mut nearest = vec![f64::INFINITY; 20];
            let got =
                <f64 as SimdScalar>::simd_relax_rows_max(k, &coords, dim, &center, &mut nearest)
                    .unwrap_or_else(|| {
                        crate::kernel::relax_max_rows_coords_with(
                            KernelBackend::Scalar,
                            &coords,
                            dim,
                            &center,
                            &mut nearest,
                        )
                    });
            assert_eq!(got.0, 3, "{k}: ties must resolve to the lowest index");
        }
    }
}
