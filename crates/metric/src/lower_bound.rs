//! Instance lower bounds for the k-center objective.
//!
//! The approximation guarantees proved in the paper (2 for GON, 4 for
//! two-round MRG, 10 w.s.p. for EIM) are stated relative to `OPT`, which is
//! NP-hard to compute.  For testing we therefore use two devices:
//!
//! * an exact brute-force solver on tiny instances (in `kcenter-core`), and
//! * the classic combinatorial lower bound implemented here: if some set of
//!   `k + 1` points has pairwise distance at least `D`, then `OPT ≥ D / 2`,
//!   because two of those points must share a center and the triangle
//!   inequality forces one of them to be at distance ≥ D/2 from it.
//!
//! Gonzalez's own output provides such a witness: the `k + 1` chosen centers
//! plus the final farthest point are pairwise separated by the final radius.

use crate::space::MetricSpace;
use crate::PointId;

/// Lower bound from an explicit witness set of `k + 1` mutually far points:
/// returns `min_{a != b in witness} d(a, b) / 2`.
///
/// Returns `0.0` if the witness has fewer than two points.
pub fn pairwise_lower_bound<S: MetricSpace + ?Sized>(space: &S, witness: &[PointId]) -> f64 {
    if witness.len() < 2 {
        return 0.0;
    }
    // The scan runs in certification space (`wide_cmp_*`: an
    // order-equivalent surrogate accumulated in `f64` from the stored rows,
    // squared for Euclidean spaces), so a reduced-precision store streams
    // its narrow rows while the bound stays exact — and only the winning
    // pair pays the conversion back to a real distance (one `sqrt` total
    // instead of one per pair).  Each witness row is compared against the
    // rest through the batch `wide_cmp_distances_from`, which rides the
    // dispatched kernel backend on coordinate-backed spaces.
    let mut min = f64::INFINITY;
    for (idx, &a) in witness.iter().enumerate() {
        for d in space.wide_cmp_distances_from(a, &witness[idx + 1..]) {
            if d < min {
                min = d;
            }
        }
    }
    space.wide_cmp_to_distance(min) / 2.0
}

/// A crude lower bound valid for any instance: `diameter / (2 * k)` would be
/// wrong in general, but `diameter / 2` is a valid lower bound when `k = 1`,
/// and for `k >= 1` the optimal radius is at least the diameter of the whole
/// set divided by `2k` **along a path**, which does not hold in general
/// metrics.  We therefore only expose the safe `k = 1` case and otherwise
/// fall back to zero; the function exists so callers can treat the `k = 1`
/// case uniformly.
pub fn scaled_diameter_lower_bound<S: MetricSpace + ?Sized>(space: &S, k: usize) -> f64 {
    if k != 1 || space.len() < 2 {
        return 0.0;
    }
    let n = space.len();
    // O(n) approximation of the diameter is enough for a lower bound: the
    // distance from an arbitrary point to its farthest point is at least
    // half the diameter, so dividing by 2 again stays valid.  As above, the
    // scan stays in certification space (batched through the dispatched
    // kernels) and converts only the winner.
    let targets: Vec<PointId> = (1..n).collect();
    let far = space
        .wide_cmp_distances_from(0, &targets)
        .into_iter()
        .fold(0.0, f64::max);
    space.wide_cmp_to_distance(far) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::space::VecSpace;

    fn line(n: usize) -> VecSpace {
        VecSpace::new((0..n).map(|i| Point::xy(i as f64, 0.0)).collect())
    }

    #[test]
    fn pairwise_lower_bound_on_line() {
        let s = line(10);
        // Points 0 and 9 are 9 apart -> OPT for k = 1 is >= 4.5.
        let lb = pairwise_lower_bound(&s, &[0, 9]);
        assert!((lb - 4.5).abs() < 1e-12);
    }

    #[test]
    fn pairwise_lower_bound_uses_minimum_pair() {
        let s = line(10);
        let lb = pairwise_lower_bound(&s, &[0, 1, 9]);
        assert!((lb - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pairwise_lower_bound_trivial_witness() {
        let s = line(5);
        assert_eq!(pairwise_lower_bound(&s, &[]), 0.0);
        assert_eq!(pairwise_lower_bound(&s, &[3]), 0.0);
    }

    #[test]
    fn bounds_work_on_reduced_precision_stores() {
        use crate::flat::FlatPoints;
        let pts: Vec<Point> = (0..10).map(|i| Point::xy(i as f64, 0.0)).collect();
        let s32: VecSpace<crate::distance::Euclidean, f32> =
            VecSpace::from_flat(FlatPoints::<f32>::from_points(&pts));
        // Integer coordinates are exact at f32, so the bounds match f64.
        assert!((pairwise_lower_bound(&s32, &[0, 9]) - 4.5).abs() < 1e-12);
        assert!((scaled_diameter_lower_bound(&s32, 1) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn scaled_diameter_bound_only_for_k1() {
        let s = line(11);
        assert!(scaled_diameter_lower_bound(&s, 1) > 0.0);
        assert_eq!(scaled_diameter_lower_bound(&s, 2), 0.0);
        assert_eq!(scaled_diameter_lower_bound(&line(1), 1), 0.0);
    }

    #[test]
    fn scaled_diameter_bound_is_valid_for_k1() {
        // For k = 1 on a line 0..=10 the optimal radius is 5 (center at 5).
        let s = line(11);
        let lb = scaled_diameter_lower_bound(&s, 1);
        assert!(lb <= 5.0 + 1e-12);
        assert!(lb > 0.0);
    }
}
