//! Explicit symmetric distance matrices, generic over the storage scalar.
//!
//! The paper notes (Section 7.3) that a matrix representation of the
//! complete graph would force a significant proportion of unnecessary data
//! to be shipped between machines, which is why its experiments compute
//! Euclidean distances on demand.  We still provide the matrix form: it is
//! the natural input when the metric is given directly as a weighted graph,
//! it backs [`crate::space::MatrixSpace`], and it is what the brute-force
//! optimum solver in `kcenter-core` consumes for small verification
//! instances.
//!
//! Like [`crate::FlatPoints`], the matrix is generic over the storage
//! [`Scalar`]: `DistanceMatrix<f32>` halves the bytes of the packed triangle
//! and of every comparison-space scan over it.  The precision contract
//! mirrors the flat store's: each entry is rounded **once** when it is
//! stored ([`Scalar::from_f64`]), [`DistanceMatrix::cmp_get`] exposes the
//! stored value for comparison-only scans, and [`DistanceMatrix::get`]
//! widens back to `f64` exactly — so a reduced-precision matrix carries only
//! the one-time input rounding of each pairwise distance, never accumulated
//! scan error.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::scalar::Scalar;
use crate::space::MetricSpace;

/// A dense symmetric `n × n` matrix of pairwise distances with a zero
/// diagonal, stored as a packed upper triangle at storage precision `S`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceMatrix<S: Scalar = f64> {
    n: usize,
    /// Packed strict upper triangle, row-major: entry `(i, j)` with `i < j`
    /// lives at `index(i, j)`.
    upper: Vec<S>,
}

impl<S: Scalar> DistanceMatrix<S> {
    /// Creates an all-zero matrix over `n` points.
    pub fn zeros(n: usize) -> Self {
        let len = n.saturating_sub(1) * n / 2;
        Self {
            n,
            upper: vec![S::ZERO; len],
        }
    }

    /// Builds the matrix by evaluating every pairwise distance of `space`,
    /// in parallel over rows.  Distances are computed with `f64`
    /// accumulation and rounded once into the storage scalar.
    ///
    /// Each row goes through the space's batch
    /// [`MetricSpace::distances_from`], which on coordinate-backed spaces
    /// rides the dispatched kernel backend (`kernel::simd`) — so the build
    /// is deterministic per `(precision, kernel)`, and bit-identical to the
    /// pre-dispatch behaviour under the default `scalar` backend.
    pub fn from_space<M: MetricSpace + ?Sized>(space: &M) -> Self {
        let n = space.len();
        let mut m = Self::zeros(n);
        if n < 2 {
            return m;
        }
        // Compute rows in parallel, then scatter into the packed triangle.
        // One shared id table serves every row's target slice, so the only
        // per-row allocation is the result vector itself.
        let ids: Vec<usize> = (0..n).collect();
        let rows: Vec<Vec<f64>> = (0..n - 1)
            .into_par_iter()
            .map(|i| space.distances_from(i, &ids[i + 1..]))
            .collect();
        for (i, row) in rows.into_iter().enumerate() {
            for (off, d) in row.into_iter().enumerate() {
                let j = i + 1 + off;
                m.set(i, j, d);
            }
        }
        m
    }

    /// Builds the matrix from a full `n × n` nested vector, rounding each
    /// entry once into the storage scalar.
    ///
    /// # Panics
    ///
    /// Panics if the input is not square, not symmetric (within `1e-9`), or
    /// has a non-zero diagonal.
    pub fn from_full(full: &[Vec<f64>]) -> Self {
        let n = full.len();
        let mut m = Self::zeros(n);
        for (i, row) in full.iter().enumerate() {
            assert_eq!(row.len(), n, "distance matrix must be square");
            assert!(row[i].abs() < 1e-9, "diagonal must be zero");
            for j in (i + 1)..n {
                assert!(
                    (row[j] - full[j][i]).abs() < 1e-9,
                    "distance matrix must be symmetric"
                );
                m.set(i, j, row[j]);
            }
        }
        m
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers zero points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Storage-precision name (`"f32"` / `"f64"`), for reports.
    pub fn precision_name(&self) -> &'static str {
        S::NAME
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        // Offset of row i in the packed strict upper triangle.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Distance between points `i` and `j`, widened to `f64` (exact: both
    /// storage scalars embed losslessly, so this carries only the one-time
    /// storage rounding of the entry).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.cmp_get(i, j).to_f64()
    }

    /// The stored entry at storage precision — the comparison-space view
    /// scans use when only the ordering matters (an `f32` matrix stays
    /// entirely in `f32` here).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn cmp_get(&self, i: usize, j: usize) -> S {
        assert!(i < self.n && j < self.n, "index out of bounds");
        if i == j {
            S::ZERO
        } else if i < j {
            self.upper[self.index(i, j)]
        } else {
            self.upper[self.index(j, i)]
        }
    }

    /// Sets the distance between `i` and `j` (and symmetrically `j`, `i`),
    /// rounding once into the storage scalar.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices, on `i == j` with a non-zero value, or
    /// on negative / non-finite values (including values whose storage
    /// rounding overflows the scalar, e.g. `1e300` at `f32`).
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        assert!(
            value.is_finite() && value >= 0.0,
            "distances must be finite and non-negative"
        );
        let stored = S::from_f64(value);
        assert!(
            stored.is_finite(),
            "distance {value} overflows the {} storage scalar",
            S::NAME
        );
        if i == j {
            assert_eq!(value, 0.0, "diagonal entries must stay zero");
            return;
        }
        let idx = if i < j {
            self.index(i, j)
        } else {
            self.index(j, i)
        };
        self.upper[idx] = stored;
    }

    /// The largest pairwise distance (the diameter of the point set), or
    /// `0.0` for fewer than two points.  The max is taken in storage space
    /// (order-preserving) and widened once.
    pub fn diameter(&self) -> f64 {
        self.upper.iter().copied().fold(S::ZERO, S::max).to_f64()
    }

    /// All pairwise distances in unspecified order (strict upper triangle),
    /// at storage precision.
    pub fn pairwise(&self) -> &[S] {
        &self.upper
    }

    /// Re-stores every entry at precision `T` (rounding to nearest when
    /// narrowing, lossless when widening) — the conversion benches use to
    /// compare both precisions over the same instance.
    pub fn to_precision<T: Scalar>(&self) -> DistanceMatrix<T> {
        DistanceMatrix {
            n: self.n,
            upper: self.upper.iter().map(|d| T::from_f64(d.to_f64())).collect(),
        }
    }

    /// Verifies the metric axioms: symmetry and the zero diagonal hold by
    /// construction, so this checks non-negativity (by construction too) and
    /// the triangle inequality within an absolute tolerance.  The check runs
    /// in `f64` on the widened entries regardless of the storage precision.
    ///
    /// Returns the first violated triple on failure.
    pub fn verify_metric(&self, tol: f64) -> Result<(), MetricViolation> {
        for i in 0..self.n {
            for j in 0..self.n {
                if i == j {
                    continue;
                }
                let dij = self.get(i, j);
                for k in 0..self.n {
                    if k == i || k == j {
                        continue;
                    }
                    let dik = self.get(i, k);
                    let dkj = self.get(k, j);
                    if dij > dik + dkj + tol {
                        return Err(MetricViolation {
                            i,
                            j,
                            k,
                            direct: dij,
                            via: dik + dkj,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl<S: Scalar> fmt::Debug for DistanceMatrix<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DistanceMatrix<{}>(n={})", S::NAME, self.n)
    }
}

/// A witness that the triangle inequality fails: `d(i, j) > d(i, k) + d(k, j)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricViolation {
    /// First endpoint.
    pub i: usize,
    /// Second endpoint.
    pub j: usize,
    /// Intermediate point.
    pub k: usize,
    /// The direct distance `d(i, j)`.
    pub direct: f64,
    /// The detour distance `d(i, k) + d(k, j)`.
    pub via: f64,
}

impl fmt::Display for MetricViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "triangle inequality violated: d({}, {}) = {} > {} = d({}, {}) + d({}, {})",
            self.i, self.j, self.direct, self.via, self.i, self.k, self.k, self.j
        )
    }
}

impl std::error::Error for MetricViolation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::space::VecSpace;

    #[test]
    fn zeros_has_zero_everywhere() {
        let m = DistanceMatrix::<f64>::zeros(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn set_and_get_are_symmetric() {
        let mut m = DistanceMatrix::<f64>::zeros(3);
        m.set(0, 2, 4.5);
        m.set(2, 1, 1.5);
        assert_eq!(m.get(0, 2), 4.5);
        assert_eq!(m.get(2, 0), 4.5);
        assert_eq!(m.get(1, 2), 1.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn f32_storage_rounds_once_and_widens_exactly() {
        let mut m = DistanceMatrix::<f32>::zeros(3);
        m.set(0, 1, 0.1);
        m.set(1, 2, 3.25);
        assert_eq!(m.precision_name(), "f32");
        // Comparison space is the stored f32 value …
        assert_eq!(m.cmp_get(0, 1), 0.1f32);
        assert_eq!(m.cmp_get(1, 0), 0.1f32);
        // … and get() widens it exactly (the only error is input rounding).
        assert_eq!(m.get(0, 1), 0.1f32 as f64);
        assert_eq!(m.get(1, 2), 3.25);
        assert_eq!(m.diameter(), 3.25);
    }

    #[test]
    fn to_precision_round_trips_exact_values() {
        let mut m = DistanceMatrix::<f64>::zeros(3);
        m.set(0, 1, 1.5);
        m.set(0, 2, 2.25);
        m.set(1, 2, 3.0);
        let narrow = m.to_precision::<f32>();
        assert_eq!(narrow.get(0, 2), 2.25);
        assert_eq!(narrow.to_precision::<f64>(), m);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_rejects_out_of_range() {
        DistanceMatrix::<f64>::zeros(2).get(0, 5);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn set_rejects_negative() {
        DistanceMatrix::<f64>::zeros(3).set(0, 1, -1.0);
    }

    #[test]
    #[should_panic(expected = "overflows the f32 storage scalar")]
    fn set_rejects_values_beyond_the_storage_range() {
        DistanceMatrix::<f32>::zeros(3).set(0, 1, 1e300);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn set_rejects_nonzero_diagonal() {
        DistanceMatrix::<f64>::zeros(3).set(1, 1, 2.0);
    }

    #[test]
    fn from_space_matches_direct_distances() {
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(3.0, 4.0),
            Point::xy(6.0, 8.0),
        ];
        let space = VecSpace::new(pts);
        let m = DistanceMatrix::<f64>::from_space(&space);
        assert!((m.get(0, 1) - 5.0).abs() < 1e-12);
        assert!((m.get(1, 2) - 5.0).abs() < 1e-12);
        assert!((m.get(0, 2) - 10.0).abs() < 1e-12);
        assert!((m.diameter() - 10.0).abs() < 1e-12);
        // The f32 instantiation sees the same geometry up to input rounding.
        let m32 = DistanceMatrix::<f32>::from_space(&space);
        assert!((m32.get(0, 2) - 10.0).abs() < 1e-5);
    }

    #[test]
    fn from_space_handles_tiny_inputs() {
        let empty = VecSpace::new(vec![]);
        assert!(DistanceMatrix::<f64>::from_space(&empty).is_empty());
        let single = VecSpace::new(vec![Point::xy(1.0, 1.0)]);
        let m = DistanceMatrix::<f64>::from_space(&single);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn from_full_round_trip() {
        let full = vec![
            vec![0.0, 1.0, 2.0],
            vec![1.0, 0.0, 1.5],
            vec![2.0, 1.5, 0.0],
        ];
        let m = DistanceMatrix::<f64>::from_full(&full);
        for (i, row) in full.iter().enumerate() {
            for (j, &expected) in row.iter().enumerate() {
                assert!((m.get(i, j) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_full_rejects_asymmetry() {
        DistanceMatrix::<f64>::from_full(&[vec![0.0, 1.0], vec![2.0, 0.0]]);
    }

    #[test]
    fn verify_metric_accepts_euclidean_instances() {
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(0.5, 2.0),
            Point::xy(-1.0, 1.0),
        ];
        let m = DistanceMatrix::<f64>::from_space(&VecSpace::new(pts));
        assert!(m.verify_metric(1e-9).is_ok());
    }

    #[test]
    fn verify_metric_reports_violation() {
        let mut m = DistanceMatrix::<f64>::zeros(3);
        m.set(0, 1, 1.0);
        m.set(1, 2, 1.0);
        m.set(0, 2, 5.0);
        let v = m.verify_metric(1e-9).unwrap_err();
        assert_eq!((v.i, v.j), (0, 2));
        assert!(v.direct > v.via);
        assert!(v.to_string().contains("triangle inequality"));
    }

    #[test]
    fn pairwise_exposes_upper_triangle() {
        let mut m = DistanceMatrix::<f64>::zeros(3);
        m.set(0, 1, 1.0);
        m.set(0, 2, 2.0);
        m.set(1, 2, 3.0);
        let mut p = m.pairwise().to_vec();
        p.sort_by(f64::total_cmp);
        assert_eq!(p, vec![1.0, 2.0, 3.0]);
    }
}
