//! Distance functions.
//!
//! The clustering algorithms are generic over a [`Distance`], but the paper's
//! experiments all use the Euclidean metric computed on demand from point
//! coordinates (Section 7.3).  Additional metrics are provided both for
//! completeness (the real data sets are partly categorical, where an
//! overlap/Hamming distance is the natural choice) and to exercise the
//! genericity of the core algorithms in tests.
//!
//! # Scalar genericity
//!
//! The per-pair methods are generic over the storage [`Scalar`] `S`
//! (`f64` or `f32`), so one `Distance` implementation serves both storage
//! precisions.  Three families with distinct accuracy contracts:
//!
//! * [`Distance::distance_slices`] returns the **exact** distance: each
//!   coordinate is widened to `f64` before accumulating, so the result is
//!   `f64` arithmetic over the stored rows at either precision.
//! * [`Distance::surrogate`] is the **comparison-space** value, computed
//!   *and accumulated* in `S` — the bandwidth-halved fast path for scans
//!   that only compare distances.
//! * [`Distance::wide_surrogate`] is the **certification** surrogate:
//!   order-equivalent to the distance like `surrogate`, but `f64`-accumulated
//!   from the `S` rows.  The covering-radius and coverage verifiers scan on
//!   this, so every reported quality number is exact regardless of storage
//!   precision.
//!
//! # Surrogate (comparison-space) distances
//!
//! The hot scans never need actual distances — only their *order* (which
//! center is nearest, which point is farthest).  [`Distance::surrogate`]
//! returns a value that is order-equivalent to the distance but may be
//! cheaper: squared Euclidean skips the `sqrt`, Minkowski skips the final
//! `p`-th root.  [`Distance::surrogate_to_distance`] converts a surrogate
//! value back (one `sqrt` per winner instead of one per pair), and
//! [`Distance::distance_to_surrogate`] converts a distance threshold into
//! surrogate space for early-exit scans.

use crate::kernel::{self, dist2_auto, dist2_wide, dist2_wide_auto};
use crate::point::Point;
use crate::scalar::Scalar;
use serde::{Deserialize, Serialize};

/// A distance function over coordinate rows.
///
/// The required methods work on raw `&[S]` slices so implementations can
/// be driven directly from the flat [`crate::FlatPoints`] store at either
/// storage precision without materialising [`Point`]s; the `&Point` form is
/// a thin convenience wrapper over the `f64` instantiation.
///
/// Implementations used with the k-center approximation algorithms must be
/// *metrics* (non-negative, zero iff equal up to representation, symmetric,
/// triangle inequality); the approximation factors of GON, MRG and EIM all
/// rely on the triangle inequality.  [`SquaredEuclidean`] is provided for
/// nearest-neighbour style comparisons but is **not** a metric and is
/// rejected by the algorithms unless explicitly allowed.
///
/// Because the per-pair methods are generic over [`Scalar`], the trait is
/// not dyn-compatible; the algorithms are generic over `D: Distance`
/// instead of boxing.
pub trait Distance: Send + Sync {
    /// Computes the exact distance between two coordinate rows: every
    /// coordinate is widened to `f64` before accumulating, so the result
    /// carries no reduced-precision scan error (only the rows' own storage
    /// rounding).
    ///
    /// # Panics
    ///
    /// Implementations may panic if the rows have different lengths.
    fn distance_slices<S: Scalar>(&self, a: &[S], b: &[S]) -> f64;

    /// Computes the distance between two points (exact `f64` arithmetic on
    /// the points' own `f64` coordinates).
    #[inline]
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        self.distance_slices(a.coords(), b.coords())
    }

    /// An order-equivalent, possibly cheaper stand-in for the distance,
    /// computed and accumulated in `S`: `surrogate(a, b) <= surrogate(c, d)`
    /// iff `distance(a, b) <= distance(c, d)` (up to `S` rounding, which may
    /// turn near-ties into exact ties).  Defaults to the distance rounded
    /// into `S`.
    #[inline]
    fn surrogate<S: Scalar>(&self, a: &[S], b: &[S]) -> S {
        S::from_f64(self.distance_slices(a, b))
    }

    /// Maps a surrogate value back to the distance it stands for.
    #[inline]
    fn surrogate_to_distance<S: Scalar>(&self, s: S) -> f64 {
        s.to_f64()
    }

    /// Maps a distance into surrogate space (the inverse of
    /// [`Distance::surrogate_to_distance`] on non-negative values, up to
    /// `S` rounding).
    #[inline]
    fn distance_to_surrogate<S: Scalar>(&self, d: f64) -> S {
        S::from_f64(d)
    }

    /// The certification surrogate: order-equivalent to the distance (like
    /// [`Distance::surrogate`]) but accumulated in `f64` from the `S` rows,
    /// so scans on it are exact at either storage precision.  Defaults to
    /// the distance itself.
    #[inline]
    fn wide_surrogate<S: Scalar>(&self, a: &[S], b: &[S]) -> f64 {
        self.distance_slices(a, b)
    }

    /// [`Distance::wide_surrogate`] through the dispatched kernel backend
    /// (`kernel::simd`): the same `f64`-accumulated quantity, but an SIMD
    /// backend may sum it in its own pinned order, so values are
    /// bit-deterministic per `(precision, kernel)` rather than per
    /// precision alone.  Batch *reporting* paths (`distances_from`, the
    /// distance-matrix build, the lower-bound scans) ride this; the
    /// `wide_cmp_*` certification scans keep using
    /// [`Distance::wide_surrogate`].  Defaults to the undispatched value.
    #[inline]
    fn wide_surrogate_auto<S: Scalar>(&self, a: &[S], b: &[S]) -> f64 {
        self.wide_surrogate(a, b)
    }

    /// Maps a wide-surrogate value back to the distance it stands for.
    #[inline]
    fn wide_surrogate_to_distance(&self, s: f64) -> f64 {
        s
    }

    /// Maps a distance into wide-surrogate space (the inverse of
    /// [`Distance::wide_surrogate_to_distance`] on non-negative values).
    #[inline]
    fn distance_to_wide_surrogate(&self, d: f64) -> f64 {
        d
    }

    /// The fused Gonzalez step in surrogate space over contiguous rows
    /// (`coords[i*dim..(i+1)*dim]` is row `i`): lowers `nearest[i]` to
    /// `min(nearest[i], surrogate(row_i, center_row))` and returns the
    /// position and value of the maximum updated entry (ties toward the
    /// smaller index).
    ///
    /// Implementations with a cheap surrogate may provide a
    /// dimension-specialised kernel ([`Euclidean`] does); the default is a
    /// straightforward single pass.
    fn relax_rows_max<S: Scalar>(
        &self,
        coords: &[S],
        dim: usize,
        center_row: &[S],
        nearest: &mut [S],
    ) -> (usize, S) {
        let mut best = (0usize, S::NEG_INFINITY);
        for (i, (row, slot)) in coords.chunks_exact(dim).zip(nearest.iter_mut()).enumerate() {
            let d = self.surrogate(row, center_row);
            if d < *slot {
                *slot = d;
            }
            if *slot > best.1 {
                best = (i, *slot);
            }
        }
        best
    }

    /// [`Distance::relax_rows_max`] over an explicit id subset: row
    /// `subset[i]` pairs with `nearest[i]`.
    fn relax_ids_max<S: Scalar>(
        &self,
        coords: &[S],
        dim: usize,
        subset: &[usize],
        center_row: &[S],
        nearest: &mut [S],
    ) -> (usize, S) {
        let mut best = (0usize, S::NEG_INFINITY);
        for (i, (&p, slot)) in subset.iter().zip(nearest.iter_mut()).enumerate() {
            let d = self.surrogate(&coords[p * dim..p * dim + dim], center_row);
            if d < *slot {
                *slot = d;
            }
            if *slot > best.1 {
                best = (i, *slot);
            }
        }
        best
    }

    /// Whether this distance satisfies the triangle inequality.
    ///
    /// The k-center algorithms assert this before running, since their
    /// approximation guarantees are meaningless otherwise.
    fn is_metric(&self) -> bool {
        true
    }

    /// Whether the comparison-space scans of this distance can be served
    /// by the axis-aligned spatial grid (`crate::grid`): true only when
    /// [`Distance::surrogate`] and [`Distance::wide_surrogate`] are the
    /// squared Euclidean norm of the coordinate rows, so an axis-aligned
    /// box distance is a valid lower bound in both spaces.  Defaults to
    /// `false`; the grid arm falls back to the dense scan.
    fn supports_grid(&self) -> bool {
        false
    }

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// The Euclidean (`L2`) metric — the distance used throughout the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Euclidean;

impl Distance for Euclidean {
    #[inline]
    fn distance_slices<S: Scalar>(&self, a: &[S], b: &[S]) -> f64 {
        dist2_wide(a, b).sqrt()
    }

    /// Squared distance in `S`: order-equivalent and one `sqrt` cheaper per
    /// pair, accumulated at storage precision (the fast path, through the
    /// dispatched kernel backend).
    #[inline]
    fn surrogate<S: Scalar>(&self, a: &[S], b: &[S]) -> S {
        dist2_auto(a, b)
    }

    #[inline]
    fn surrogate_to_distance<S: Scalar>(&self, s: S) -> f64 {
        s.to_f64().sqrt()
    }

    #[inline]
    fn distance_to_surrogate<S: Scalar>(&self, d: f64) -> S {
        S::from_f64(d * d)
    }

    /// Squared distance accumulated in `f64` — the certification scan
    /// (fixed scalar kernel, independent of the dispatched backend).
    #[inline]
    fn wide_surrogate<S: Scalar>(&self, a: &[S], b: &[S]) -> f64 {
        dist2_wide(a, b)
    }

    /// Squared distance accumulated in `f64` through the dispatched kernel
    /// backend — the batch-reporting fast path.
    #[inline]
    fn wide_surrogate_auto<S: Scalar>(&self, a: &[S], b: &[S]) -> f64 {
        dist2_wide_auto(a, b)
    }

    #[inline]
    fn wide_surrogate_to_distance(&self, s: f64) -> f64 {
        s.sqrt()
    }

    #[inline]
    fn distance_to_wide_surrogate(&self, d: f64) -> f64 {
        d * d
    }

    fn relax_rows_max<S: Scalar>(
        &self,
        coords: &[S],
        dim: usize,
        center_row: &[S],
        nearest: &mut [S],
    ) -> (usize, S) {
        kernel::relax_max_rows_coords(coords, dim, center_row, nearest)
    }

    fn relax_ids_max<S: Scalar>(
        &self,
        coords: &[S],
        dim: usize,
        subset: &[usize],
        center_row: &[S],
        nearest: &mut [S],
    ) -> (usize, S) {
        kernel::relax_max_ids_coords(coords, dim, subset, center_row, nearest)
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }

    /// Both surrogates are squared L2 over the rows, so box lower bounds
    /// are valid and the grid arm may serve the scans.
    fn supports_grid(&self) -> bool {
        true
    }
}

/// Squared Euclidean distance.  Cheaper than [`Euclidean`] (no square root)
/// and order-equivalent to it, but **not** a metric: the triangle inequality
/// fails, so it must not be used with the approximation algorithms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SquaredEuclidean;

impl Distance for SquaredEuclidean {
    #[inline]
    fn distance_slices<S: Scalar>(&self, a: &[S], b: &[S]) -> f64 {
        dist2_wide(a, b)
    }

    #[inline]
    fn surrogate<S: Scalar>(&self, a: &[S], b: &[S]) -> S {
        dist2_auto(a, b)
    }

    fn is_metric(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "squared-euclidean"
    }
}

/// The Manhattan (`L1`) metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manhattan;

impl Distance for Manhattan {
    #[inline]
    fn distance_slices<S: Scalar>(&self, a: &[S], b: &[S]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x.to_f64() - y.to_f64()).abs())
            .sum()
    }

    /// The `L1` sum accumulated in `S` (order-equivalent fast path).
    #[inline]
    fn surrogate<S: Scalar>(&self, a: &[S], b: &[S]) -> S {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        let mut sum = S::ZERO;
        for (x, y) in a.iter().zip(b.iter()) {
            sum += (*x - *y).abs();
        }
        sum
    }

    fn name(&self) -> &'static str {
        "manhattan"
    }
}

/// The Chebyshev (`L∞`) metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chebyshev;

impl Distance for Chebyshev {
    #[inline]
    fn distance_slices<S: Scalar>(&self, a: &[S], b: &[S]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x.to_f64() - y.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// The coordinate-gap maximum taken in `S` (order-equivalent fast path).
    #[inline]
    fn surrogate<S: Scalar>(&self, a: &[S], b: &[S]) -> S {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        let mut max = S::ZERO;
        for (x, y) in a.iter().zip(b.iter()) {
            max = max.max((*x - *y).abs());
        }
        max
    }

    fn name(&self) -> &'static str {
        "chebyshev"
    }
}

/// The Minkowski (`Lp`) metric for a configurable exponent `p >= 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Minkowski {
    p: f64,
}

impl Minkowski {
    /// Creates an `Lp` metric.
    ///
    /// # Panics
    ///
    /// Panics if `p < 1` (the triangle inequality fails for `p < 1`).
    pub fn new(p: f64) -> Self {
        assert!(
            p >= 1.0 && p.is_finite(),
            "Minkowski exponent must be finite and >= 1"
        );
        Self { p }
    }

    /// The exponent `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Distance for Minkowski {
    #[inline]
    fn distance_slices<S: Scalar>(&self, a: &[S], b: &[S]) -> f64 {
        self.wide_surrogate(a, b).powf(1.0 / self.p)
    }

    /// The `p`-th power of the distance, accumulated in `S`:
    /// order-equivalent and one `powf` cheaper per pair.
    #[inline]
    fn surrogate<S: Scalar>(&self, a: &[S], b: &[S]) -> S {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        let p = S::from_f64(self.p);
        let mut sum = S::ZERO;
        for (x, y) in a.iter().zip(b.iter()) {
            sum += (*x - *y).abs().powf(p);
        }
        sum
    }

    #[inline]
    fn surrogate_to_distance<S: Scalar>(&self, s: S) -> f64 {
        s.to_f64().powf(1.0 / self.p)
    }

    #[inline]
    fn distance_to_surrogate<S: Scalar>(&self, d: f64) -> S {
        S::from_f64(d.powf(self.p))
    }

    /// The `p`-th power of the distance, accumulated in `f64` (certification
    /// scan).
    #[inline]
    fn wide_surrogate<S: Scalar>(&self, a: &[S], b: &[S]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x.to_f64() - y.to_f64()).abs().powf(self.p))
            .sum()
    }

    #[inline]
    fn wide_surrogate_to_distance(&self, s: f64) -> f64 {
        s.powf(1.0 / self.p)
    }

    #[inline]
    fn distance_to_wide_surrogate(&self, d: f64) -> f64 {
        d.powf(self.p)
    }

    fn name(&self) -> &'static str {
        "minkowski"
    }
}

/// Hamming / overlap distance: the number of coordinates in which the two
/// points differ.  The natural metric for categorical attributes such as the
/// suits and ranks of the Poker Hand data set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hamming;

impl Distance for Hamming {
    #[inline]
    fn distance_slices<S: Scalar>(&self, a: &[S], b: &[S]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter().zip(b.iter()).filter(|(x, y)| x != y).count() as f64
    }

    fn name(&self) -> &'static str {
        "hamming"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coords: &[f64]) -> Point {
        Point::new(coords.to_vec())
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        let d = Euclidean.distance(&p(&[0.0, 0.0]), &p(&[3.0, 4.0]));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn euclidean_is_zero_on_identical_points() {
        let a = p(&[1.5, -2.5, 3.0]);
        assert_eq!(Euclidean.distance(&a, &a), 0.0);
    }

    #[test]
    fn f32_slices_give_exact_distances_on_exact_inputs() {
        // Integer coordinates are exact at f32, so the widened distance
        // must agree with the f64 computation exactly.
        let a64 = [0.0f64, 0.0, 3.0];
        let b64 = [3.0f64, 4.0, 3.0];
        let a32 = [0.0f32, 0.0, 3.0];
        let b32 = [3.0f32, 4.0, 3.0];
        assert_eq!(
            Euclidean.distance_slices(&a32, &b32),
            Euclidean.distance_slices(&a64, &b64)
        );
        assert_eq!(
            Manhattan.distance_slices(&a32, &b32),
            Manhattan.distance_slices(&a64, &b64)
        );
        // Comparison-space surrogates stay in S.
        let s: f32 = Euclidean.surrogate(&a32, &b32);
        assert_eq!(s, 25.0f32);
        assert_eq!(Euclidean.surrogate_to_distance(s), 5.0);
    }

    #[test]
    fn squared_euclidean_is_square_of_euclidean() {
        let a = p(&[1.0, 2.0]);
        let b = p(&[4.0, 6.0]);
        let e = Euclidean.distance(&a, &b);
        let s = SquaredEuclidean.distance(&a, &b);
        assert!((s - e * e).abs() < 1e-9);
        assert!(!SquaredEuclidean.is_metric());
    }

    #[test]
    fn manhattan_matches_hand_computation() {
        let d = Manhattan.distance(&p(&[1.0, 2.0]), &p(&[4.0, -2.0]));
        assert!((d - 7.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_takes_max_coordinate_gap() {
        let d = Chebyshev.distance(&p(&[1.0, 2.0, 3.0]), &p(&[2.0, 10.0, 3.5]));
        assert!((d - 8.0).abs() < 1e-12);
    }

    #[test]
    fn minkowski_p1_equals_manhattan_p2_equals_euclidean() {
        let a = p(&[1.0, -2.0, 0.5]);
        let b = p(&[-3.0, 4.0, 2.0]);
        let m1 = Minkowski::new(1.0).distance(&a, &b);
        let m2 = Minkowski::new(2.0).distance(&a, &b);
        assert!((m1 - Manhattan.distance(&a, &b)).abs() < 1e-9);
        assert!((m2 - Euclidean.distance(&a, &b)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "Minkowski exponent")]
    fn minkowski_rejects_p_below_one() {
        Minkowski::new(0.5);
    }

    #[test]
    fn hamming_counts_differing_coordinates() {
        let d = Hamming.distance(&p(&[1.0, 2.0, 3.0, 4.0]), &p(&[1.0, 5.0, 3.0, 0.0]));
        assert_eq!(d, 2.0);
    }

    #[test]
    fn wide_surrogates_round_trip_for_every_metric() {
        let a = [1.0f32, -2.0, 0.5, 7.25];
        let b = [-3.0f32, 4.0, 2.0, -1.5];
        macro_rules! check {
            ($m:expr) => {{
                let d = $m.distance_slices(&a, &b);
                let w = $m.wide_surrogate(&a, &b);
                assert!(
                    ($m.wide_surrogate_to_distance(w) - d).abs() <= 1e-12 * (1.0 + d),
                    "{}: wide surrogate does not round-trip",
                    $m.name()
                );
                assert!(
                    ($m.wide_surrogate_to_distance($m.distance_to_wide_surrogate(d)) - d).abs()
                        <= 1e-9 * (1.0 + d),
                    "{}: distance_to_wide_surrogate is not inverse",
                    $m.name()
                );
            }};
        }
        check!(Euclidean);
        check!(SquaredEuclidean);
        check!(Manhattan);
        check!(Chebyshev);
        check!(Minkowski::new(3.0));
        check!(Hamming);
    }

    #[test]
    fn all_metrics_report_names() {
        assert_eq!(Euclidean.name(), "euclidean");
        assert_eq!(Manhattan.name(), "manhattan");
        assert_eq!(Chebyshev.name(), "chebyshev");
        assert_eq!(Hamming.name(), "hamming");
        assert_eq!(Minkowski::new(3.0).name(), "minkowski");
        assert_eq!(SquaredEuclidean.name(), "squared-euclidean");
    }

    #[test]
    fn metric_flags() {
        assert!(Euclidean.is_metric());
        assert!(Manhattan.is_metric());
        assert!(Chebyshev.is_metric());
        assert!(Hamming.is_metric());
        assert!(Minkowski::new(4.0).is_metric());
    }
}
