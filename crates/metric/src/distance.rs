//! Distance functions.
//!
//! The clustering algorithms are generic over a [`Distance`], but the paper's
//! experiments all use the Euclidean metric computed on demand from point
//! coordinates (Section 7.3).  Additional metrics are provided both for
//! completeness (the real data sets are partly categorical, where an
//! overlap/Hamming distance is the natural choice) and to exercise the
//! genericity of the core algorithms in tests.

use crate::kernel::{self, dist2};
use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A distance function over coordinate rows.
///
/// The required method works on raw `&[f64]` slices so implementations can
/// be driven directly from the flat [`crate::FlatPoints`] store without
/// materialising [`Point`]s; the `&Point` form is a thin convenience
/// wrapper.
///
/// Implementations used with the k-center approximation algorithms must be
/// *metrics* (non-negative, zero iff equal up to representation, symmetric,
/// triangle inequality); the approximation factors of GON, MRG and EIM all
/// rely on the triangle inequality.  [`SquaredEuclidean`] is provided for
/// nearest-neighbour style comparisons but is **not** a metric and is
/// rejected by the algorithms unless explicitly allowed.
///
/// # Surrogate (comparison-space) distances
///
/// The hot scans never need actual distances — only their *order* (which
/// center is nearest, which point is farthest).  [`Distance::surrogate`]
/// returns a value that is order-equivalent to the distance but may be
/// cheaper: squared Euclidean skips the `sqrt`, Minkowski skips the final
/// `p`-th root.  [`Distance::surrogate_to_distance`] converts a surrogate
/// value back (one `sqrt` per winner instead of one per pair), and
/// [`Distance::distance_to_surrogate`] converts a distance threshold into
/// surrogate space for early-exit scans.
pub trait Distance: Send + Sync {
    /// Computes the distance between two coordinate rows.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the rows have different lengths.
    fn distance_slices(&self, a: &[f64], b: &[f64]) -> f64;

    /// Computes the distance between two points.
    #[inline]
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        self.distance_slices(a.coords(), b.coords())
    }

    /// An order-equivalent, possibly cheaper stand-in for the distance:
    /// `surrogate(a, b) <= surrogate(c, d)` iff
    /// `distance(a, b) <= distance(c, d)`.  Defaults to the distance itself.
    #[inline]
    fn surrogate(&self, a: &[f64], b: &[f64]) -> f64 {
        self.distance_slices(a, b)
    }

    /// Maps a surrogate value back to the distance it stands for.
    #[inline]
    fn surrogate_to_distance(&self, s: f64) -> f64 {
        s
    }

    /// Maps a distance into surrogate space (the inverse of
    /// [`Distance::surrogate_to_distance`] on non-negative values).
    #[inline]
    fn distance_to_surrogate(&self, d: f64) -> f64 {
        d
    }

    /// The fused Gonzalez step in surrogate space over contiguous rows
    /// (`coords[i*dim..(i+1)*dim]` is row `i`): lowers `nearest[i]` to
    /// `min(nearest[i], surrogate(row_i, center_row))` and returns the
    /// position and value of the maximum updated entry (ties toward the
    /// smaller index).
    ///
    /// Implementations with a cheap surrogate may provide a
    /// dimension-specialised kernel ([`Euclidean`] does); the default is a
    /// straightforward single pass.
    fn relax_rows_max(
        &self,
        coords: &[f64],
        dim: usize,
        center_row: &[f64],
        nearest: &mut [f64],
    ) -> (usize, f64) {
        let mut best = (0usize, f64::NEG_INFINITY);
        for (i, (row, slot)) in coords.chunks_exact(dim).zip(nearest.iter_mut()).enumerate() {
            let d = self.surrogate(row, center_row);
            if d < *slot {
                *slot = d;
            }
            if *slot > best.1 {
                best = (i, *slot);
            }
        }
        best
    }

    /// [`Distance::relax_rows_max`] over an explicit id subset: row
    /// `subset[i]` pairs with `nearest[i]`.
    fn relax_ids_max(
        &self,
        coords: &[f64],
        dim: usize,
        subset: &[usize],
        center_row: &[f64],
        nearest: &mut [f64],
    ) -> (usize, f64) {
        let mut best = (0usize, f64::NEG_INFINITY);
        for (i, (&p, slot)) in subset.iter().zip(nearest.iter_mut()).enumerate() {
            let d = self.surrogate(&coords[p * dim..p * dim + dim], center_row);
            if d < *slot {
                *slot = d;
            }
            if *slot > best.1 {
                best = (i, *slot);
            }
        }
        best
    }

    /// Whether this distance satisfies the triangle inequality.
    ///
    /// The k-center algorithms assert this before running, since their
    /// approximation guarantees are meaningless otherwise.
    fn is_metric(&self) -> bool {
        true
    }

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// The Euclidean (`L2`) metric — the distance used throughout the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Euclidean;

impl Distance for Euclidean {
    #[inline]
    fn distance_slices(&self, a: &[f64], b: &[f64]) -> f64 {
        dist2(a, b).sqrt()
    }

    /// Squared distance: order-equivalent and one `sqrt` cheaper per pair.
    #[inline]
    fn surrogate(&self, a: &[f64], b: &[f64]) -> f64 {
        dist2(a, b)
    }

    #[inline]
    fn surrogate_to_distance(&self, s: f64) -> f64 {
        s.sqrt()
    }

    #[inline]
    fn distance_to_surrogate(&self, d: f64) -> f64 {
        d * d
    }

    fn relax_rows_max(
        &self,
        coords: &[f64],
        dim: usize,
        center_row: &[f64],
        nearest: &mut [f64],
    ) -> (usize, f64) {
        kernel::relax_max_rows_coords(coords, dim, center_row, nearest)
    }

    fn relax_ids_max(
        &self,
        coords: &[f64],
        dim: usize,
        subset: &[usize],
        center_row: &[f64],
        nearest: &mut [f64],
    ) -> (usize, f64) {
        kernel::relax_max_ids_coords(coords, dim, subset, center_row, nearest)
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }
}

/// Squared Euclidean distance.  Cheaper than [`Euclidean`] (no square root)
/// and order-equivalent to it, but **not** a metric: the triangle inequality
/// fails, so it must not be used with the approximation algorithms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SquaredEuclidean;

impl Distance for SquaredEuclidean {
    #[inline]
    fn distance_slices(&self, a: &[f64], b: &[f64]) -> f64 {
        dist2(a, b)
    }

    fn is_metric(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "squared-euclidean"
    }
}

/// The Manhattan (`L1`) metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manhattan;

impl Distance for Manhattan {
    #[inline]
    fn distance_slices(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum()
    }

    fn name(&self) -> &'static str {
        "manhattan"
    }
}

/// The Chebyshev (`L∞`) metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chebyshev;

impl Distance for Chebyshev {
    #[inline]
    fn distance_slices(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    fn name(&self) -> &'static str {
        "chebyshev"
    }
}

/// The Minkowski (`Lp`) metric for a configurable exponent `p >= 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Minkowski {
    p: f64,
}

impl Minkowski {
    /// Creates an `Lp` metric.
    ///
    /// # Panics
    ///
    /// Panics if `p < 1` (the triangle inequality fails for `p < 1`).
    pub fn new(p: f64) -> Self {
        assert!(
            p >= 1.0 && p.is_finite(),
            "Minkowski exponent must be finite and >= 1"
        );
        Self { p }
    }

    /// The exponent `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Distance for Minkowski {
    #[inline]
    fn distance_slices(&self, a: &[f64], b: &[f64]) -> f64 {
        self.surrogate(a, b).powf(1.0 / self.p)
    }

    /// The `p`-th power of the distance: order-equivalent and one `powf`
    /// cheaper per pair.
    #[inline]
    fn surrogate(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs().powf(self.p))
            .sum()
    }

    #[inline]
    fn surrogate_to_distance(&self, s: f64) -> f64 {
        s.powf(1.0 / self.p)
    }

    #[inline]
    fn distance_to_surrogate(&self, d: f64) -> f64 {
        d.powf(self.p)
    }

    fn name(&self) -> &'static str {
        "minkowski"
    }
}

/// Hamming / overlap distance: the number of coordinates in which the two
/// points differ.  The natural metric for categorical attributes such as the
/// suits and ranks of the Poker Hand data set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hamming;

impl Distance for Hamming {
    #[inline]
    fn distance_slices(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter().zip(b.iter()).filter(|(x, y)| x != y).count() as f64
    }

    fn name(&self) -> &'static str {
        "hamming"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coords: &[f64]) -> Point {
        Point::new(coords.to_vec())
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        let d = Euclidean.distance(&p(&[0.0, 0.0]), &p(&[3.0, 4.0]));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn euclidean_is_zero_on_identical_points() {
        let a = p(&[1.5, -2.5, 3.0]);
        assert_eq!(Euclidean.distance(&a, &a), 0.0);
    }

    #[test]
    fn squared_euclidean_is_square_of_euclidean() {
        let a = p(&[1.0, 2.0]);
        let b = p(&[4.0, 6.0]);
        let e = Euclidean.distance(&a, &b);
        let s = SquaredEuclidean.distance(&a, &b);
        assert!((s - e * e).abs() < 1e-9);
        assert!(!SquaredEuclidean.is_metric());
    }

    #[test]
    fn manhattan_matches_hand_computation() {
        let d = Manhattan.distance(&p(&[1.0, 2.0]), &p(&[4.0, -2.0]));
        assert!((d - 7.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_takes_max_coordinate_gap() {
        let d = Chebyshev.distance(&p(&[1.0, 2.0, 3.0]), &p(&[2.0, 10.0, 3.5]));
        assert!((d - 8.0).abs() < 1e-12);
    }

    #[test]
    fn minkowski_p1_equals_manhattan_p2_equals_euclidean() {
        let a = p(&[1.0, -2.0, 0.5]);
        let b = p(&[-3.0, 4.0, 2.0]);
        let m1 = Minkowski::new(1.0).distance(&a, &b);
        let m2 = Minkowski::new(2.0).distance(&a, &b);
        assert!((m1 - Manhattan.distance(&a, &b)).abs() < 1e-9);
        assert!((m2 - Euclidean.distance(&a, &b)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "Minkowski exponent")]
    fn minkowski_rejects_p_below_one() {
        Minkowski::new(0.5);
    }

    #[test]
    fn hamming_counts_differing_coordinates() {
        let d = Hamming.distance(&p(&[1.0, 2.0, 3.0, 4.0]), &p(&[1.0, 5.0, 3.0, 0.0]));
        assert_eq!(d, 2.0);
    }

    #[test]
    fn all_metrics_report_names() {
        assert_eq!(Euclidean.name(), "euclidean");
        assert_eq!(Manhattan.name(), "manhattan");
        assert_eq!(Chebyshev.name(), "chebyshev");
        assert_eq!(Hamming.name(), "hamming");
        assert_eq!(Minkowski::new(3.0).name(), "minkowski");
        assert_eq!(SquaredEuclidean.name(), "squared-euclidean");
    }

    #[test]
    fn metric_flags() {
        assert!(Euclidean.is_metric());
        assert!(Manhattan.is_metric());
        assert!(Chebyshev.is_metric());
        assert!(Hamming.is_metric());
        assert!(Minkowski::new(4.0).is_metric());
    }
}
