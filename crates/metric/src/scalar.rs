//! The sealed [`Scalar`] trait: the coordinate storage types the flat
//! store and its kernels are generic over.
//!
//! The hot nearest-center scans are DRAM-bound at the paper's million-point
//! scale (see `BENCH_flat.json`), so halving the bytes per coordinate is
//! close to a free 2× — that is what the `f32` instantiation buys.  The
//! accuracy contract that makes this safe is split across two families of
//! operations:
//!
//! * **Comparison-space scans run in `S`.**  Selection, relaxation and
//!   assignment only compare distances, so they use `S`-valued surrogate
//!   kernels (`kernel::dist2`, the fused `relax_*` passes) — the fast,
//!   bandwidth-halved path.
//! * **Certified values are recomputed in `f64`.**  Every quality number a
//!   run reports — the covering radius, coverage checks, tightness ratios —
//!   is recomputed by the `wide_*` kernels, which read the stored `S` rows
//!   but convert each coordinate to `f64` **before** accumulating.  The
//!   reported value is therefore the exact (to `f64` rounding) distance over
//!   the stored data set, regardless of the storage precision; the only
//!   error an `f32` run carries is the one-time input rounding of each
//!   coordinate (relative `2^-24` per coordinate).
//!
//! The trait is sealed: the kernels' error analysis and the bit-for-bit
//! determinism guarantees are only established for IEEE-754 binary32 and
//! binary64, so downstream crates cannot add instantiations.

use std::cmp::Ordering;
use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Mul, Sub};

mod private {
    /// Seals [`super::Scalar`] to the two IEEE-754 types it is proven for.
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// A coordinate scalar the flat store and kernels can be instantiated at.
///
/// Implemented for `f64` (the default, exact reproduction mode) and `f32`
/// (the bandwidth-halved fast path).  See the module docs for the
/// comparison-space-in-`S` / certify-in-`f64` contract that governs which
/// computations may legitimately run at reduced precision.
///
/// [`crate::kernel::simd::SimdScalar`] is a supertrait: each storage scalar
/// carries its width-pinned kernel hooks (8 `f32` / 4 `f64` lanes), so the
/// generic kernel entry points can consult the runtime dispatch table
/// without naming concrete types.
pub trait Scalar:
    private::Sealed
    + crate::kernel::simd::SimdScalar
    + Copy
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + AddAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Positive infinity ("no center seen yet" in the relax kernels).
    const INFINITY: Self;
    /// Negative infinity (argmax seed).
    const NEG_INFINITY: Self;
    /// The unit roundoff of this type (`2^-53` for `f64`, `2^-24` for
    /// `f32`), as an `f64`.  The precision property tests scale their error
    /// bounds by this and the dimension.
    const UNIT_ROUNDOFF: f64;
    /// Short name used in reports and CLI flags (`"f32"` / `"f64"`).
    const NAME: &'static str;
    /// Largest coordinate magnitude the flat store accepts at this
    /// precision (as an `f64`).
    ///
    /// The comparison-space kernels square coordinate differences and sum
    /// up to millions of terms *in `S`*; a coordinate can therefore be
    /// finite in `S` while its squared differences overflow to infinity,
    /// which would silently break the farthest-point selection (every
    /// `nearest` slot pinned at `+inf`).  The bound is chosen so that
    /// `2^24` squared differences of magnitude `(2 · MAX_ABS_COORD)^2` still
    /// sum below `S::MAX`: `1e15` for `f32`, `1e150` for `f64` — both far
    /// beyond any coordinate a real workload carries.  [`crate::FlatPoints`]
    /// validates against it wherever it validates finiteness.
    const MAX_ABS_COORD: f64;
    /// Stable one-byte tag identifying this storage type in binary formats
    /// (`1` for `f32`, `2` for `f64`).  Tags are part of the on-disk
    /// coreset format: never renumber or reuse them.
    const TAG: u8;
    /// Number of bytes one coordinate occupies in binary formats (the
    /// IEEE-754 storage width).
    const BYTE_WIDTH: usize;

    /// Rounds an `f64` to this type (the one-time input rounding an `f32`
    /// store applies to each coordinate).  Values beyond the type's range
    /// round to infinity and are rejected by the flat store's finiteness
    /// checks.
    fn from_f64(v: f64) -> Self;
    /// Widens to `f64` exactly (both instantiations embed losslessly).
    fn to_f64(self) -> f64;
    /// Whether the value is neither infinite nor NaN.
    fn is_finite(self) -> bool;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Raises to a power (used by the Minkowski surrogate).
    fn powf(self, e: Self) -> Self;
    /// IEEE-754 minimum (propagating the non-NaN operand).
    fn min(self, other: Self) -> Self;
    /// IEEE-754 maximum (propagating the non-NaN operand).
    fn max(self, other: Self) -> Self;
    /// IEEE-754 `totalOrder` comparison (for deterministic sorts).
    fn total_cmp(&self, other: &Self) -> Ordering;
    /// Appends the little-endian IEEE-754 byte encoding of `self` to `out`
    /// (bit-exact: round-tripping through [`Scalar::read_le_bytes`] yields
    /// the identical bit pattern, NaNs and signed zeros included).
    fn write_le_bytes(self, out: &mut Vec<u8>);
    /// Decodes a value from exactly [`Scalar::BYTE_WIDTH`] little-endian
    /// bytes; `None` if `bytes` has the wrong length.
    fn read_le_bytes(bytes: &[u8]) -> Option<Self>;
}

macro_rules! impl_scalar {
    ($t:ty, $name:literal, $roundoff:expr, $max_coord:expr, $tag:expr) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const INFINITY: Self = <$t>::INFINITY;
            const NEG_INFINITY: Self = <$t>::NEG_INFINITY;
            const UNIT_ROUNDOFF: f64 = $roundoff;
            const NAME: &'static str = $name;
            const MAX_ABS_COORD: f64 = $max_coord;
            const TAG: u8 = $tag;
            const BYTE_WIDTH: usize = std::mem::size_of::<$t>();

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn powf(self, e: Self) -> Self {
                <$t>::powf(self, e)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn total_cmp(&self, other: &Self) -> Ordering {
                <$t>::total_cmp(self, other)
            }
            #[inline(always)]
            fn write_le_bytes(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline(always)]
            fn read_le_bytes(bytes: &[u8]) -> Option<Self> {
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    };
}

impl_scalar!(f32, "f32", 5.960_464_477_539_063e-8, 1e15, 1); // 2^-24
impl_scalar!(f64, "f64", 1.110_223_024_625_156_5e-16, 1e150, 2); // 2^-53

/// A runtime storage-precision choice, used by the CLI's `--precision` flag
/// and the bench harness to dispatch into the monomorphised `f32` / `f64`
/// stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum Precision {
    /// Single-precision storage: half the scan bandwidth, certified
    /// quality numbers still computed in `f64` from the rounded rows.
    F32,
    /// Double-precision storage (the default; exact reproduction mode).
    #[default]
    F64,
}

impl Precision {
    /// Parses a precision name (`"f32"` / `"f64"`, case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "f32" | "single" => Some(Precision::F32),
            "f64" | "double" => Some(Precision::F64),
            _ => None,
        }
    }

    /// The canonical name (`"f32"` / `"f64"`).
    pub fn name(&self) -> &'static str {
        match self {
            Precision::F32 => f32::NAME,
            Precision::F64 => f64::NAME,
        }
    }
}

impl Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_ieee_roundoff() {
        assert_eq!(f32::UNIT_ROUNDOFF, (f32::EPSILON / 2.0) as f64);
        assert_eq!(f64::UNIT_ROUNDOFF, f64::EPSILON / 2.0);
        assert_eq!(f32::NAME, "f32");
        assert_eq!(f64::NAME, "f64");
    }

    #[test]
    fn widening_is_lossless_and_rounding_is_nearest() {
        let v = 0.1f64;
        let narrowed = f32::from_f64(v);
        assert!((narrowed.to_f64() - v).abs() <= v * f32::UNIT_ROUNDOFF);
        assert_eq!(f64::from_f64(v), v);
        assert_eq!(f64::from_f64(v).to_f64(), v);
    }

    #[test]
    fn out_of_range_rounding_is_caught_by_is_finite() {
        let huge = 1e300f64;
        assert!(!f32::from_f64(huge).is_finite());
        assert!(f64::from_f64(huge).is_finite());
    }

    #[test]
    fn le_byte_round_trip_is_bit_exact() {
        for v in [0.0f64, -0.0, 1.5, 1.0e-300, f64::INFINITY, f64::NAN] {
            let mut buf = Vec::new();
            v.write_le_bytes(&mut buf);
            assert_eq!(buf.len(), f64::BYTE_WIDTH);
            let back = f64::read_le_bytes(&buf).expect("width matches");
            assert_eq!(back.to_bits(), v.to_bits());
        }
        for v in [0.0f32, -0.0, 1.5, f32::INFINITY, f32::NAN] {
            let mut buf = Vec::new();
            v.write_le_bytes(&mut buf);
            assert_eq!(buf.len(), f32::BYTE_WIDTH);
            let back = f32::read_le_bytes(&buf).expect("width matches");
            assert_eq!(back.to_bits(), v.to_bits());
        }
        assert_eq!(f64::read_le_bytes(&[0u8; 4]), None);
        assert_eq!(f32::read_le_bytes(&[0u8; 8]), None);
        assert_ne!(f32::TAG, f64::TAG);
    }

    #[test]
    fn precision_parses_and_prints() {
        assert_eq!(Precision::parse("f32"), Some(Precision::F32));
        assert_eq!(Precision::parse("F64"), Some(Precision::F64));
        assert_eq!(Precision::parse("double"), Some(Precision::F64));
        assert_eq!(Precision::parse("half"), None);
        assert_eq!(Precision::default(), Precision::F64);
        assert_eq!(Precision::F32.to_string(), "f32");
    }
}
