//! Property tests pinning the `f32` kernel instantiations against `f64`
//! scalar references.
//!
//! The contract under test (see `kcenter_metric::scalar`): an `f32` store
//! rounds each coordinate **once** at ingestion, after which
//!
//! * the *wide* (certification) kernels must equal the `f64` kernels run on
//!   pre-widened copies of the same rows — no reduced-precision arithmetic
//!   at all;
//! * the *narrow* (comparison-space) kernels may accumulate in `f32`, with
//!   an error bounded by a dimension-scaled multiple of the `f32` unit
//!   roundoff **relative to the `f64` value on the same (already rounded)
//!   inputs** — i.e. pure accumulation error, no cancellation terms.
//!
//! Dimensions 1–64 are exercised for every metric, matching the bounds
//! documented on the kernels.

use kcenter_metric::kernel::{dist2, dist2_wide, nearest2, relax_nearest};
use kcenter_metric::{
    Chebyshev, Distance, Euclidean, FlatPoints, Hamming, Manhattan, Minkowski, Scalar,
    SquaredEuclidean,
};
use proptest::prelude::*;

/// Widens an `f32` row to `f64` (exact).
fn widen(row: &[f32]) -> Vec<f64> {
    row.iter().map(|&c| c as f64).collect()
}

/// The dimension-scaled relative accumulation bound for a `dim`-term `f32`
/// sum: each of the `O(dim)` additions and the per-term arithmetic
/// contribute at most a few units of `2^-24` relative error.  The constant
/// is generous (8× the first-order bound) so the test pins the *scaling*,
/// not the exact constant.
fn accumulation_tol(dim: usize) -> f64 {
    8.0 * (dim as f64 + 2.0) * f32::UNIT_ROUNDOFF
}

/// Strategy: a pair of same-dimension `f32` coordinate rows, dim in 1..=64.
/// Drawn as `f64` and rounded, exactly like the generators emit them.
fn row_pair32() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (1usize..=64).prop_flat_map(|dim| {
        (
            prop::collection::vec(-1000.0f64..1000.0, dim),
            prop::collection::vec(-1000.0f64..1000.0, dim),
        )
            .prop_map(|(a, b)| {
                (
                    a.into_iter().map(|c| c as f32).collect(),
                    b.into_iter().map(|c| c as f32).collect(),
                )
            })
    })
}

/// Strategy: a flat f32 cloud of n points (2..=64) with dim in 1..=64.
fn flat_cloud32() -> impl Strategy<Value = FlatPoints<f32>> {
    (1usize..=64, 2usize..=64).prop_flat_map(|(dim, n)| {
        prop::collection::vec(-1000.0f64..1000.0, dim * n).prop_map(move |coords| {
            let narrow: Vec<f32> = coords.into_iter().map(|c| c as f32).collect();
            FlatPoints::from_coords(narrow, dim).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `dist2` at f32 stays within the dimension-scaled accumulation bound
    /// of the f64 kernel on the widened rows; `dist2_wide` equals it
    /// exactly.
    #[test]
    fn f32_dist2_within_dimension_scaled_bound_of_f64_reference(
        (a, b) in row_pair32()
    ) {
        let (aw, bw) = (widen(&a), widen(&b));
        let reference = dist2(&aw, &bw);
        let narrow = dist2(&a, &b) as f64;
        let tol = accumulation_tol(a.len()) * reference.max(f64::MIN_POSITIVE);
        prop_assert!(
            (narrow - reference).abs() <= tol,
            "dim {}: |{narrow} - {reference}| > {tol}", a.len()
        );
        // The certification kernel is exactly the f64 kernel on widened rows.
        prop_assert_eq!(dist2_wide(&a, &b), reference);
    }

    /// Every metric's f32 surrogate and exact slice distance stay within
    /// the dimension-scaled bound of the f64 scalar reference on widened
    /// rows (dims 1–64).
    #[test]
    fn f32_metrics_within_dimension_scaled_bound_of_f64_reference(
        (a, b) in row_pair32(),
        p in 1.0f64..4.0,
    ) {
        let (aw, bw) = (widen(&a), widen(&b));
        let dim = a.len();

        // `distance_slices` is defined as f64-widened: must match the f64
        // instantiation exactly, for every metric.
        macro_rules! exact {
            ($m:expr) => {
                prop_assert_eq!(
                    $m.distance_slices(&a, &b),
                    $m.distance_slices(&aw, &bw),
                    "{}: wide slice distance must be precision-independent",
                    $m.name()
                );
            };
        }
        exact!(Euclidean);
        exact!(SquaredEuclidean);
        exact!(Manhattan);
        exact!(Chebyshev);
        exact!(Hamming);

        // The f32 comparison-space surrogates carry only accumulation error
        // relative to the f64 surrogate of the same rounded inputs.
        macro_rules! close_surrogate {
            ($m:expr, $extra:expr) => {{
                let narrow: f32 = $m.surrogate(&a, &b);
                let reference: f64 = $m.surrogate(&aw, &bw);
                let tol = $extra * accumulation_tol(dim) * reference.abs().max(f64::MIN_POSITIVE);
                prop_assert!(
                    (narrow as f64 - reference).abs() <= tol,
                    "{} dim {dim}: |{narrow} - {reference}| > {tol}", $m.name()
                );
            }};
        }
        close_surrogate!(Euclidean, 1.0);
        close_surrogate!(SquaredEuclidean, 1.0);
        close_surrogate!(Manhattan, 1.0);
        close_surrogate!(Chebyshev, 1.0);
        // powf is correctly rounded only to a few ulp; allow extra headroom.
        close_surrogate!(Minkowski::new(p), 16.0);
        // Hamming counts are integers below 2^24: exactly representable.
        let h32: f32 = Hamming.surrogate(&a, &b);
        let h64: f64 = Hamming.surrogate(&aw, &bw);
        prop_assert_eq!(h32 as f64, h64);
    }

    /// The fused relax/nearest kernels at f32 agree with a per-pair f64
    /// reference on widened rows, to the dimension-scaled bound, for every
    /// point of the cloud.
    #[test]
    fn f32_scan_kernels_track_the_f64_reference(flat in flat_cloud32()) {
        let dim = flat.dim();
        let wide = flat.to_precision::<f64>();
        let centers: Vec<usize> = (0..flat.len()).step_by(3).collect();
        let subset: Vec<usize> = (0..flat.len()).collect();

        let mut near32 = vec![f32::INFINITY; flat.len()];
        let mut near64 = vec![f64::INFINITY; flat.len()];
        for &c in &centers {
            relax_nearest(&flat, &subset, c, &mut near32);
            relax_nearest(&wide, &subset, c, &mut near64);
        }
        for i in 0..flat.len() {
            let narrow = nearest2(&flat, flat.row(i), &centers) as f64;
            let reference = nearest2(&wide, wide.row(i), &centers);
            let tol = accumulation_tol(dim) * reference.max(f64::MIN_POSITIVE);
            prop_assert!(
                (narrow - reference).abs() <= tol,
                "nearest2 point {i}: |{narrow} - {reference}| > {tol}"
            );
            // The relax recurrences may pick a different (near-tied) center
            // per precision, but the *values* stay within the bound of each
            // other because both are mins over pairwise values within tol.
            let tol_relax = tol.max(accumulation_tol(dim) * near64[i].max(f64::MIN_POSITIVE));
            prop_assert!(
                (near32[i] as f64 - near64[i]).abs() <= tol_relax,
                "relax point {i}: |{} - {}| > {tol_relax}", near32[i], near64[i]
            );
        }
    }
}
