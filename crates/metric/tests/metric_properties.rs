//! Property-based tests for the metric substrate: every distance we claim is
//! a metric must satisfy the metric axioms, the packed distance matrix must
//! agree with on-demand evaluation, and bounding boxes must bound.

use kcenter_metric::{
    BoundingBox, Chebyshev, Distance, DistanceMatrix, Euclidean, Hamming, Manhattan, MetricSpace,
    Minkowski, Point, VecSpace,
};
use proptest::prelude::*;

/// Strategy for a point in a fixed dimension with bounded coordinates.
fn point(dim: usize) -> impl Strategy<Value = Point> {
    prop::collection::vec(-1000.0f64..1000.0, dim).prop_map(Point::new)
}

/// Strategy for a small point cloud with a shared dimension.
fn cloud() -> impl Strategy<Value = Vec<Point>> {
    (1usize..5).prop_flat_map(|dim| prop::collection::vec(point(dim), 2..24))
}

fn check_metric_axioms<D: Distance>(dist: &D, a: &Point, b: &Point, c: &Point) {
    let dab = dist.distance(a, b);
    let dba = dist.distance(b, a);
    let dac = dist.distance(a, c);
    let dcb = dist.distance(c, b);
    // Non-negativity and identity.
    assert!(dab >= 0.0, "{} produced a negative distance", dist.name());
    assert!(
        dist.distance(a, a).abs() < 1e-9,
        "{} violates identity",
        dist.name()
    );
    // Symmetry.
    assert!(
        (dab - dba).abs() <= 1e-9 * (1.0 + dab.abs()),
        "{} violates symmetry",
        dist.name()
    );
    // Triangle inequality with a relative tolerance for floating point.
    assert!(
        dab <= dac + dcb + 1e-7 * (1.0 + dab.abs()),
        "{} violates the triangle inequality: {} > {} + {}",
        dist.name(),
        dab,
        dac,
        dcb
    );
}

proptest! {
    #[test]
    fn euclidean_is_a_metric((a, b, c) in (1usize..6).prop_flat_map(|d| (point(d), point(d), point(d)))) {
        check_metric_axioms(&Euclidean, &a, &b, &c);
    }

    #[test]
    fn manhattan_is_a_metric((a, b, c) in (1usize..6).prop_flat_map(|d| (point(d), point(d), point(d)))) {
        check_metric_axioms(&Manhattan, &a, &b, &c);
    }

    #[test]
    fn chebyshev_is_a_metric((a, b, c) in (1usize..6).prop_flat_map(|d| (point(d), point(d), point(d)))) {
        check_metric_axioms(&Chebyshev, &a, &b, &c);
    }

    #[test]
    fn hamming_is_a_metric((a, b, c) in (1usize..6).prop_flat_map(|d| (point(d), point(d), point(d)))) {
        check_metric_axioms(&Hamming, &a, &b, &c);
    }

    #[test]
    fn minkowski_is_a_metric(
        p in 1.0f64..6.0,
        (a, b, c) in (1usize..5).prop_flat_map(|d| (point(d), point(d), point(d)))
    ) {
        check_metric_axioms(&Minkowski::new(p), &a, &b, &c);
    }

    #[test]
    fn matrix_agrees_with_on_demand(points in cloud()) {
        let space = VecSpace::new(points);
        let matrix = space.to_matrix();
        for i in 0..space.len() {
            for j in 0..space.len() {
                prop_assert!((matrix.get(i, j) - space.distance(i, j)).abs() < 1e-9);
            }
        }
        prop_assert!(matrix.verify_metric(1e-6).is_ok());
    }

    #[test]
    fn diameter_bounds_every_pairwise_distance(points in cloud()) {
        let space = VecSpace::new(points);
        let matrix = DistanceMatrix::<f64>::from_space(&space);
        let diam = matrix.diameter();
        for i in 0..space.len() {
            for j in 0..space.len() {
                prop_assert!(space.distance(i, j) <= diam + 1e-9);
            }
        }
    }

    #[test]
    fn bounding_box_contains_all_points_and_bounds_distances(points in cloud()) {
        let bbox = BoundingBox::of(&points).unwrap().unwrap();
        let space = VecSpace::new(points.clone());
        for p in &points {
            prop_assert!(bbox.contains(p));
        }
        let diag = bbox.diagonal();
        for i in 0..space.len() {
            for j in 0..space.len() {
                prop_assert!(space.distance(i, j) <= diag + 1e-9);
            }
        }
    }

    #[test]
    fn distance_to_set_is_minimum(points in cloud(), from in 0usize..24, subset_mask in prop::collection::vec(any::<bool>(), 24)) {
        let space = VecSpace::new(points);
        let from = from % space.len();
        let subset: Vec<usize> = (0..space.len()).filter(|&i| subset_mask.get(i).copied().unwrap_or(false)).collect();
        let expected = subset.iter().map(|&t| space.distance(from, t)).fold(f64::INFINITY, f64::min);
        let actual = space.distance_to_set(from, &subset);
        if subset.is_empty() {
            prop_assert!(actual.is_infinite());
        } else {
            prop_assert!((actual - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn par_distances_match_sequential(points in cloud()) {
        let space = VecSpace::new(points);
        let all: Vec<usize> = (0..space.len()).collect();
        let targets: Vec<usize> = all.iter().copied().step_by(2).collect();
        let par = space.par_distances_to_set(&all, &targets);
        for (i, &id) in all.iter().enumerate() {
            prop_assert!((par[i] - space.distance_to_set(id, &targets)).abs() < 1e-12);
        }
    }
}
