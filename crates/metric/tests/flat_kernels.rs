//! Property tests pinning the flat-kernel rewrite to the scalar reference
//! implementations: the SoA kernels must agree with naive per-point
//! distance code to 1e-12 on random points (all metrics, dimensions 1–64),
//! and every `par_*` variant must match its sequential twin bit-for-bit.

use kcenter_metric::kernel::{
    argmax, dist2, nearest2, nearest2_bounded, par_argmax, par_relax_nearest, relax_nearest,
};
use kcenter_metric::{
    Chebyshev, Distance, Euclidean, FlatPoints, Hamming, Manhattan, MetricSpace, Minkowski, Point,
    SquaredEuclidean, VecSpace,
};
use proptest::prelude::*;

/// Naive scalar references, written exactly like the pre-flat `Point`-based
/// implementations: one pass, single accumulator, `sqrt` per call.
mod reference {
    pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
        squared_euclidean(a, b).sqrt()
    }

    pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
    }

    pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum()
    }

    pub fn chebyshev(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    pub fn minkowski(p: f64, a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs().powf(p))
            .sum::<f64>()
            .powf(1.0 / p)
    }

    pub fn hamming(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b.iter()).filter(|(x, y)| x != y).count() as f64
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()))
}

/// Strategy: a pair of same-dimension coordinate rows, dim in 1..=64.
fn row_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1usize..=64).prop_flat_map(|dim| {
        (
            prop::collection::vec(-1000.0f64..1000.0, dim),
            prop::collection::vec(-1000.0f64..1000.0, dim),
        )
    })
}

/// Strategy: a flat cloud of n points (2..=96) with dim in 1..=64.
fn flat_cloud() -> impl Strategy<Value = FlatPoints> {
    (1usize..=64, 2usize..=96).prop_flat_map(|(dim, n)| {
        prop::collection::vec(-1000.0f64..1000.0, dim * n)
            .prop_map(move |coords| FlatPoints::from_coords(coords, dim).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dist2_kernel_agrees_with_scalar_reference((a, b) in row_pair()) {
        prop_assert!(close(dist2(&a, &b), reference::squared_euclidean(&a, &b)));
    }

    #[test]
    fn slice_distances_agree_with_scalar_references(
        (a, b) in row_pair(),
        p in 1.0f64..6.0,
    ) {
        prop_assert!(close(Euclidean.distance_slices(&a, &b), reference::euclidean(&a, &b)));
        prop_assert!(close(
            SquaredEuclidean.distance_slices(&a, &b),
            reference::squared_euclidean(&a, &b)
        ));
        prop_assert!(close(Manhattan.distance_slices(&a, &b), reference::manhattan(&a, &b)));
        prop_assert!(close(Chebyshev.distance_slices(&a, &b), reference::chebyshev(&a, &b)));
        prop_assert!(close(
            Minkowski::new(p).distance_slices(&a, &b),
            reference::minkowski(p, &a, &b)
        ));
        prop_assert!(close(Hamming.distance_slices(&a, &b), reference::hamming(&a, &b)));
    }

    #[test]
    fn slice_distance_matches_point_distance((a, b) in row_pair()) {
        let (pa, pb) = (Point::new(a.clone()), Point::new(b.clone()));
        prop_assert_eq!(Euclidean.distance(&pa, &pb), Euclidean.distance_slices(&a, &b));
        prop_assert_eq!(Manhattan.distance(&pa, &pb), Manhattan.distance_slices(&a, &b));
    }

    #[test]
    fn surrogates_round_trip_to_distances((a, b) in row_pair(), p in 1.0f64..6.0) {
        // The scalar-generic methods make `Distance` non-dyn-compatible,
        // so enumerate the metrics statically.
        macro_rules! check {
            ($m:expr) => {{
                let m = $m;
                let d = m.distance_slices(&a, &b);
                let s: f64 = m.surrogate(&a, &b);
                prop_assert!(
                    close(m.surrogate_to_distance(s), d),
                    "{}: surrogate {} does not round-trip to {}", m.name(), s, d
                );
                let w = m.wide_surrogate(&a, &b);
                prop_assert!(
                    close(m.wide_surrogate_to_distance(w), d),
                    "{}: wide surrogate {} does not round-trip to {}", m.name(), w, d
                );
                let back: f64 = m.distance_to_surrogate(d);
                prop_assert!(
                    close(m.surrogate_to_distance(back), d),
                    "{}: distance_to_surrogate is not inverse", m.name()
                );
            }};
        }
        check!(Euclidean);
        check!(SquaredEuclidean);
        check!(Manhattan);
        check!(Chebyshev);
        check!(Minkowski::new(p));
        check!(Hamming);
    }

    #[test]
    fn nearest_and_bounded_kernels_match_naive_minimum(flat in flat_cloud()) {
        let centers: Vec<usize> = (0..flat.len()).step_by(3).collect();
        for i in 0..flat.len() {
            let naive = centers
                .iter()
                .map(|&c| reference::squared_euclidean(flat.row(i), flat.row(c)))
                .fold(f64::INFINITY, f64::min);
            let fast = nearest2(&flat, flat.row(i), &centers);
            prop_assert!(close(fast, naive));
            // A threshold below the true minimum must not trigger an exit.
            let bounded = nearest2_bounded(&flat, flat.row(i), &centers, fast * 0.5 - 1.0);
            prop_assert_eq!(bounded, fast);
        }
    }

    #[test]
    fn relax_kernel_matches_pairwise_scan(flat in flat_cloud()) {
        let subset: Vec<usize> = (0..flat.len()).collect();
        let centers: Vec<usize> = (0..flat.len()).step_by(5).collect();
        let mut nearest = vec![f64::INFINITY; subset.len()];
        for &c in &centers {
            relax_nearest(&flat, &subset, c, &mut nearest);
        }
        for (pos, &p) in subset.iter().enumerate() {
            let naive = centers
                .iter()
                .map(|&c| dist2(flat.row(p), flat.row(c)))
                .fold(f64::INFINITY, f64::min);
            prop_assert_eq!(nearest[pos], naive);
        }
    }

    #[test]
    fn space_cmp_scans_agree_with_distance_scans(flat in flat_cloud()) {
        let space = VecSpace::from_flat(flat);
        let centers: Vec<usize> = (0..space.len()).step_by(4).collect();
        for p in 0..space.len() {
            let via_cmp = space.cmp_to_distance(space.cmp_distance_to_set(p, &centers));
            let direct = centers
                .iter()
                .map(|&c| space.distance(p, c))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(close(via_cmp, direct));
            // Early exit below the true minimum returns the exact minimum.
            let bounded = space.distance_to_set_bounded(p, &centers, direct * 0.5 - 1.0);
            prop_assert!(close(bounded, direct));
        }
    }
}

/// Deterministic large clouds for the bit-for-bit parallel/sequential
/// comparisons (the `par_*` kernels only fork above their cutoff, so these
/// need to be big).
fn big_cloud(n: usize, dim: usize, seed: u64) -> FlatPoints {
    let coords: Vec<f64> = (0..n * dim)
        .map(|i| {
            let v = (i as u64)
                .wrapping_add(seed)
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((v >> 30) % 100_000) as f64 / 50.0 - 1_000.0
        })
        .collect();
    FlatPoints::from_coords(coords, dim).unwrap()
}

#[test]
fn par_relax_matches_sequential_bit_for_bit_above_cutoff() {
    for (n, dim) in [(40_000usize, 2usize), (36_000, 16)] {
        let flat = big_cloud(n, dim, 7);
        let space = VecSpace::from_flat(flat);
        let subset: Vec<usize> = (0..n).collect();
        let mut seq = vec![f64::INFINITY; n];
        let mut par = vec![f64::INFINITY; n];
        for center in [0usize, n / 2, n - 1] {
            space.relax_nearest(&subset, center, &mut seq);
            space.par_relax_nearest(&subset, center, &mut par);
        }
        assert_eq!(seq, par, "n={n} dim={dim}");
    }
}

#[test]
fn par_kernel_helpers_match_sequential_bit_for_bit() {
    let flat = big_cloud(40_000, 4, 3);
    let subset: Vec<usize> = (0..flat.len()).collect();
    let mut seq = vec![f64::INFINITY; subset.len()];
    let mut par = seq.clone();
    for center in [11usize, 29_000] {
        relax_nearest(&flat, &subset, center, &mut seq);
        par_relax_nearest(&flat, &subset, center, &mut par);
    }
    assert_eq!(seq, par);
    assert_eq!(argmax(&seq), par_argmax(&par));
}

#[test]
fn par_distances_to_set_matches_sequential_bit_for_bit() {
    let space = VecSpace::from_flat(big_cloud(40_000, 3, 11));
    let from: Vec<usize> = (0..space.len()).collect();
    let to: Vec<usize> = (0..space.len()).step_by(1_000).collect();
    let par = space.par_distances_to_set(&from, &to);
    let seq: Vec<f64> = from
        .iter()
        .map(|&f| space.distance_to_set(f, &to))
        .collect();
    assert_eq!(par, seq);
}

// ---------------------------------------------------------------------------
// Kernel-backend (SIMD dispatch) parity: the width-pinned backends must
// uphold the scalar kernels' argmax tie-breaking contract, and track the
// scalar values within accumulation-order rounding on general inputs.
// ---------------------------------------------------------------------------

mod backend_parity {
    use super::*;
    use kcenter_metric::kernel::simd::available_backends;
    use kcenter_metric::kernel::{relax_max_ids_coords_with, relax_max_rows_coords_with};

    /// An instance engineered to produce *exact* distance ties: integer
    /// coordinates in a range where every squared distance (and every
    /// partial sum, in any accumulation order, fused or not) is exactly
    /// representable at both `f32` and `f64`, plus 2–4 planted copies of a
    /// strictly-farthest row.  Yields `(dim, base coords, dup positions)`.
    fn tie_instance() -> impl Strategy<Value = (usize, Vec<i32>, Vec<usize>)> {
        (0usize..2, 12usize..60).prop_flat_map(|(dsel, n)| {
            let dim = if dsel == 0 { 8 } else { 16 };
            (
                Just(dim),
                prop::collection::vec(-20i32..=20, dim * n),
                (0usize..n, 1usize..5).prop_map(move |(start, stride)| {
                    let mut dups = vec![start, (start + stride) % n, (start + 2 * stride) % n];
                    dups.sort_unstable();
                    dups.dedup();
                    dups
                }),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Satellite contract: on inputs with exact distance ties, every
        /// available backend returns the identical `(index, value)` pair —
        /// the lowest planted position — at both `f32` and `f64`.
        #[test]
        fn fused_backends_agree_bitwise_on_engineered_ties(
            (dim, base, dups) in tie_instance()
        ) {
            let n = base.len() / dim;
            let mut coords: Vec<f64> = base.iter().map(|&c| c as f64).collect();
            // The planted farthest row: strictly farther from the origin
            // than any base row (dim·100² vs at most dim·20²), duplicated
            // at every position in `dups` — an exact multi-way tie.
            let far: Vec<f64> = (0..dim).map(|j| 100.0 + j as f64).collect();
            for &r in &dups {
                coords[r * dim..(r + 1) * dim].copy_from_slice(&far);
            }
            let coords32: Vec<f32> = coords.iter().map(|&c| c as f32).collect();
            let center = vec![0.0f64; dim];
            let center32 = vec![0.0f32; dim];
            let want_pos = dups[0];

            let mut results64 = Vec::new();
            let mut results32 = Vec::new();
            for backend in available_backends() {
                let mut near64 = vec![f64::INFINITY; n];
                let got64 =
                    relax_max_rows_coords_with(backend, &coords, dim, &center, &mut near64);
                let mut near32 = vec![f32::INFINITY; n];
                let got32 =
                    relax_max_rows_coords_with(backend, &coords32, dim, &center32, &mut near32);
                prop_assert_eq!(got64.0, want_pos, "{} f64: lowest dup must win", backend);
                prop_assert_eq!(got32.0, want_pos, "{} f32: lowest dup must win", backend);
                prop_assert_eq!(got64.1, got32.1 as f64, "{}: exact at both widths", backend);
                results64.push((got64, near64));
                results32.push((got32, near32));
            }
            // All backends agree bitwise on these exact inputs — values,
            // winner, and the whole relaxed nearest array.
            for (r64, r32) in results64.iter().zip(&results32).skip(1) {
                prop_assert_eq!(r64, &results64[0]);
                prop_assert_eq!(r32, &results32[0]);
            }

            // The id-subset kernel upholds the same rule: iterate rows in
            // reverse, so the tie resolves to the *position* of the first
            // duplicate encountered in subset order, identically everywhere.
            let subset: Vec<usize> = (0..n).rev().collect();
            let mut ids_results = Vec::new();
            for backend in available_backends() {
                let mut near = vec![f64::INFINITY; n];
                let got = relax_max_ids_coords_with(
                    backend, &coords, dim, &subset, &center, &mut near,
                );
                prop_assert_eq!(subset[got.0], *dups.last().unwrap(), "{}", backend);
                ids_results.push((got, near));
            }
            for r in ids_results.iter().skip(1) {
                prop_assert_eq!(r, &ids_results[0]);
            }
        }

        /// On general (continuous) inputs every backend stays within
        /// accumulation-order rounding of the scalar kernel, and its
        /// reported winner is consistent with its own relaxed array.
        #[test]
        fn fused_backends_track_the_scalar_kernel_on_random_inputs(
            (dim, coords) in (8usize..=32).prop_flat_map(|dim| {
                (Just(dim), prop::collection::vec(-1000.0f64..1000.0, dim * 24))
            })
        ) {
            let n = coords.len() / dim;
            let center = vec![1.0f64; dim];
            let mut scalar_near = vec![f64::INFINITY; n];
            let scalar = relax_max_rows_coords_with(
                kcenter_metric::KernelBackend::Scalar,
                &coords,
                dim,
                &center,
                &mut scalar_near,
            );
            for backend in available_backends() {
                let mut near = vec![f64::INFINITY; n];
                let got = relax_max_rows_coords_with(backend, &coords, dim, &center, &mut near);
                prop_assert!(close(got.1, scalar.1), "{}: {} vs {}", backend, got.1, scalar.1);
                prop_assert_eq!(got.1, near[got.0], "{}: winner must match its slot", backend);
                for (slot, scalar_slot) in near.iter().zip(&scalar_near) {
                    prop_assert!(close(*slot, *scalar_slot), "{}", backend);
                }
            }
        }
    }
}
