//! Property-based tests for the MapReduce substrate: partitioners must
//! cover their input exactly once within the size bound, and the simulated
//! cluster's accounting must be internally consistent.

use kcenter_mapreduce::{partition, ClusterConfig, SimulatedCluster};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_partitioner_covers_input_exactly_once(
        items in prop::collection::vec(any::<u32>(), 0..400),
        parts in 1usize..60,
        seed in any::<u64>()
    ) {
        for strategy in ["chunks", "round_robin", "random"] {
            let out = match strategy {
                "chunks" => partition::chunks(&items, parts),
                "round_robin" => partition::round_robin(&items, parts),
                _ => partition::random(&items, parts, seed),
            };
            // Exactly-once coverage (as multisets).
            let mut flattened: Vec<u32> = out.iter().flatten().copied().collect();
            let mut expected = items.clone();
            flattened.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(&flattened, &expected, "strategy {} lost or duplicated items", strategy);
            // Never more partitions than requested, never an empty partition.
            prop_assert!(out.len() <= parts);
            prop_assert!(out.iter().all(|p| !p.is_empty()));
            // Size bound the MRG analysis relies on.
            let bound = partition::max_partition_size(items.len(), parts);
            prop_assert!(out.iter().all(|p| p.len() <= bound), "strategy {} exceeded ceil(n/m)", strategy);
        }
    }

    #[test]
    fn cluster_round_preserves_all_items_through_identity_reduce(
        items in prop::collection::vec(any::<u32>(), 1..300),
        machines in 1usize..50
    ) {
        let config = ClusterConfig::new(machines, items.len().max(1));
        let mut cluster = SimulatedCluster::new(config);
        let parts = partition::chunks(&items, machines);
        let outputs = cluster
            .run_round("identity", &parts, |_, xs| xs.to_vec(), |v| v.len())
            .unwrap();
        let mut flattened: Vec<u32> = outputs.into_iter().flatten().collect();
        let mut expected = items.clone();
        flattened.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(flattened, expected);

        let stats = cluster.stats();
        prop_assert_eq!(stats.num_rounds(), 1);
        let round = &stats.rounds()[0];
        prop_assert_eq!(round.items_in, items.len());
        prop_assert_eq!(round.items_out, items.len());
        prop_assert!(round.machines_used <= machines);
        prop_assert!(round.simulated_time <= round.sequential_time + std::time::Duration::from_micros(1));
    }

    #[test]
    fn capacity_enforcement_matches_partition_sizes(
        n in 1usize..500,
        machines in 1usize..20,
        capacity in 1usize..100
    ) {
        let items: Vec<u32> = (0..n as u32).collect();
        let parts = partition::chunks(&items, machines);
        let max_part = parts.iter().map(Vec::len).max().unwrap_or(0);
        let mut cluster = SimulatedCluster::new(ClusterConfig::new(machines, capacity));
        let result = cluster.run_round("check", &parts, |_, xs| xs.len(), |_| 0);
        if max_part <= capacity {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn rounds_needed_is_consistent_with_two_round_predicate(
        n in 1usize..2_000_000,
        k in 1usize..500,
        machines in 1usize..100,
        capacity in 1usize..100_000
    ) {
        let config = ClusterConfig::new(machines, capacity);
        if config.allows_two_round(n, k) {
            let rounds = config.rounds_needed(n, k);
            prop_assert!(rounds.is_some());
            prop_assert!(rounds.unwrap() <= 2, "two-round precondition met but {} rounds predicted", rounds.unwrap());
        }
    }
}
