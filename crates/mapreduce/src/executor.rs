//! Executor selection: how a [`crate::cluster::Cluster`] actually runs
//! the machines of a round.
//!
//! The paper simulates its parallel machines sequentially and charges each
//! round the slowest machine's processing time.  [`Executor::Simulated`]
//! reproduces exactly that: machines run one after another on the calling
//! thread, and only the *accounting* is parallel.  [`Executor::Threads`]
//! runs the same machines as `std::thread::scope` tasks (through the
//! real-threaded rayon stand-in) with a fixed worker budget.
//!
//! # Determinism contract
//!
//! The two executors are **output-invariant**: reducers are pure functions
//! of their partitions, attempt waves run in ascending partition order, and
//! the threaded fan-out merges results at their partition positions — so a
//! round returns bit-identical outputs under either executor, at any
//! thread count.  The determinism tuple of the workspace is therefore
//! `(seed, precision, kernel, assign)` with the executor explicitly *not*
//! a member.  Only the timing columns differ: the simulated clock
//! (`simulated_time`, charged backoff, straggler inflation) is identical
//! by construction, while `wall_time` measures whatever really elapsed.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Environment variable selecting the executor
/// (`KCENTER_EXECUTOR={simulated,threads}`); the CLI `--executor` flag
/// takes precedence.
pub const EXECUTOR_ENV: &str = "KCENTER_EXECUTOR";

/// Environment variable pinning the worker-thread budget
/// (`KCENTER_THREADS=N`, `N ≥ 1`); the CLI `--threads` flag takes
/// precedence.  Also consulted by the chunked `par_*` metric kernels via
/// the rayon stand-in's thread override.
pub const THREADS_ENV: &str = "KCENTER_THREADS";

/// How a cluster executes the machines of a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Executor {
    /// The paper's mode: machines run sequentially on the calling thread;
    /// parallelism exists only in the per-round accounting.
    #[default]
    Simulated,
    /// Machines run concurrently as `std::thread::scope` tasks on a fixed
    /// worker budget, merged in ascending partition order.
    Threads {
        /// Worker-thread budget for each wave (at least 1).
        threads: usize,
    },
}

impl Executor {
    /// A threaded executor with the given worker budget (clamped to ≥ 1).
    pub fn threads(threads: usize) -> Executor {
        Executor::Threads {
            threads: threads.max(1),
        }
    }

    /// A threaded executor sized to the host's available parallelism.
    pub fn host_threads() -> Executor {
        Executor::threads(host_parallelism())
    }

    /// Short name for reports (`simulated` | `threads`).
    pub fn name(self) -> &'static str {
        match self {
            Executor::Simulated => "simulated",
            Executor::Threads { .. } => "threads",
        }
    }

    /// Worker-thread budget of this executor (1 for simulated).
    pub fn thread_count(self) -> usize {
        match self {
            Executor::Simulated => 1,
            Executor::Threads { threads } => threads.max(1),
        }
    }

    /// Whether rounds fan out over real threads.
    pub fn is_threaded(self) -> bool {
        matches!(self, Executor::Threads { .. })
    }
}

impl fmt::Display for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Executor::Simulated => write!(f, "simulated"),
            Executor::Threads { threads } => write!(f, "threads(x{threads})"),
        }
    }
}

/// Installs `threads` as the process-wide worker budget of the rayon
/// stand-in, so the chunked `par_*` distance kernels honour the same
/// `--threads` / [`THREADS_ENV`] budget as the cluster executor.  The
/// override only caps worker counts — `par_*` results are order-invariant
/// reductions, so outputs do not change.
pub fn install_thread_budget(threads: usize) {
    rayon::set_num_threads(threads.max(1));
}

/// The host's available parallelism (≥ 1).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// An executor *request* before the thread budget is resolved — what the
/// CLI `--executor` flag and [`EXECUTOR_ENV`] carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorChoice {
    /// Request the sequential simulated executor.
    #[default]
    Simulated,
    /// Request the threaded executor; the budget comes from `--threads` /
    /// [`THREADS_ENV`] / the host's available parallelism, in that order.
    Threads,
}

impl ExecutorChoice {
    /// Parses an executor name (`simulated` | `threads`, case-insensitive).
    pub fn parse(name: &str) -> Result<ExecutorChoice, ExecutorSelectError> {
        match name.to_ascii_lowercase().as_str() {
            "simulated" => Ok(ExecutorChoice::Simulated),
            "threads" => Ok(ExecutorChoice::Threads),
            _ => Err(ExecutorSelectError::UnknownExecutor { value: name.into() }),
        }
    }

    /// Reads the request from [`EXECUTOR_ENV`]; unset means `simulated`.
    pub fn from_env() -> Result<ExecutorChoice, ExecutorSelectError> {
        match std::env::var(EXECUTOR_ENV) {
            Ok(value) => ExecutorChoice::parse(&value),
            Err(_) => Ok(ExecutorChoice::Simulated),
        }
    }

    /// Resolves the request to a concrete executor.  `threads` is the
    /// already-resolved budget request (flag or env); `None` falls back to
    /// the host's available parallelism for the threaded executor.
    pub fn resolve(self, threads: Option<usize>) -> Executor {
        match self {
            ExecutorChoice::Simulated => Executor::Simulated,
            ExecutorChoice::Threads => match threads {
                Some(n) => Executor::threads(n),
                None => Executor::host_threads(),
            },
        }
    }
}

/// Reads the worker-thread budget from [`THREADS_ENV`]; unset means `None`.
pub fn threads_from_env() -> Result<Option<usize>, ExecutorSelectError> {
    match std::env::var(THREADS_ENV) {
        Ok(value) => match value.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(ExecutorSelectError::InvalidThreads { value }),
        },
        Err(_) => Ok(None),
    }
}

/// Why an executor request could not be honoured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutorSelectError {
    /// The name is not one of `simulated` / `threads`.
    UnknownExecutor {
        /// The rejected value.
        value: String,
    },
    /// The thread budget is not a positive integer.
    InvalidThreads {
        /// The rejected value.
        value: String,
    },
}

impl fmt::Display for ExecutorSelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutorSelectError::UnknownExecutor { value } => {
                write!(f, "unknown executor '{value}' (expected simulated|threads)")
            }
            ExecutorSelectError::InvalidThreads { value } => {
                write!(
                    f,
                    "invalid thread count '{value}' (expected an integer >= 1)"
                )
            }
        }
    }
}

impl std::error::Error for ExecutorSelectError {}

/// Runs one wave of machine executions under `executor`, returning the
/// results in input order.
///
/// Simulated: a plain sequential loop on the calling thread — the honest
/// version of the paper's "simulate the parallel machines sequentially".
/// Threads: `std::thread::scope` fan-out with the executor's worker
/// budget; results land at their item's position, so the merge order is
/// the ascending input order no matter which worker finishes first.
pub(crate) fn run_wave<T, R, F>(executor: Executor, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    match executor {
        Executor::Simulated => items.into_iter().map(f).collect(),
        Executor::Threads { threads } => rayon::parallel_map_with_threads(items, threads, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_simulated_mode() {
        assert_eq!(Executor::default(), Executor::Simulated);
        assert_eq!(Executor::Simulated.thread_count(), 1);
        assert!(!Executor::Simulated.is_threaded());
    }

    #[test]
    fn thread_budget_is_clamped_to_one() {
        assert_eq!(Executor::threads(0), Executor::Threads { threads: 1 });
        assert_eq!(Executor::threads(4).thread_count(), 4);
        assert!(Executor::threads(4).is_threaded());
        assert!(Executor::host_threads().thread_count() >= 1);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(Executor::Simulated.to_string(), "simulated");
        assert_eq!(Executor::threads(3).to_string(), "threads(x3)");
        assert_eq!(Executor::Simulated.name(), "simulated");
        assert_eq!(Executor::threads(3).name(), "threads");
    }

    #[test]
    fn choice_parses_names_case_insensitively() {
        assert_eq!(
            ExecutorChoice::parse("Simulated").unwrap(),
            ExecutorChoice::Simulated
        );
        assert_eq!(
            ExecutorChoice::parse("THREADS").unwrap(),
            ExecutorChoice::Threads
        );
        let err = ExecutorChoice::parse("gpu").unwrap_err();
        assert!(err.to_string().contains("gpu"), "{err}");
    }

    #[test]
    fn choice_resolution_prefers_the_explicit_budget() {
        assert_eq!(
            ExecutorChoice::Simulated.resolve(Some(8)),
            Executor::Simulated
        );
        assert_eq!(
            ExecutorChoice::Threads.resolve(Some(8)),
            Executor::threads(8)
        );
        assert_eq!(
            ExecutorChoice::Threads.resolve(None),
            Executor::host_threads()
        );
    }

    #[test]
    fn waves_merge_in_ascending_input_order_on_both_executors() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * 7 + 1).collect();
        for executor in [
            Executor::Simulated,
            Executor::threads(1),
            Executor::threads(3),
            Executor::threads(16),
        ] {
            let out = run_wave(executor, items.clone(), |x| x * 7 + 1);
            assert_eq!(out, expected, "{executor}");
        }
    }
}
