//! Per-round and per-job cost accounting.
//!
//! The paper charges a MapReduce round the processing time of its slowest
//! simulated machine and does not charge data movement; we record both that
//! quantity ([`RoundStats::simulated_time`]) and the real wall-clock time of
//! the parallel execution, plus item counts so shuffle volume can be
//! inspected even though it is not charged.

use crate::executor::Executor;
use crate::faults::{FaultLog, FaultSummary};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Accounting for a single MapReduce round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// 0-based index of the round within its job.
    pub round: usize,
    /// Human-readable label (e.g. `"MRG round 1: parallel GON"`).
    pub label: String,
    /// Number of reducers (simulated machines) that received input.
    pub machines_used: usize,
    /// Total number of input items across all reducers.
    pub items_in: usize,
    /// Largest number of input items on any single reducer.
    pub max_machine_items: usize,
    /// Total number of output items emitted by all reducers (the shuffle
    /// volume of the next round).
    pub items_out: usize,
    /// The paper's charged time for the round: the maximum processing time
    /// over the simulated machines.
    pub simulated_time: Duration,
    /// Sum of all per-machine processing times (what a fully sequential
    /// simulation would have cost).
    pub sequential_time: Duration,
    /// Real elapsed wall-clock time of the round's execution — concurrent
    /// elapsed time under [`Executor::Threads`], sequential elapsed time
    /// under [`Executor::Simulated`].
    pub wall_time: Duration,
    /// The executor the round ran on.  Outputs are executor-invariant;
    /// this records which mode produced the `wall_time` column.
    pub executor: Executor,
    /// Named work counters reported by the round's reducers — e.g. the
    /// coreset weights round records how many (point, representative)
    /// pairs its early-exit certification pruned.  Empty for rounds that
    /// report nothing.
    pub counters: Vec<(String, u64)>,
    /// Total reducer executions in the round, including retries and
    /// speculative copies (equals `machines_used` in a fault-free round).
    pub attempts: usize,
    /// What the fault-injection machinery did during the round (empty when
    /// nothing fault-related happened).
    pub faults: FaultLog,
}

impl RoundStats {
    /// The value of the named counter, if this round recorded it.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Number of re-executions after failed attempts in this round.
    pub fn retries(&self) -> usize {
        self.faults.retries()
    }
}

/// Accounting for a complete multi-round job.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobStats {
    rounds: Vec<RoundStats>,
}

impl JobStats {
    /// Creates an empty job record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a finished round.
    ///
    /// The round is renumbered to its position in *this* job: `extend`
    /// relies on that when sub-job rounds are merged, and the cluster stamps
    /// the same index on the stats it pushes (a cluster's job and its stats
    /// agree on indices, so `RoundStats::round` always matches the round
    /// index fault plans address).
    pub fn push(&mut self, mut round: RoundStats) {
        round.round = self.rounds.len();
        self.rounds.push(round);
    }

    /// All recorded rounds in execution order.
    pub fn rounds(&self) -> &[RoundStats] {
        &self.rounds
    }

    /// Number of MapReduce rounds executed.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total simulated time: the paper's runtime metric, i.e. the sum over
    /// rounds of the slowest machine's processing time.
    pub fn simulated_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.simulated_time).sum()
    }

    /// Total per-machine processing time over all rounds (the cost of a
    /// fully sequential simulation).
    pub fn sequential_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.sequential_time).sum()
    }

    /// Total real wall-clock time over all rounds.
    pub fn wall_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.wall_time).sum()
    }

    /// Total number of items shuffled into reducers over all rounds.
    pub fn total_items_in(&self) -> usize {
        self.rounds.iter().map(|r| r.items_in).sum()
    }

    /// Merges another job's rounds after this one's (used when an algorithm
    /// is composed of sub-jobs, e.g. EIM's sampling loop followed by the
    /// final clean-up round).
    pub fn extend(&mut self, other: JobStats) {
        for r in other.rounds {
            self.push(r);
        }
    }

    /// The rounds whose label starts with `prefix`, in execution order.
    ///
    /// Multi-phase jobs (e.g. "build a coreset once, then solve many cells
    /// on it") tag each phase's rounds with a label prefix; this is how a
    /// caller verifies, from the accounting alone, how many rounds a phase
    /// actually spent — the "was the coreset really built only once?" check.
    pub fn rounds_labelled<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a RoundStats> {
        self.rounds
            .iter()
            .filter(move |r| r.label.starts_with(prefix))
    }

    /// Number of rounds whose label starts with `prefix`.
    pub fn num_rounds_labelled(&self, prefix: &str) -> usize {
        self.rounds_labelled(prefix).count()
    }

    /// Total simulated time of the rounds whose label starts with `prefix`
    /// (the paper's charged time, restricted to one phase of a job).
    pub fn simulated_time_labelled(&self, prefix: &str) -> Duration {
        self.rounds_labelled(prefix).map(|r| r.simulated_time).sum()
    }

    /// Sum of the named counter over all rounds that recorded it — how a
    /// caller reads e.g. the coreset weights round's pruned-pair count out
    /// of the job accounting.
    pub fn counter(&self, name: &str) -> u64 {
        self.rounds.iter().filter_map(|r| r.counter(name)).sum()
    }

    /// Fault-accounting totals over all rounds: attempts, retries, crashes,
    /// stragglers, speculation and dropped shards, plus the job's total
    /// simulated and wall-clock time labelled with the executor that ran
    /// it.  All-zero (apart from `attempts == Σ machines_used` and the
    /// time columns) for a fault-free job.
    pub fn fault_summary(&self) -> FaultSummary {
        let mut s = FaultSummary::default();
        for r in &self.rounds {
            s.attempts += r.attempts;
            s.retries += r.faults.retries();
            s.crashes += r.faults.crashes();
            s.rejections += r.faults.rejections();
            s.stragglers += r.faults.stragglers();
            s.speculations_launched += r.faults.speculations_launched();
            s.speculations_won += r.faults.speculations_won();
            s.shards_dropped += r.faults.shards_dropped();
            // A job's rounds all run on one cluster, hence one executor;
            // record the one that actually executed (the last round wins
            // if a caller ever mixes them).
            s.executor = r.executor;
        }
        s.simulated_time = self.simulated_time();
        s.wall_time = self.wall_time();
        s
    }

    /// Attaches (or accumulates into) a named counter on the most recently
    /// executed round.
    ///
    /// # Panics
    ///
    /// Panics if no round has been recorded yet.
    pub fn record_counter(&mut self, name: &str, value: u64) {
        let round = self
            .rounds
            .last_mut()
            .expect("record_counter needs at least one recorded round");
        match round.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += value,
            None => round.counters.push((name.to_string(), value)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(label: &str, sim_ms: u64, seq_ms: u64, items: usize) -> RoundStats {
        RoundStats {
            round: 0,
            label: label.to_string(),
            machines_used: 4,
            items_in: items,
            max_machine_items: items / 4 + 1,
            items_out: items / 10,
            simulated_time: Duration::from_millis(sim_ms),
            sequential_time: Duration::from_millis(seq_ms),
            wall_time: Duration::from_millis(sim_ms + 1),
            executor: Executor::Simulated,
            counters: Vec::new(),
            attempts: 4,
            faults: FaultLog::new(),
        }
    }

    #[test]
    fn push_renumbers_rounds_sequentially() {
        let mut job = JobStats::new();
        job.push(round("a", 10, 40, 100));
        job.push(round("b", 20, 60, 50));
        assert_eq!(job.num_rounds(), 2);
        assert_eq!(job.rounds()[0].round, 0);
        assert_eq!(job.rounds()[1].round, 1);
        assert_eq!(job.rounds()[1].label, "b");
    }

    #[test]
    fn totals_sum_over_rounds() {
        let mut job = JobStats::new();
        job.push(round("a", 10, 40, 100));
        job.push(round("b", 20, 60, 50));
        assert_eq!(job.simulated_time(), Duration::from_millis(30));
        assert_eq!(job.sequential_time(), Duration::from_millis(100));
        assert_eq!(job.wall_time(), Duration::from_millis(32));
        assert_eq!(job.total_items_in(), 150);
    }

    #[test]
    fn empty_job_has_zero_totals() {
        let job = JobStats::new();
        assert_eq!(job.num_rounds(), 0);
        assert_eq!(job.simulated_time(), Duration::ZERO);
        assert_eq!(job.total_items_in(), 0);
    }

    #[test]
    fn labelled_accessors_slice_one_phase_out_of_a_job() {
        let mut job = JobStats::new();
        job.push(round("coreset round 1: local gonzalez", 10, 10, 100));
        job.push(round("coreset round 2: merge", 5, 5, 20));
        job.push(round("sweep solve k=2", 3, 3, 10));
        job.push(round("sweep solve k=4", 4, 4, 10));
        assert_eq!(job.num_rounds_labelled("coreset"), 2);
        assert_eq!(job.num_rounds_labelled("sweep solve"), 2);
        assert_eq!(job.num_rounds_labelled("missing"), 0);
        assert_eq!(
            job.simulated_time_labelled("coreset"),
            Duration::from_millis(15)
        );
        assert_eq!(
            job.simulated_time_labelled("sweep solve"),
            Duration::from_millis(7)
        );
        let labels: Vec<&str> = job
            .rounds_labelled("sweep")
            .map(|r| r.label.as_str())
            .collect();
        assert_eq!(labels, vec!["sweep solve k=2", "sweep solve k=4"]);
    }

    #[test]
    fn counters_accumulate_per_round_and_sum_per_job() {
        let mut job = JobStats::new();
        job.push(round("weights", 10, 10, 100));
        job.record_counter("pruned pairs", 40);
        job.record_counter("pruned pairs", 2);
        job.push(round("weights again", 10, 10, 100));
        job.record_counter("pruned pairs", 8);
        job.record_counter("other", 1);
        assert_eq!(job.rounds()[0].counter("pruned pairs"), Some(42));
        assert_eq!(job.rounds()[0].counter("other"), None);
        assert_eq!(job.rounds()[1].counter("pruned pairs"), Some(8));
        assert_eq!(job.counter("pruned pairs"), 50);
        assert_eq!(job.counter("other"), 1);
        assert_eq!(job.counter("missing"), 0);
    }

    #[test]
    #[should_panic(expected = "at least one recorded round")]
    fn record_counter_needs_a_round() {
        JobStats::new().record_counter("x", 1);
    }

    #[test]
    fn fault_summary_totals_over_rounds() {
        use crate::faults::FaultEvent;
        let mut job = JobStats::new();
        let mut r = round("a", 10, 10, 100);
        r.attempts = 6;
        r.faults.push(FaultEvent::Crashed {
            machine: 1,
            attempt: 0,
        });
        r.faults.push(FaultEvent::Retried {
            machine: 1,
            attempt: 1,
            backoff: Duration::from_millis(10),
        });
        job.push(r);
        job.push(round("b", 5, 5, 50));
        let s = job.fault_summary();
        assert_eq!(s.attempts, 10);
        assert_eq!(s.crashes, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.stragglers, 0);
        assert!(!s.is_quiet());
        assert_eq!(job.rounds()[0].retries(), 1);
        // The summary also carries the job's time totals and executor.
        assert_eq!(s.executor, Executor::Simulated);
        assert_eq!(s.simulated_time, Duration::from_millis(15));
        assert_eq!(s.wall_time, Duration::from_millis(17));
    }

    #[test]
    fn extend_appends_and_renumbers() {
        let mut a = JobStats::new();
        a.push(round("a", 10, 10, 10));
        let mut b = JobStats::new();
        b.push(round("b", 5, 5, 5));
        b.push(round("c", 5, 5, 5));
        a.extend(b);
        assert_eq!(a.num_rounds(), 3);
        assert_eq!(a.rounds()[2].round, 2);
        assert_eq!(a.simulated_time(), Duration::from_millis(20));
    }
}
