//! Deterministic fault injection, retry policies, and fault accounting for
//! the simulated cluster.
//!
//! The paper's cost model charges each round the slowest machine's time but
//! assumes every reducer always succeeds.  Real clusters lose machines and
//! grow stragglers mid-round; this module makes those failure modes a
//! first-class, *reproducible* part of the simulation:
//!
//! * a [`FaultPlan`] decides, for every `(round, machine, attempt)` triple,
//!   whether that reducer execution crashes, straggles (its charged
//!   simulated time is multiplied), or returns detectably-corrupt output.
//!   Plans are either an explicit schedule or generated statelessly from a
//!   seed, and both forms serialise to a small text format so a failing run
//!   can be reproduced exactly;
//! * a [`FaultPolicy`] tells the cluster how to react: how many attempts a
//!   partition gets, how much (simulated) backoff is charged between
//!   attempts, and whether stragglers get a speculative copy;
//! * a [`FaultLog`] records what actually happened in a round, and lands in
//!   the round's `RoundStats` next to the usual time accounting.
//!
//! # The determinism contract
//!
//! Fault injection must never change *what* a job computes, only *whether
//! and when* it computes it:
//!
//! * Plan lookups are **stateless**: an explicit schedule is a pure table,
//!   and a seeded plan hashes `(seed, round, machine, attempt)` — no RNG
//!   state threads through execution, so the same plan gives the same
//!   faults regardless of scheduling order.
//! * Reducers are pure functions of their partition, and failed partitions
//!   are re-executed on the *same* input in fixed partition-index order, so
//!   whenever every partition eventually succeeds within its attempt
//!   budget, the round's outputs are **bit-identical** to the fault-free
//!   run — retries and backoff only show up in the time accounting and the
//!   fault log.
//! * Straggler speculation races two executions of the same pure reducer,
//!   so either winner carries the identical output; the tie-break (the
//!   original wins on equal completion) is fixed so even the *log* is
//!   deterministic given the measured times.  (Which machines get
//!   speculative copies depends on measured wall times and is therefore
//!   not deterministic across hosts — but the outputs are.)
//! * Only **degrade mode** (see `SimulatedCluster::run_round_degradable`)
//!   changes results: a partition that exhausts its attempts is dropped and
//!   the caller receives an explicit [`DroppedShard`] record, so any
//!   certificate it reports can be restated over the surviving subset —
//!   never silently claimed over the full input.

use crate::executor::Executor;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// What goes wrong with one reducer execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The attempt crashes: its output is lost, its processing time is
    /// still charged (the machine worked, then died).
    Crash,
    /// The attempt straggles: its charged simulated time is multiplied by
    /// `factor` (the output is still produced).
    Straggle {
        /// Multiplier applied to the attempt's charged time (≥ 1 in any
        /// sensible plan, but not enforced).
        factor: f64,
    },
    /// The attempt returns detectably-corrupt output: the round's output
    /// validator rejects it, the time is charged, and the partition is
    /// retried like a crash.
    Corrupt,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Crash => write!(f, "crash"),
            FaultKind::Straggle { factor } => write!(f, "straggle x{factor}"),
            FaultKind::Corrupt => write!(f, "corrupt"),
        }
    }
}

/// One entry of an explicit fault schedule: reducer `machine` at round
/// `round` (0-based index within the cluster's job), attempt `attempt`
/// (0-based; retries and speculative copies consume successive indices)
/// suffers `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// 0-based round index within the cluster's job (the `RoundStats::round`
    /// the execution will be recorded under).
    pub round: usize,
    /// 0-based reducer/machine index within the round.
    pub machine: usize,
    /// 0-based attempt index on that machine (0 = first execution).
    pub attempt: usize,
    /// The injected fault.
    pub kind: FaultKind,
}

/// Per-attempt fault probabilities of a seeded plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability that an attempt crashes.
    pub crash: f64,
    /// Probability that an attempt straggles.
    pub straggle: f64,
    /// Probability that an attempt returns corrupt output.
    pub corrupt: f64,
    /// Slowdown factor applied to straggling attempts.
    pub straggle_factor: f64,
}

impl Default for FaultRates {
    /// Mild chaos: 10% crashes, 10% stragglers (4× slowdown), 5% corrupt
    /// outputs per attempt — enough to exercise every retry path within a
    /// default 3-attempt budget while keeping exhaustion unlikely.
    fn default() -> Self {
        Self {
            crash: 0.10,
            straggle: 0.10,
            corrupt: 0.05,
            straggle_factor: 4.0,
        }
    }
}

/// A reproducible schedule of injected faults.
///
/// Lookup is stateless (see the module docs), so a plan can be shared
/// across threads and consulted in any order.  Both forms serialise to the
/// text format of [`FaultPlan::to_text`] / [`FaultPlan::parse_text`] for
/// `--fault-plan` files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultPlan {
    /// An explicit schedule: exactly the listed `(round, machine, attempt)`
    /// executions fault, everything else succeeds.
    Explicit(Vec<ScheduledFault>),
    /// Statelessly derived faults: each `(round, machine, attempt)` triple
    /// is hashed together with `seed` into a uniform variate that is
    /// compared against the rates.
    Seeded {
        /// The plan seed (reproduces the exact same faults every run).
        seed: u64,
        /// The per-attempt fault probabilities.
        rates: FaultRates,
    },
}

impl FaultPlan {
    /// An explicit schedule.
    pub fn explicit(faults: Vec<ScheduledFault>) -> Self {
        FaultPlan::Explicit(faults)
    }

    /// A seeded plan with the [`FaultRates::default`] probabilities.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan::Seeded {
            seed,
            rates: FaultRates::default(),
        }
    }

    /// A seeded plan with explicit probabilities.
    pub fn seeded_with_rates(seed: u64, rates: FaultRates) -> Self {
        FaultPlan::Seeded { seed, rates }
    }

    /// The fault injected into reducer `machine`'s attempt `attempt` of
    /// round `round`, if any.  Pure and stateless.
    pub fn fault_for(&self, round: usize, machine: usize, attempt: usize) -> Option<FaultKind> {
        match self {
            FaultPlan::Explicit(faults) => faults
                .iter()
                .find(|f| f.round == round && f.machine == machine && f.attempt == attempt)
                .map(|f| f.kind),
            FaultPlan::Seeded { seed, rates } => {
                let u = unit_variate(*seed, round, machine, attempt);
                if u < rates.crash {
                    Some(FaultKind::Crash)
                } else if u < rates.crash + rates.corrupt {
                    Some(FaultKind::Corrupt)
                } else if u < rates.crash + rates.corrupt + rates.straggle {
                    Some(FaultKind::Straggle {
                        factor: rates.straggle_factor,
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Serialises the plan to the line-oriented text format accepted by
    /// [`FaultPlan::parse_text`] (the `--fault-plan` file format).
    pub fn to_text(&self) -> String {
        let mut out = String::from("# kcenter fault plan v1\n");
        match self {
            FaultPlan::Seeded { seed, rates } => {
                out.push_str(&format!(
                    "seeded seed={seed} crash={} straggle={} corrupt={} straggle-factor={}\n",
                    rates.crash, rates.straggle, rates.corrupt, rates.straggle_factor
                ));
            }
            FaultPlan::Explicit(faults) => {
                for f in faults {
                    let kind = match f.kind {
                        FaultKind::Crash => "kind=crash".to_string(),
                        FaultKind::Corrupt => "kind=corrupt".to_string(),
                        FaultKind::Straggle { factor } => {
                            format!("kind=straggle factor={factor}")
                        }
                    };
                    out.push_str(&format!(
                        "fault round={} machine={} attempt={} {kind}\n",
                        f.round, f.machine, f.attempt
                    ));
                }
            }
        }
        out
    }

    /// Parses the text format produced by [`FaultPlan::to_text`]:
    ///
    /// ```text
    /// # kcenter fault plan v1
    /// seeded seed=42 crash=0.1 straggle=0.1 corrupt=0.05 straggle-factor=4
    /// ```
    ///
    /// or an explicit schedule, one `fault` line per injected fault:
    ///
    /// ```text
    /// fault round=0 machine=1 attempt=0 kind=crash
    /// fault round=2 machine=0 attempt=1 kind=straggle factor=3.5
    /// ```
    ///
    /// Blank lines and `#` comments are ignored.  A file may contain either
    /// one `seeded` line or any number of `fault` lines, not both.
    pub fn parse_text(text: &str) -> Result<Self, FaultPlanParseError> {
        let mut seeded: Option<FaultPlan> = None;
        let mut faults: Vec<ScheduledFault> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: String| FaultPlanParseError {
                line: lineno + 1,
                message: msg,
            };
            let mut words = line.split_whitespace();
            let head = words.next().unwrap_or_default();
            let pairs = parse_pairs(words).map_err(&err)?;
            let get = |key: &str| -> Result<&str, FaultPlanParseError> {
                pairs
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.as_str())
                    .ok_or_else(|| err(format!("missing {key}= field")))
            };
            match head {
                "seeded" => {
                    if seeded.is_some() || !faults.is_empty() {
                        return Err(err(
                            "a plan holds one seeded line or fault lines, not both/several".into(),
                        ));
                    }
                    let mut rates = FaultRates::default();
                    let seed: u64 = parse_field(get("seed")?, "seed").map_err(&err)?;
                    for (k, v) in &pairs {
                        match k.as_str() {
                            "seed" => {}
                            "crash" => rates.crash = parse_field(v, "crash").map_err(&err)?,
                            "straggle" => {
                                rates.straggle = parse_field(v, "straggle").map_err(&err)?
                            }
                            "corrupt" => rates.corrupt = parse_field(v, "corrupt").map_err(&err)?,
                            "straggle-factor" => {
                                rates.straggle_factor =
                                    parse_field(v, "straggle-factor").map_err(&err)?
                            }
                            other => return Err(err(format!("unknown field {other:?}"))),
                        }
                    }
                    seeded = Some(FaultPlan::Seeded { seed, rates });
                }
                "fault" => {
                    if seeded.is_some() {
                        return Err(err(
                            "a plan holds one seeded line or fault lines, not both".into()
                        ));
                    }
                    let kind = match get("kind")? {
                        "crash" => FaultKind::Crash,
                        "corrupt" => FaultKind::Corrupt,
                        "straggle" => FaultKind::Straggle {
                            factor: match pairs.iter().find(|(k, _)| k == "factor") {
                                Some((_, v)) => parse_field(v, "factor").map_err(&err)?,
                                None => FaultRates::default().straggle_factor,
                            },
                        },
                        other => {
                            return Err(err(format!(
                                "unknown kind {other:?} (expected crash, straggle or corrupt)"
                            )))
                        }
                    };
                    faults.push(ScheduledFault {
                        round: parse_field(get("round")?, "round").map_err(&err)?,
                        machine: parse_field(get("machine")?, "machine").map_err(&err)?,
                        attempt: parse_field(get("attempt")?, "attempt").map_err(&err)?,
                        kind,
                    });
                }
                other => return Err(err(format!("unknown directive {other:?}"))),
            }
        }
        match seeded {
            Some(plan) => Ok(plan),
            None if !faults.is_empty() => Ok(FaultPlan::Explicit(faults)),
            None => Err(FaultPlanParseError {
                line: 0,
                message: "empty plan: expected a seeded line or fault lines".into(),
            }),
        }
    }
}

fn parse_pairs<'a, I: Iterator<Item = &'a str>>(words: I) -> Result<Vec<(String, String)>, String> {
    words
        .map(|w| {
            w.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .ok_or_else(|| format!("expected key=value, found {w:?}"))
        })
        .collect()
}

fn parse_field<T: std::str::FromStr>(value: &str, key: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value {value:?} for {key}"))
}

/// A fault-plan file could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanParseError {
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for FaultPlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "fault plan: {}", self.message)
        } else {
            write!(f, "fault plan line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for FaultPlanParseError {}

/// Stateless hash of `(seed, round, machine, attempt)` to a uniform variate
/// in `[0, 1)` — SplitMix64-style finalisers over the mixed-in coordinates.
fn unit_variate(seed: u64, round: usize, machine: usize, attempt: usize) -> f64 {
    let mut z = seed
        ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (machine as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ (attempt as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // 53 uniform bits -> [0, 1).
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Simulated backoff charged between attempts of a failed partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Backoff {
    /// Delay charged before the first retry.
    pub base: Duration,
    /// Whether the delay doubles on every further retry (capped at 2^20×).
    pub exponential: bool,
}

impl Backoff {
    /// No backoff at all: retries are charged only their execution time.
    pub const NONE: Backoff = Backoff {
        base: Duration::ZERO,
        exponential: false,
    };

    /// The delay charged before retry number `retry` (1-based: the first
    /// retry is 1).  Zero for `retry == 0` (the initial attempt).
    pub fn delay(&self, retry: usize) -> Duration {
        if retry == 0 || self.base.is_zero() {
            return Duration::ZERO;
        }
        if self.exponential {
            self.base.saturating_mul(1u32 << (retry - 1).min(20) as u32)
        } else {
            self.base
        }
    }
}

impl Default for Backoff {
    /// 10 ms base, exponential — visible next to millisecond-scale round
    /// times without dominating them.
    fn default() -> Self {
        Self {
            base: Duration::from_millis(10),
            exponential: true,
        }
    }
}

/// Straggler speculation: when a reducer's charged time exceeds
/// `threshold ×` the round median (over machines that completed), a
/// speculative copy is launched and the first finisher wins, with the
/// original winning ties.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Speculation {
    /// Multiple of the round-median charged time beyond which a reducer is
    /// considered a straggler (must exceed 1 to be useful).
    pub threshold: f64,
}

impl Default for Speculation {
    fn default() -> Self {
        Self { threshold: 2.0 }
    }
}

/// How the cluster reacts to faults: attempt budget, backoff, speculation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPolicy {
    /// Maximum executions a partition gets per round (≥ 1); a partition
    /// that fails `max_attempts` times is dead for the round.
    pub max_attempts: usize,
    /// Simulated backoff charged between attempts.
    pub backoff: Backoff,
    /// Straggler speculation, if enabled.
    pub speculation: Option<Speculation>,
}

impl Default for FaultPolicy {
    /// Three attempts with the default exponential backoff, no speculation.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff: Backoff::default(),
            speculation: None,
        }
    }
}

impl FaultPolicy {
    /// A policy with the given attempt budget and the other defaults.
    pub fn with_max_attempts(max_attempts: usize) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            ..Self::default()
        }
    }
}

/// Everything the cluster needs to simulate failures: the plan (what goes
/// wrong), the policy (how to react), and whether exhausted partitions may
/// be dropped (degrade mode) instead of failing the round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// The injected-fault schedule.
    pub plan: FaultPlan,
    /// Retry/backoff/speculation policy.
    pub policy: FaultPolicy,
    /// Whether round-running *drivers* (MRG, EIM, the coreset builders) may
    /// drop a partition that exhausts its attempts and continue on the
    /// survivors with an explicitly partial certificate.  Without this, an
    /// exhausted partition fails the job with
    /// `MapReduceError::RoundFailed`.
    pub degrade: bool,
}

impl FaultConfig {
    /// A fault configuration with the default policy and no degrade mode.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            policy: FaultPolicy::default(),
            degrade: false,
        }
    }

    /// Replaces the policy.
    pub fn with_policy(mut self, policy: FaultPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables degrade mode.
    pub fn with_degrade(mut self, degrade: bool) -> Self {
        self.degrade = degrade;
        self
    }
}

/// Why a reducer attempt (or a whole partition) failed.  This is the
/// `source()` of `MapReduceError::RoundFailed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultCause {
    /// The reducer crashed (injected [`FaultKind::Crash`]).
    Crashed,
    /// The reducer returned output the validator flagged as corrupt
    /// (injected [`FaultKind::Corrupt`]).
    CorruptOutput,
    /// The caller-supplied output validator rejected a genuine output.
    ValidationFailed,
}

impl fmt::Display for FaultCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultCause::Crashed => write!(f, "the reducer crashed"),
            FaultCause::CorruptOutput => write!(f, "the reducer returned corrupt output"),
            FaultCause::ValidationFailed => {
                write!(f, "the reducer's output failed validation")
            }
        }
    }
}

impl std::error::Error for FaultCause {}

/// One event recorded by the fault-handling machinery during a round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// An attempt crashed.
    Crashed {
        /// Machine index.
        machine: usize,
        /// 0-based attempt index.
        attempt: usize,
    },
    /// An attempt straggled: its charged time was multiplied by `factor`.
    Straggled {
        /// Machine index.
        machine: usize,
        /// 0-based attempt index.
        attempt: usize,
        /// The slowdown factor that was applied.
        factor: f64,
    },
    /// An attempt's output was rejected (injected corruption or a
    /// caller-validator failure — see `cause`).
    Rejected {
        /// Machine index.
        machine: usize,
        /// 0-based attempt index.
        attempt: usize,
        /// Why the output was rejected.
        cause: FaultCause,
    },
    /// A failed partition was re-executed after charged backoff.
    Retried {
        /// Machine index.
        machine: usize,
        /// 0-based index of the new attempt.
        attempt: usize,
        /// Simulated backoff charged before this attempt.
        backoff: Duration,
    },
    /// A speculative copy of a straggling reducer was launched.
    SpeculationLaunched {
        /// Machine index.
        machine: usize,
        /// 0-based attempt index consumed by the speculative copy.
        attempt: usize,
    },
    /// The speculative copy finished before the original and its (bit-
    /// identical) result was taken.
    SpeculationWon {
        /// Machine index.
        machine: usize,
        /// Attempt index of the winning speculative copy.
        attempt: usize,
    },
    /// Degrade mode dropped a partition that exhausted its attempts.
    ShardDropped {
        /// Machine index.
        machine: usize,
        /// Number of attempts that were made.
        attempts: usize,
        /// Number of input items that were lost with the shard.
        items: usize,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::Crashed { machine, attempt } => {
                write!(f, "machine {machine} attempt {attempt}: crashed")
            }
            FaultEvent::Straggled {
                machine,
                attempt,
                factor,
            } => write!(
                f,
                "machine {machine} attempt {attempt}: straggled x{factor}"
            ),
            FaultEvent::Rejected {
                machine,
                attempt,
                cause,
            } => write!(f, "machine {machine} attempt {attempt}: rejected ({cause})"),
            FaultEvent::Retried {
                machine,
                attempt,
                backoff,
            } => write!(
                f,
                "machine {machine}: retry as attempt {attempt} after {backoff:?} backoff"
            ),
            FaultEvent::SpeculationLaunched { machine, attempt } => {
                write!(
                    f,
                    "machine {machine}: speculative copy as attempt {attempt}"
                )
            }
            FaultEvent::SpeculationWon { machine, attempt } => {
                write!(f, "machine {machine}: speculative attempt {attempt} won")
            }
            FaultEvent::ShardDropped {
                machine,
                attempts,
                items,
            } => write!(
                f,
                "machine {machine}: shard of {items} items dropped after {attempts} attempts"
            ),
        }
    }
}

/// The fault events of one round, in deterministic order (attempt waves,
/// machines ascending within each wave; speculation events after the waves;
/// shard drops last).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// Appends all events of another log.
    pub fn extend(&mut self, other: FaultLog) {
        self.events.extend(other.events);
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether nothing fault-related happened in the round.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of crashed attempts.
    pub fn crashes(&self) -> usize {
        self.count(|e| matches!(e, FaultEvent::Crashed { .. }))
    }

    /// Number of rejected outputs (injected corruption + validator
    /// failures).
    pub fn rejections(&self) -> usize {
        self.count(|e| matches!(e, FaultEvent::Rejected { .. }))
    }

    /// Number of straggling attempts.
    pub fn stragglers(&self) -> usize {
        self.count(|e| matches!(e, FaultEvent::Straggled { .. }))
    }

    /// Number of retries (re-executions after a failed attempt).
    pub fn retries(&self) -> usize {
        self.count(|e| matches!(e, FaultEvent::Retried { .. }))
    }

    /// Number of speculative copies launched.
    pub fn speculations_launched(&self) -> usize {
        self.count(|e| matches!(e, FaultEvent::SpeculationLaunched { .. }))
    }

    /// Number of speculative copies that won their race.
    pub fn speculations_won(&self) -> usize {
        self.count(|e| matches!(e, FaultEvent::SpeculationWon { .. }))
    }

    /// Number of shards dropped by degrade mode.
    pub fn shards_dropped(&self) -> usize {
        self.count(|e| matches!(e, FaultEvent::ShardDropped { .. }))
    }

    fn count(&self, pred: impl Fn(&FaultEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

/// A partition that exhausted its attempt budget and was dropped by degrade
/// mode — the provenance record a partial certificate carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DroppedShard {
    /// Round index (within the cluster's job) in which the shard died.
    pub round: usize,
    /// The machine that held the shard.
    pub machine: usize,
    /// Number of attempts that were made before giving up.
    pub attempts: usize,
    /// Number of round-input items lost with the shard.
    pub items: usize,
    /// The failure cause of the final attempt.
    pub cause: FaultCause,
}

impl fmt::Display for DroppedShard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `round=`/`machine=` are the 0-based fault-plan coordinates, so
        // a dropped shard can be looked up in (or turned into) a plan
        // file directly; human-facing round listings are 1-based.
        write!(
            f,
            "round={} machine={}: {} items dropped after {} attempts ({})",
            self.round, self.machine, self.items, self.attempts, self.cause
        )
    }
}

/// Summary of a degraded (partial-coverage) run: how many of the source
/// points the reported certificate actually covers, and which shards were
/// lost.  `covered_points < total_points` means every reported radius is a
/// statement about the surviving subset only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedRun {
    /// Number of source points the certificate covers.
    pub covered_points: usize,
    /// Number of source points the job started with.
    pub total_points: usize,
    /// The shards that were dropped, in the order they died.
    pub dropped_shards: Vec<DroppedShard>,
}

impl DegradedRun {
    /// Fraction of the source points the certificate covers, in `[0, 1]`.
    pub fn coverage_fraction(&self) -> f64 {
        if self.total_points == 0 {
            return 1.0;
        }
        self.covered_points as f64 / self.total_points as f64
    }
}

/// Fault-accounting totals over a whole job (all rounds' logs summed) —
/// what the CLI prints next to the round accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Total reducer executions, including retries and speculative copies.
    pub attempts: usize,
    /// Re-executions after failed attempts.
    pub retries: usize,
    /// Crashed attempts.
    pub crashes: usize,
    /// Rejected outputs (injected corruption + validator failures).
    pub rejections: usize,
    /// Straggling attempts.
    pub stragglers: usize,
    /// Speculative copies launched.
    pub speculations_launched: usize,
    /// Speculative copies that won their race.
    pub speculations_won: usize,
    /// Shards dropped by degrade mode.
    pub shards_dropped: usize,
    /// The job's total simulated time (the paper's charged metric).
    pub simulated_time: Duration,
    /// The job's total real elapsed time — concurrent elapsed under the
    /// threaded executor, sequential elapsed under the simulated one.
    pub wall_time: Duration,
    /// The executor the job ran on (labels the `wall_time` column).
    pub executor: Executor,
}

impl FaultSummary {
    /// Whether any fault-related activity happened at all beyond the plain
    /// one-attempt-per-machine executions.
    pub fn is_quiet(&self) -> bool {
        self.retries == 0
            && self.crashes == 0
            && self.rejections == 0
            && self.stragglers == 0
            && self.speculations_launched == 0
            && self.shards_dropped == 0
    }
}

impl fmt::Display for FaultSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} attempts, {} retries, {} crashes, {} rejected outputs, {} stragglers, \
             {} speculative copies ({} won), {} shards dropped; \
             simulated {:?}, wall {:?} on {}",
            self.attempts,
            self.retries,
            self.crashes,
            self.rejections,
            self.stragglers,
            self.speculations_launched,
            self.speculations_won,
            self.shards_dropped,
            self.simulated_time,
            self.wall_time,
            self.executor
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plan_hits_exactly_the_scheduled_triples() {
        let plan = FaultPlan::explicit(vec![
            ScheduledFault {
                round: 1,
                machine: 2,
                attempt: 0,
                kind: FaultKind::Crash,
            },
            ScheduledFault {
                round: 1,
                machine: 2,
                attempt: 1,
                kind: FaultKind::Corrupt,
            },
        ]);
        assert_eq!(plan.fault_for(1, 2, 0), Some(FaultKind::Crash));
        assert_eq!(plan.fault_for(1, 2, 1), Some(FaultKind::Corrupt));
        assert_eq!(plan.fault_for(1, 2, 2), None);
        assert_eq!(plan.fault_for(0, 2, 0), None);
        assert_eq!(plan.fault_for(1, 1, 0), None);
    }

    #[test]
    fn seeded_plan_is_stateless_and_seed_sensitive() {
        let plan = FaultPlan::seeded(7);
        let a = plan.fault_for(3, 4, 0);
        // Same triple, same answer, in any order and any number of times.
        for _ in 0..3 {
            assert_eq!(plan.fault_for(3, 4, 0), a);
        }
        // Some triple must differ under another seed (rates are ~25%).
        let other = FaultPlan::seeded(8);
        let differs = (0..200).any(|m| plan.fault_for(0, m, 0) != other.fault_for(0, m, 0));
        assert!(differs, "different seeds should schedule different faults");
    }

    #[test]
    fn seeded_rates_are_roughly_respected() {
        let rates = FaultRates {
            crash: 0.2,
            straggle: 0.2,
            corrupt: 0.1,
            straggle_factor: 3.0,
        };
        let plan = FaultPlan::seeded_with_rates(1, rates);
        let n = 20_000;
        let mut crash = 0;
        let mut straggle = 0;
        let mut corrupt = 0;
        for m in 0..n {
            match plan.fault_for(0, m, 0) {
                Some(FaultKind::Crash) => crash += 1,
                Some(FaultKind::Straggle { factor }) => {
                    assert_eq!(factor, 3.0);
                    straggle += 1;
                }
                Some(FaultKind::Corrupt) => corrupt += 1,
                None => {}
            }
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!(
            (frac(crash) - 0.2).abs() < 0.02,
            "crash rate {}",
            frac(crash)
        );
        assert!(
            (frac(straggle) - 0.2).abs() < 0.02,
            "straggle rate {}",
            frac(straggle)
        );
        assert!(
            (frac(corrupt) - 0.1).abs() < 0.02,
            "corrupt rate {}",
            frac(corrupt)
        );
    }

    #[test]
    fn text_round_trip_preserves_both_plan_forms() {
        let seeded = FaultPlan::seeded_with_rates(
            99,
            FaultRates {
                crash: 0.25,
                straggle: 0.5,
                corrupt: 0.125,
                straggle_factor: 8.0,
            },
        );
        assert_eq!(FaultPlan::parse_text(&seeded.to_text()).unwrap(), seeded);

        let explicit = FaultPlan::explicit(vec![
            ScheduledFault {
                round: 0,
                machine: 1,
                attempt: 0,
                kind: FaultKind::Crash,
            },
            ScheduledFault {
                round: 2,
                machine: 0,
                attempt: 1,
                kind: FaultKind::Straggle { factor: 3.5 },
            },
            ScheduledFault {
                round: 3,
                machine: 4,
                attempt: 0,
                kind: FaultKind::Corrupt,
            },
        ]);
        assert_eq!(
            FaultPlan::parse_text(&explicit.to_text()).unwrap(),
            explicit
        );
    }

    #[test]
    fn parse_rejects_malformed_plans() {
        for (text, fragment) in [
            ("", "empty plan"),
            ("gibberish", "unknown directive"),
            ("seeded crash=0.1", "missing seed="),
            ("seeded seed=abc", "invalid value"),
            ("fault round=0 machine=0 attempt=0", "missing kind="),
            (
                "fault round=0 machine=0 attempt=0 kind=melt",
                "unknown kind",
            ),
            (
                "fault round=x machine=0 attempt=0 kind=crash",
                "invalid value",
            ),
            (
                "seeded seed=1\nfault round=0 machine=0 attempt=0 kind=crash",
                "not both",
            ),
            ("seeded seed=1 novelty=2", "unknown field"),
        ] {
            let err = FaultPlan::parse_text(text).unwrap_err();
            assert!(
                err.to_string().contains(fragment),
                "text {text:?}: error {err} should mention {fragment:?}"
            );
        }
    }

    #[test]
    fn backoff_schedules() {
        let fixed = Backoff {
            base: Duration::from_millis(5),
            exponential: false,
        };
        assert_eq!(fixed.delay(0), Duration::ZERO);
        assert_eq!(fixed.delay(1), Duration::from_millis(5));
        assert_eq!(fixed.delay(4), Duration::from_millis(5));

        let expo = Backoff {
            base: Duration::from_millis(5),
            exponential: true,
        };
        assert_eq!(expo.delay(1), Duration::from_millis(5));
        assert_eq!(expo.delay(2), Duration::from_millis(10));
        assert_eq!(expo.delay(4), Duration::from_millis(40));

        assert_eq!(Backoff::NONE.delay(3), Duration::ZERO);
    }

    #[test]
    fn fault_log_counts_by_kind() {
        let mut log = FaultLog::new();
        log.push(FaultEvent::Crashed {
            machine: 0,
            attempt: 0,
        });
        log.push(FaultEvent::Retried {
            machine: 0,
            attempt: 1,
            backoff: Duration::from_millis(10),
        });
        log.push(FaultEvent::Straggled {
            machine: 1,
            attempt: 0,
            factor: 4.0,
        });
        log.push(FaultEvent::Rejected {
            machine: 2,
            attempt: 0,
            cause: FaultCause::CorruptOutput,
        });
        log.push(FaultEvent::ShardDropped {
            machine: 2,
            attempts: 3,
            items: 17,
        });
        assert_eq!(log.crashes(), 1);
        assert_eq!(log.retries(), 1);
        assert_eq!(log.stragglers(), 1);
        assert_eq!(log.rejections(), 1);
        assert_eq!(log.shards_dropped(), 1);
        assert_eq!(log.speculations_launched(), 0);
        assert!(!log.is_empty());
        assert_eq!(log.events().len(), 5);
    }

    #[test]
    fn degraded_run_reports_its_coverage_fraction() {
        let run = DegradedRun {
            covered_points: 750,
            total_points: 1000,
            dropped_shards: vec![DroppedShard {
                round: 0,
                machine: 3,
                attempts: 3,
                items: 250,
                cause: FaultCause::Crashed,
            }],
        };
        assert!((run.coverage_fraction() - 0.75).abs() < 1e-12);
        let display = run.dropped_shards[0].to_string();
        // Display coordinates use fault-plan syntax (0-based round=/machine=).
        assert!(display.contains("round=0 machine=3") && display.contains("250"));
    }

    #[test]
    fn fault_summary_display_mentions_every_counter() {
        let s = FaultSummary {
            attempts: 10,
            retries: 2,
            crashes: 1,
            rejections: 1,
            stragglers: 3,
            speculations_launched: 1,
            speculations_won: 1,
            shards_dropped: 0,
            simulated_time: Duration::from_millis(12),
            wall_time: Duration::from_millis(34),
            executor: Executor::threads(2),
        };
        let text = s.to_string();
        for word in [
            "attempts",
            "retries",
            "crashes",
            "stragglers",
            "dropped",
            "simulated 12ms",
            "wall 34ms",
            "threads(x2)",
        ] {
            assert!(text.contains(word), "summary missing {word}: {text}");
        }
        assert!(!s.is_quiet());
        assert!(FaultSummary::default().is_quiet());
    }
}
