//! Mapper-side partitioners.
//!
//! The map phase of every algorithm in the paper "arbitrarily partitions"
//! the current point set across the reducers (MRG line 3, EIM lines 3 and
//! 7).  Three deterministic strategies are provided; all of them guarantee
//! that every input item is assigned to exactly one partition and that no
//! partition exceeds `ceil(len / parts)` items — the bound MRG's analysis
//! relies on (`|V_i| ≤ ⌈n/m⌉`).

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits `items` into at most `parts` contiguous chunks of size
/// `ceil(len / parts)` (the last chunk may be smaller).  Chunks are never
/// empty; fewer than `parts` chunks are returned when there are not enough
/// items.
pub fn chunks<T: Clone>(items: &[T], parts: usize) -> Vec<Vec<T>> {
    assert!(parts > 0, "cannot partition into zero parts");
    if items.is_empty() {
        return Vec::new();
    }
    let size = items.len().div_ceil(parts);
    items.chunks(size).map(|c| c.to_vec()).collect()
}

/// Deals items round-robin over at most `parts` partitions (partition `i`
/// receives items `i`, `i + parts`, `i + 2·parts`, …).  Empty partitions are
/// dropped.
pub fn round_robin<T: Clone>(items: &[T], parts: usize) -> Vec<Vec<T>> {
    assert!(parts > 0, "cannot partition into zero parts");
    if items.is_empty() {
        return Vec::new();
    }
    let used = parts.min(items.len());
    let mut out: Vec<Vec<T>> = (0..used)
        .map(|_| Vec::with_capacity(items.len() / used + 1))
        .collect();
    for (i, item) in items.iter().enumerate() {
        out[i % used].push(item.clone());
    }
    out
}

/// Shuffles the items with a seeded RNG and then chunks them — the closest
/// analogue of a random hash partitioner while staying reproducible.
pub fn random<T: Clone>(items: &[T], parts: usize, seed: u64) -> Vec<Vec<T>> {
    assert!(parts > 0, "cannot partition into zero parts");
    if items.is_empty() {
        return Vec::new();
    }
    let mut shuffled: Vec<T> = items.to_vec();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    shuffled.shuffle(&mut rng);
    chunks(&shuffled, parts)
}

/// Maximum partition size any of the strategies in this module will produce
/// for the given input length: `ceil(len / parts)`.
pub fn max_partition_size(len: usize, parts: usize) -> usize {
    assert!(parts > 0, "cannot partition into zero parts");
    len.div_ceil(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn flatten_sorted(parts: &[Vec<usize>]) -> Vec<usize> {
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn chunks_cover_everything_exactly_once() {
        let items: Vec<usize> = (0..103).collect();
        let parts = chunks(&items, 10);
        assert_eq!(flatten_sorted(&parts), items);
        assert!(parts.iter().all(|p| p.len() <= 11));
        assert!(parts.len() <= 10);
    }

    #[test]
    fn chunks_handles_fewer_items_than_parts() {
        let items = vec![1, 2, 3];
        let parts = chunks(&items, 10);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn chunks_of_empty_input_is_empty() {
        assert!(chunks::<usize>(&[], 5).is_empty());
        assert!(round_robin::<usize>(&[], 5).is_empty());
        assert!(random::<usize>(&[], 5, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn chunks_rejects_zero_parts() {
        chunks(&[1], 0);
    }

    #[test]
    fn round_robin_balances_partition_sizes() {
        let items: Vec<usize> = (0..100).collect();
        let parts = round_robin(&items, 7);
        assert_eq!(flatten_sorted(&parts), items);
        let sizes: BTreeSet<usize> = parts.iter().map(Vec::len).collect();
        // Sizes differ by at most one.
        assert!(sizes.len() <= 2);
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn round_robin_respects_max_size_bound() {
        let items: Vec<usize> = (0..95).collect();
        let parts = round_robin(&items, 10);
        let bound = max_partition_size(items.len(), 10);
        assert!(parts.iter().all(|p| p.len() <= bound));
    }

    #[test]
    fn random_is_deterministic_per_seed_and_covers_input() {
        let items: Vec<usize> = (0..200).collect();
        let a = random(&items, 8, 42);
        let b = random(&items, 8, 42);
        let c = random(&items, 8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(flatten_sorted(&a), items);
        assert_eq!(flatten_sorted(&c), items);
    }

    #[test]
    fn random_respects_size_bound() {
        let items: Vec<usize> = (0..1001).collect();
        let parts = random(&items, 50, 7);
        let bound = max_partition_size(items.len(), 50);
        assert!(parts.iter().all(|p| p.len() <= bound));
        assert!(parts.len() <= 50);
    }

    #[test]
    fn max_partition_size_is_ceiling() {
        assert_eq!(max_partition_size(100, 10), 10);
        assert_eq!(max_partition_size(101, 10), 11);
        assert_eq!(max_partition_size(0, 10), 0);
    }
}
