//! Simulated MapReduce substrate.
//!
//! The paper evaluates its parallel k-center algorithms in the MapReduce
//! model of Karloff et al., but runs the experiments by *simulating* the
//! parallel machines on a single box: "We simulate the parallel machines
//! sequentially on a single machine, taking the longest processing time of
//! the simulated machines as the processing time for that MapReduce round",
//! and "we adopt a MapReduce approach, but do not record the cost of moving
//! data between machines" (Section 7.1).
//!
//! This crate reproduces that model:
//!
//! * a [`ClusterConfig`] describes the number of simulated machines `m` and
//!   the per-machine capacity `c` (measured in points);
//! * a [`Cluster`] executes *rounds*: the caller supplies one input
//!   partition per reducer and a reduce closure, the machines run on the
//!   selected [`Executor`] — sequentially in the paper's simulated mode
//!   (the default), or as real `std::thread::scope` tasks with a fixed
//!   worker budget — and the round is **charged** the maximum per-reducer
//!   processing time — exactly the paper's accounting — while the
//!   wall-clock time is recorded alongside.  Outputs are bit-identical
//!   across executors (waves merge in ascending partition order), so the
//!   executor extends the determinism tuple only as an *invariant*;
//! * [`partition`] provides the mapper side: deterministic chunking,
//!   round-robin, and seeded random partitioners;
//! * [`JobStats`] / [`RoundStats`] accumulate per-round accounting
//!   (simulated time, wall time, items processed and shuffled) so the bench
//!   harness can report both the paper's metric and real elapsed time;
//! * capacity violations surface as [`MapReduceError`] instead of silently
//!   producing results a real cluster could not have produced;
//! * [`faults`] adds deterministic fault injection on top: a reproducible
//!   [`FaultPlan`] can crash reducers, slow them down, or corrupt their
//!   output, and the cluster retries, speculates, and — when the caller
//!   opts in — degrades gracefully, with every event accounted in the
//!   round statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod error;
pub mod executor;
pub mod faults;
pub mod partition;
pub mod stats;

pub use cluster::{Cluster, DegradableOutputs, SimulatedCluster, ThreadedCluster};
pub use config::ClusterConfig;
pub use error::MapReduceError;
pub use executor::{
    host_parallelism, install_thread_budget, threads_from_env, Executor, ExecutorChoice,
    ExecutorSelectError, EXECUTOR_ENV, THREADS_ENV,
};
pub use faults::{
    Backoff, DegradedRun, DroppedShard, FaultCause, FaultConfig, FaultKind, FaultLog, FaultPlan,
    FaultPolicy, FaultRates, FaultSummary, ScheduledFault, Speculation,
};
pub use stats::{JobStats, RoundStats};
