//! The simulated cluster: parallel reducer execution with the paper's
//! per-round cost accounting.

use crate::config::ClusterConfig;
use crate::error::MapReduceError;
use crate::stats::{JobStats, RoundStats};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// A simulated MapReduce cluster.
///
/// A round is executed by handing every partition to one reducer closure;
/// reducers run in parallel through rayon (the machine actually has multiple
/// cores), but the round is charged `max_i t_i` — the processing time of the
/// slowest simulated machine — exactly as in the paper's experimental setup.
/// The accumulated [`JobStats`] additionally record the fully sequential
/// cost (`Σ_i t_i`) and the real wall-clock time so all three views can be
/// reported.
pub struct SimulatedCluster {
    config: ClusterConfig,
    stats: JobStats,
    enforce_capacity: bool,
}

impl SimulatedCluster {
    /// Creates a cluster with the given configuration; partition sizes are
    /// checked against the per-machine capacity on every round.
    pub fn new(config: ClusterConfig) -> Self {
        Self {
            config,
            stats: JobStats::new(),
            enforce_capacity: true,
        }
    }

    /// Creates a cluster that records statistics but does not enforce the
    /// capacity limit.  The paper's experiments effectively run in this mode
    /// (its single test machine has plenty of RAM); the strict mode is what
    /// the multi-round analysis needs.
    pub fn unchecked(config: ClusterConfig) -> Self {
        Self {
            config,
            stats: JobStats::new(),
            enforce_capacity: false,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// Whether capacity limits are enforced.
    pub fn enforces_capacity(&self) -> bool {
        self.enforce_capacity
    }

    /// Statistics of every round executed so far.
    pub fn stats(&self) -> &JobStats {
        &self.stats
    }

    /// Consumes the cluster, returning the accumulated statistics.
    pub fn into_stats(self) -> JobStats {
        self.stats
    }

    /// Executes one MapReduce round.
    ///
    /// `partitions[i]` is the input of reducer `i`; `reduce(i, &partitions[i])`
    /// produces its output.  Outputs are returned in partition order.  The
    /// `count_out` closure tells the accounting how many items each output
    /// contributes to the next shuffle.
    ///
    /// # Errors
    ///
    /// * [`MapReduceError::EmptyRound`] if no partitions are supplied.
    /// * [`MapReduceError::TooManyPartitions`] if there are more partitions
    ///   than machines.
    /// * [`MapReduceError::CapacityExceeded`] if any partition exceeds the
    ///   per-machine capacity (only when capacity is enforced).
    pub fn run_round<T, R, F, C>(
        &mut self,
        label: &str,
        partitions: &[Vec<T>],
        reduce: F,
        count_out: C,
    ) -> Result<Vec<R>, MapReduceError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
        C: Fn(&R) -> usize,
    {
        if partitions.is_empty() {
            return Err(MapReduceError::EmptyRound);
        }
        if partitions.len() > self.config.machines {
            return Err(MapReduceError::TooManyPartitions {
                partitions: partitions.len(),
                machines: self.config.machines,
            });
        }
        if self.enforce_capacity {
            for (machine, part) in partitions.iter().enumerate() {
                if part.len() > self.config.capacity {
                    return Err(MapReduceError::CapacityExceeded {
                        machine,
                        items: part.len(),
                        capacity: self.config.capacity,
                    });
                }
            }
        }

        let wall_start = Instant::now();
        // Run every reducer in parallel, timing each one individually: the
        // per-reducer time is the "simulated machine" processing time.
        let timed: Vec<(R, Duration)> = partitions
            .par_iter()
            .enumerate()
            .map(|(i, part)| {
                let start = Instant::now();
                let out = reduce(i, part);
                (out, start.elapsed())
            })
            .collect();
        let wall_time = wall_start.elapsed();

        let simulated_time = timed.iter().map(|(_, t)| *t).max().unwrap_or_default();
        let sequential_time = timed.iter().map(|(_, t)| *t).sum();
        let items_in: usize = partitions.iter().map(Vec::len).sum();
        let max_machine_items = partitions.iter().map(Vec::len).max().unwrap_or(0);
        let outputs: Vec<R> = timed.into_iter().map(|(r, _)| r).collect();
        let items_out: usize = outputs.iter().map(&count_out).sum();

        self.stats.push(RoundStats {
            round: 0,
            label: label.to_string(),
            machines_used: partitions.len(),
            items_in,
            max_machine_items,
            items_out,
            simulated_time,
            sequential_time,
            wall_time,
            counters: Vec::new(),
        });
        Ok(outputs)
    }

    /// Attaches (or accumulates into) a named work counter on the round
    /// that just ran — reducers return their counts with their outputs and
    /// the caller records the total here, making quantities like pruned
    /// scan pairs visible in the [`JobStats`] next to the round's times.
    ///
    /// # Panics
    ///
    /// Panics if no round has been executed yet.
    pub fn record_counter(&mut self, name: &str, value: u64) {
        self.stats.record_counter(name, value);
    }

    /// Executes a round whose input all goes to a **single** reducer — the
    /// final aggregation step of MRG and EIM ("the mapper sends all points
    /// in S to a single reducer").
    pub fn run_single<T, R, F, C>(
        &mut self,
        label: &str,
        items: Vec<T>,
        reduce: F,
        count_out: C,
    ) -> Result<R, MapReduceError>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
        C: Fn(&R) -> usize,
    {
        let partitions = vec![items];
        let mut out = self.run_round(label, &partitions, |_, part| reduce(part), count_out)?;
        Ok(out
            .pop()
            .expect("single-reducer round returns exactly one output"))
    }

    /// Checks that `n` items fit in the cluster at all.
    pub fn check_fits(&self, n: usize) -> Result<(), MapReduceError> {
        if self.enforce_capacity && !self.config.fits(n) {
            return Err(MapReduceError::ClusterTooSmall {
                items: n,
                total_capacity: self.config.total_capacity(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition;

    fn config(machines: usize, capacity: usize) -> ClusterConfig {
        ClusterConfig::new(machines, capacity)
    }

    #[test]
    fn run_round_returns_outputs_in_partition_order() {
        let mut cluster = SimulatedCluster::new(config(4, 100));
        let parts: Vec<Vec<u64>> = vec![vec![1, 2], vec![3], vec![4, 5, 6]];
        let sums = cluster
            .run_round("sum", &parts, |_, xs| xs.iter().sum::<u64>(), |_| 1)
            .unwrap();
        assert_eq!(sums, vec![3, 3, 15]);
        let stats = cluster.stats();
        assert_eq!(stats.num_rounds(), 1);
        let r = &stats.rounds()[0];
        assert_eq!(r.items_in, 6);
        assert_eq!(r.max_machine_items, 3);
        assert_eq!(r.items_out, 3);
        assert_eq!(r.machines_used, 3);
        assert_eq!(r.label, "sum");
    }

    #[test]
    fn run_round_rejects_empty_input() {
        let mut cluster = SimulatedCluster::new(config(2, 10));
        let err = cluster
            .run_round::<u32, u32, _, _>("x", &[], |_, _| 0, |_| 0)
            .unwrap_err();
        assert_eq!(err, MapReduceError::EmptyRound);
    }

    #[test]
    fn run_round_rejects_too_many_partitions() {
        let mut cluster = SimulatedCluster::new(config(2, 10));
        let parts = vec![vec![1], vec![2], vec![3]];
        let err = cluster
            .run_round("x", &parts, |_, xs: &[i32]| xs.len(), |_| 0)
            .unwrap_err();
        assert_eq!(
            err,
            MapReduceError::TooManyPartitions {
                partitions: 3,
                machines: 2
            }
        );
    }

    #[test]
    fn run_round_enforces_capacity() {
        let mut cluster = SimulatedCluster::new(config(2, 2));
        let parts = vec![vec![1, 2, 3]];
        let err = cluster
            .run_round("x", &parts, |_, xs: &[i32]| xs.len(), |_| 0)
            .unwrap_err();
        assert_eq!(
            err,
            MapReduceError::CapacityExceeded {
                machine: 0,
                items: 3,
                capacity: 2
            }
        );
    }

    #[test]
    fn unchecked_cluster_ignores_capacity() {
        let mut cluster = SimulatedCluster::unchecked(config(2, 2));
        assert!(!cluster.enforces_capacity());
        let parts = vec![vec![1, 2, 3, 4, 5]];
        let out = cluster
            .run_round("x", &parts, |_, xs: &[i32]| xs.len(), |_| 0)
            .unwrap();
        assert_eq!(out, vec![5]);
        assert!(cluster.check_fits(1_000_000).is_ok());
    }

    #[test]
    fn run_single_funnels_everything_to_one_reducer() {
        let mut cluster = SimulatedCluster::new(config(8, 100));
        let total = cluster
            .run_single(
                "final",
                (1..=10u64).collect(),
                |xs| xs.iter().sum::<u64>(),
                |_| 1,
            )
            .unwrap();
        assert_eq!(total, 55);
        assert_eq!(cluster.stats().rounds()[0].machines_used, 1);
    }

    #[test]
    fn check_fits_detects_undersized_cluster() {
        let cluster = SimulatedCluster::new(config(2, 3));
        assert!(cluster.check_fits(6).is_ok());
        assert_eq!(
            cluster.check_fits(7).unwrap_err(),
            MapReduceError::ClusterTooSmall {
                items: 7,
                total_capacity: 6
            }
        );
    }

    #[test]
    fn simulated_time_is_at_most_sequential_time() {
        let mut cluster = SimulatedCluster::new(config(8, 100_000));
        let items: Vec<u64> = (0..80_000).collect();
        let parts = partition::chunks(&items, 8);
        cluster
            .run_round(
                "busy",
                &parts,
                |_, xs| xs.iter().map(|x| x.wrapping_mul(2654435761)).sum::<u64>(),
                |_| 1,
            )
            .unwrap();
        let r = &cluster.stats().rounds()[0];
        assert!(r.simulated_time <= r.sequential_time);
        assert!(r.simulated_time > Duration::ZERO);
    }

    #[test]
    fn multi_round_job_accumulates_stats() {
        let mut cluster = SimulatedCluster::new(config(4, 1000));
        let items: Vec<u64> = (0..1000).collect();
        let parts = partition::chunks(&items, 4);
        let partials = cluster
            .run_round("sum parts", &parts, |_, xs| xs.iter().sum::<u64>(), |_| 1)
            .unwrap();
        let total = cluster
            .run_single("combine", partials, |xs| xs.iter().sum::<u64>(), |_| 1)
            .unwrap();
        assert_eq!(total, 499_500);
        assert_eq!(cluster.stats().num_rounds(), 2);
        assert_eq!(cluster.stats().rounds()[1].items_in, 4);
        let stats = cluster.into_stats();
        assert_eq!(stats.num_rounds(), 2);
    }

    #[test]
    fn reducer_index_is_passed_through() {
        let mut cluster = SimulatedCluster::new(config(3, 10));
        let parts = vec![vec![0u8], vec![0u8], vec![0u8]];
        let ids = cluster.run_round("ids", &parts, |i, _| i, |_| 0).unwrap();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
