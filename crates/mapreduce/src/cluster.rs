//! The cluster round engine: machine execution behind an [`Executor`]
//! (sequential simulated machines, or real `std::thread::scope` fan-out)
//! with the paper's per-round cost accounting, plus optional deterministic
//! fault injection with retry, backoff, straggler speculation and
//! degrade-mode shard drops (see the [`crate::faults`] module docs for the
//! determinism contract).

use crate::config::ClusterConfig;
use crate::error::MapReduceError;
use crate::executor::{run_wave, Executor};
use crate::faults::{
    DroppedShard, FaultCause, FaultConfig, FaultEvent, FaultKind, FaultLog, FaultPolicy,
};
use crate::stats::{JobStats, RoundStats};
use std::time::{Duration, Instant};

/// A MapReduce cluster with the paper's cost accounting.
///
/// A round is executed by handing every partition to one reducer closure;
/// the active [`Executor`] decides how the machines actually run —
/// sequentially on the calling thread ([`Executor::Simulated`], the
/// paper's mode and the default) or concurrently as `std::thread::scope`
/// tasks ([`Executor::Threads`]).  Either way the round is charged
/// `max_i t_i` — the processing time of the slowest simulated machine —
/// exactly as in the paper's experimental setup.  The accumulated
/// [`JobStats`] additionally record the fully sequential cost (`Σ_i t_i`)
/// and the real wall-clock time so all three views can be reported.
///
/// Outputs are **executor-invariant**: every wave merges its results in
/// ascending partition order, so a round returns bit-identical outputs
/// under either executor at any thread count (reducers are pure functions
/// of their partitions).
///
/// With [`Cluster::with_fault_injection`], every reducer execution
/// first consults a fault plan: crashed or corrupt attempts lose their
/// output and the failed partitions are re-executed (in ascending partition
/// order, up to the policy's attempt budget, with simulated backoff charged
/// between attempts); straggling attempts keep their output but are charged
/// a multiple of their time, and may race a speculative copy — on the
/// simulated clock under [`Executor::Simulated`], on the measured wall
/// clock under [`Executor::Threads`].  Because reducers are pure, a round
/// in which every partition eventually succeeds returns outputs
/// bit-identical to the fault-free round — only the accounting differs.
pub struct Cluster {
    config: ClusterConfig,
    stats: JobStats,
    enforce_capacity: bool,
    faults: Option<FaultConfig>,
    executor: Executor,
}

/// The historical name of [`Cluster`]: a cluster whose default executor
/// simulates the machines sequentially.  Kept as an alias so existing
/// call sites read naturally when they mean the paper's simulated mode.
pub type SimulatedCluster = Cluster;

/// A [`Cluster`] intended to run with [`Executor::Threads`] — construct
/// one with [`Cluster::threaded`] or [`Cluster::with_executor`].
pub type ThreadedCluster = Cluster;

/// The outputs of a degradable round: one `Some(output)` per surviving
/// partition, `None` for each shard that exhausted its attempts, plus the
/// provenance of every dropped shard.
#[derive(Debug)]
pub struct DegradableOutputs<R> {
    /// `outputs[i]` is reducer `i`'s result, or `None` if its shard died.
    pub outputs: Vec<Option<R>>,
    /// Provenance of the dropped shards, ascending machine order.
    pub dropped: Vec<DroppedShard>,
}

/// An optional per-machine output validator: `(machine, output) -> ok`.
/// Rejected outputs count as corrupt and send the shard back for retry.
type OutputValidator<'a, R> = Option<&'a (dyn Fn(usize, &R) -> bool + Sync)>;

/// The result of one reducer execution attempt, before retry logic.
struct AttemptOutcome<R> {
    /// The surviving output (`None` if the attempt crashed or its output
    /// was rejected).
    output: Option<R>,
    /// Time charged to the simulated machine for this attempt (slowdown
    /// included, backoff not).
    charged: Duration,
    /// Real execution time (what a sequential simulation would pay).
    work: Duration,
    /// Cause of failure when `output` is `None`.
    cause: Option<FaultCause>,
    /// Events to log, machine-local order.
    events: Vec<FaultEvent>,
}

/// Per-machine execution state across retry waves.
struct MachineRun<R> {
    output: Option<R>,
    /// Simulated completion time: execution time of every attempt plus all
    /// charged backoff.
    charged: Duration,
    /// Total real execution time across attempts (no backoff).
    work: Duration,
    attempts: usize,
    cause: Option<FaultCause>,
}

impl Cluster {
    /// Creates a cluster with the given configuration; partition sizes are
    /// checked against the per-machine capacity on every round.  The
    /// executor defaults to [`Executor::Simulated`] (the paper's mode);
    /// switch with [`Cluster::with_executor`].
    pub fn new(config: ClusterConfig) -> Self {
        Self {
            config,
            stats: JobStats::new(),
            enforce_capacity: true,
            faults: None,
            executor: Executor::Simulated,
        }
    }

    /// Creates a cluster that records statistics but does not enforce the
    /// capacity limit.  The paper's experiments effectively run in this mode
    /// (its single test machine has plenty of RAM); the strict mode is what
    /// the multi-round analysis needs.
    pub fn unchecked(config: ClusterConfig) -> Self {
        Self {
            config,
            stats: JobStats::new(),
            enforce_capacity: false,
            faults: None,
            executor: Executor::Simulated,
        }
    }

    /// Creates a capacity-checked cluster whose rounds fan out over
    /// `threads` real worker threads (see [`Executor::Threads`]).
    pub fn threaded(config: ClusterConfig, threads: usize) -> Self {
        Cluster::new(config).with_executor(Executor::threads(threads))
    }

    /// Selects the executor for all subsequent rounds.  Outputs are
    /// executor-invariant; only the `wall_time` accounting (and, under
    /// faults, which speculation racer wins) depends on this choice.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Installs the executor on an existing cluster.
    pub fn set_executor(&mut self, executor: Executor) {
        self.executor = executor;
    }

    /// The active executor.
    pub fn executor(&self) -> Executor {
        self.executor
    }

    /// Enables fault injection: every subsequent reducer execution consults
    /// `faults.plan`, and failures are handled per `faults.policy`.
    pub fn with_fault_injection(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Installs (or clears) the fault configuration on an existing cluster.
    pub fn set_fault_injection(&mut self, faults: Option<FaultConfig>) {
        self.faults = faults;
    }

    /// The active fault configuration, if any.
    pub fn fault_injection(&self) -> Option<&FaultConfig> {
        self.faults.as_ref()
    }

    /// Whether the active fault configuration allows degrade mode.
    pub fn degrade_enabled(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.degrade)
    }

    /// The cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// Whether capacity limits are enforced.
    pub fn enforces_capacity(&self) -> bool {
        self.enforce_capacity
    }

    /// Statistics of every round executed so far.
    pub fn stats(&self) -> &JobStats {
        &self.stats
    }

    /// Consumes the cluster, returning the accumulated statistics.
    pub fn into_stats(self) -> JobStats {
        self.stats
    }

    /// Executes one MapReduce round.
    ///
    /// `partitions[i]` is the input of reducer `i`; `reduce(i, &partitions[i])`
    /// produces its output.  Outputs are returned in partition order.  The
    /// `count_out` closure tells the accounting how many items each output
    /// contributes to the next shuffle.
    ///
    /// # Errors
    ///
    /// * [`MapReduceError::EmptyRound`] if no partitions are supplied.
    /// * [`MapReduceError::TooManyPartitions`] if there are more partitions
    ///   than machines.
    /// * [`MapReduceError::CapacityExceeded`] if any partition exceeds the
    ///   per-machine capacity (only when capacity is enforced).
    /// * [`MapReduceError::RoundFailed`] if fault injection is active and a
    ///   partition fails every attempt the policy allows.
    pub fn run_round<T, R, F, C>(
        &mut self,
        label: &str,
        partitions: &[Vec<T>],
        reduce: F,
        count_out: C,
    ) -> Result<Vec<R>, MapReduceError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
        C: Fn(&R) -> usize,
    {
        let out = self.run_round_impl(label, partitions, &reduce, &count_out, None, false)?;
        out.outputs
            .into_iter()
            .map(|o| {
                o.ok_or(MapReduceError::MissingOutput {
                    label: label.to_string(),
                })
            })
            .collect()
    }

    /// Like [`Cluster::run_round`], with a per-round output
    /// validator: `validate(i, &output)` returning `false` rejects reducer
    /// `i`'s output as corrupt, which counts as a failed attempt and
    /// triggers a retry.  Injected [`FaultKind::Corrupt`] faults are
    /// detected the same way (modelling a checksum the validator embodies).
    pub fn run_round_validated<T, R, F, C, V>(
        &mut self,
        label: &str,
        partitions: &[Vec<T>],
        reduce: F,
        count_out: C,
        validate: V,
    ) -> Result<Vec<R>, MapReduceError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
        C: Fn(&R) -> usize,
        V: Fn(usize, &R) -> bool + Sync,
    {
        let out = self.run_round_impl(
            label,
            partitions,
            &reduce,
            &count_out,
            Some(&validate),
            false,
        )?;
        out.outputs
            .into_iter()
            .map(|o| {
                o.ok_or(MapReduceError::MissingOutput {
                    label: label.to_string(),
                })
            })
            .collect()
    }

    /// Executes a round that is allowed to **degrade**: a partition that
    /// exhausts its attempt budget is dropped instead of failing the round,
    /// and the caller receives `None` in its slot plus a [`DroppedShard`]
    /// provenance record.  The caller owns the semantic consequences — any
    /// certificate it reports must be restated over the surviving items.
    ///
    /// Without fault injection this behaves exactly like
    /// [`Cluster::run_round`] (every slot `Some`, no drops).
    pub fn run_round_degradable<T, R, F, C>(
        &mut self,
        label: &str,
        partitions: &[Vec<T>],
        reduce: F,
        count_out: C,
    ) -> Result<DegradableOutputs<R>, MapReduceError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
        C: Fn(&R) -> usize,
    {
        self.run_round_impl(label, partitions, &reduce, &count_out, None, true)
    }

    /// The round engine behind the public `run_round*` entry points.
    ///
    /// Executes attempt waves on the active executor: wave 0 runs every
    /// partition; each further wave re-runs the still-failed partitions
    /// (ascending partition index) until they succeed, exhaust the
    /// policy's attempt budget, or — when `degrade` is false — fail the
    /// round.  Straggler speculation runs after the waves, racing a
    /// speculative copy against each over-median machine — on the
    /// simulated clock under [`Executor::Simulated`], on the measured
    /// wall clock under [`Executor::Threads`].
    fn run_round_impl<T, R, F, C>(
        &mut self,
        label: &str,
        partitions: &[Vec<T>],
        reduce: &F,
        count_out: &C,
        validate: OutputValidator<'_, R>,
        degrade: bool,
    ) -> Result<DegradableOutputs<R>, MapReduceError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
        C: Fn(&R) -> usize,
    {
        if partitions.is_empty() {
            return Err(MapReduceError::EmptyRound);
        }
        if partitions.len() > self.config.machines {
            return Err(MapReduceError::TooManyPartitions {
                partitions: partitions.len(),
                machines: self.config.machines,
            });
        }
        if self.enforce_capacity {
            for (machine, part) in partitions.iter().enumerate() {
                if part.len() > self.config.capacity {
                    return Err(MapReduceError::CapacityExceeded {
                        machine,
                        items: part.len(),
                        capacity: self.config.capacity,
                    });
                }
            }
        }

        // The round index fault plans address: the next index this
        // cluster's `JobStats::push` will assign.
        let round = self.stats.num_rounds();
        let policy = self
            .faults
            .as_ref()
            .map(|f| f.policy)
            .unwrap_or_else(|| FaultPolicy {
                max_attempts: 1,
                ..FaultPolicy::default()
            });
        let plan = self.faults.as_ref().map(|f| &f.plan);

        let executor = self.executor;
        let wall_start = Instant::now();
        let mut log = FaultLog::new();

        // Wave 0: every partition on the executor, each reducer timed
        // individually — the per-reducer time is the "simulated machine"
        // processing time.
        let outcomes: Vec<AttemptOutcome<R>> = run_wave(
            executor,
            partitions.iter().enumerate().collect(),
            |(i, part)| execute_attempt(i, 0, part, reduce, plan, validate, round),
        );
        let mut runs: Vec<MachineRun<R>> = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            for e in &outcome.events {
                log.push(e.clone());
            }
            runs.push(MachineRun {
                output: outcome.output,
                charged: outcome.charged,
                work: outcome.work,
                attempts: 1,
                cause: outcome.cause,
            });
        }

        // Retry waves: failed partitions only, ascending partition index,
        // so a run in which every partition eventually succeeds yields
        // outputs bit-identical to the fault-free round.
        loop {
            let pending: Vec<(usize, usize)> = runs
                .iter()
                .enumerate()
                .filter(|(_, r)| r.output.is_none() && r.attempts < policy.max_attempts)
                .map(|(i, r)| (i, r.attempts))
                .collect();
            if pending.is_empty() {
                break;
            }
            let retried: Vec<(usize, usize, Duration, AttemptOutcome<R>)> =
                run_wave(executor, pending, |(i, attempt)| {
                    let backoff = policy.backoff.delay(attempt);
                    let outcome =
                        execute_attempt(i, attempt, &partitions[i], reduce, plan, validate, round);
                    (i, attempt, backoff, outcome)
                });
            for (i, attempt, backoff, outcome) in retried {
                log.push(FaultEvent::Retried {
                    machine: i,
                    attempt,
                    backoff,
                });
                for e in &outcome.events {
                    log.push(e.clone());
                }
                let run = &mut runs[i];
                run.charged += backoff + outcome.charged;
                run.work += outcome.work;
                run.attempts += 1;
                run.output = outcome.output;
                run.cause = outcome.cause;
            }
        }

        // Straggler speculation: machines whose completion time exceeds
        // `threshold ×` the round median (over completed machines) race a
        // speculative copy launched at the median mark.  The race clock is
        // the executor's: the simulated (charged) clock in simulated mode,
        // the measured wall clock of the actual executions in threaded
        // mode.  Reducers are pure, so both racers produce the same bits;
        // only the clock and the log depend on who wins, and the original
        // wins ties.
        if let Some(spec) = policy.speculation {
            let race_run = |r: &MachineRun<R>| match executor {
                Executor::Simulated => r.charged,
                Executor::Threads { .. } => r.work,
            };
            let mut completed: Vec<Duration> = runs
                .iter()
                .filter(|r| r.output.is_some())
                .map(race_run)
                .collect();
            if completed.len() >= 2 {
                completed.sort_unstable();
                let median = completed[completed.len() / 2];
                let cutoff = median.mul_f64(spec.threshold.max(1.0));
                let candidates: Vec<(usize, usize)> = runs
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.output.is_some() && race_run(r) > cutoff)
                    .map(|(i, r)| (i, r.attempts))
                    .collect();
                let raced: Vec<(usize, usize, AttemptOutcome<R>)> =
                    run_wave(executor, candidates, |(i, attempt)| {
                        (
                            i,
                            attempt,
                            execute_attempt(
                                i,
                                attempt,
                                &partitions[i],
                                reduce,
                                plan,
                                validate,
                                round,
                            ),
                        )
                    });
                for (i, attempt, outcome) in raced {
                    log.push(FaultEvent::SpeculationLaunched {
                        machine: i,
                        attempt,
                    });
                    for e in &outcome.events {
                        log.push(e.clone());
                    }
                    let run = &mut runs[i];
                    run.attempts += 1;
                    if outcome.output.is_some() {
                        // The copy starts when the straggler is detected
                        // (the median mark) and finishes one execution
                        // later, measured on the race clock.
                        let spec_cost = match executor {
                            Executor::Simulated => outcome.charged,
                            Executor::Threads { .. } => outcome.work,
                        };
                        let spec_completion = median + spec_cost;
                        if spec_completion < race_run(run) {
                            // The winner's completion replaces the
                            // straggler's on the simulated clock; `work`
                            // stays Σ of real execution time on both
                            // executors (the wall-clock race changes who
                            // delivers the output, not how much real work
                            // was done).
                            if executor == Executor::Simulated {
                                run.charged = spec_completion;
                            }
                            run.output = outcome.output;
                            log.push(FaultEvent::SpeculationWon {
                                machine: i,
                                attempt,
                            });
                        }
                    }
                    run.work += outcome.work;
                }
            }
        }
        let wall_time = wall_start.elapsed();

        // Dead shards: degrade drops them with provenance, otherwise the
        // round fails on the first one.
        let mut dropped = Vec::new();
        for (i, run) in runs.iter().enumerate() {
            if run.output.is_none() {
                let cause = run.cause.unwrap_or(FaultCause::Crashed);
                if !degrade {
                    return Err(MapReduceError::RoundFailed {
                        round,
                        machine: i,
                        attempts: run.attempts,
                        source: cause,
                    });
                }
                log.push(FaultEvent::ShardDropped {
                    machine: i,
                    attempts: run.attempts,
                    items: partitions[i].len(),
                });
                dropped.push(DroppedShard {
                    round,
                    machine: i,
                    attempts: run.attempts,
                    items: partitions[i].len(),
                    cause,
                });
            }
        }

        // The paper's charged time: the slowest machine's completion time.
        // Failed machines kept the round waiting through every attempt, so
        // their charged time participates too.
        let simulated_time = runs.iter().map(|r| r.charged).max().unwrap_or_default();
        let sequential_time = runs.iter().map(|r| r.work).sum();
        let attempts = runs.iter().map(|r| r.attempts).sum();
        let items_in: usize = partitions.iter().map(Vec::len).sum();
        let max_machine_items = partitions.iter().map(Vec::len).max().unwrap_or(0);
        let outputs: Vec<Option<R>> = runs.into_iter().map(|r| r.output).collect();
        let items_out: usize = outputs.iter().flatten().map(count_out).sum();

        self.stats.push(RoundStats {
            round,
            label: label.to_string(),
            machines_used: partitions.len(),
            items_in,
            max_machine_items,
            items_out,
            simulated_time,
            sequential_time,
            wall_time,
            executor,
            counters: Vec::new(),
            attempts,
            faults: log,
        });
        Ok(DegradableOutputs { outputs, dropped })
    }

    /// Attaches (or accumulates into) a named work counter on the round
    /// that just ran — reducers return their counts with their outputs and
    /// the caller records the total here, making quantities like pruned
    /// scan pairs visible in the [`JobStats`] next to the round's times.
    ///
    /// # Panics
    ///
    /// Panics if no round has been executed yet.
    pub fn record_counter(&mut self, name: &str, value: u64) {
        self.stats.record_counter(name, value);
    }

    /// Executes a round whose input all goes to a **single** reducer — the
    /// final aggregation step of MRG and EIM ("the mapper sends all points
    /// in S to a single reducer").
    ///
    /// # Errors
    ///
    /// Everything [`Cluster::run_round`] can raise, plus
    /// [`MapReduceError::MissingOutput`] if the substrate invariant of one
    /// output per partition is ever violated.
    pub fn run_single<T, R, F, C>(
        &mut self,
        label: &str,
        items: Vec<T>,
        reduce: F,
        count_out: C,
    ) -> Result<R, MapReduceError>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
        C: Fn(&R) -> usize,
    {
        let partitions = vec![items];
        let mut out = self.run_round(label, &partitions, |_, part| reduce(part), count_out)?;
        out.pop().ok_or(MapReduceError::MissingOutput {
            label: label.to_string(),
        })
    }

    /// Checks that `n` items fit in the cluster at all.
    pub fn check_fits(&self, n: usize) -> Result<(), MapReduceError> {
        if self.enforce_capacity && !self.config.fits(n) {
            return Err(MapReduceError::ClusterTooSmall {
                items: n,
                total_capacity: self.config.total_capacity(),
            });
        }
        Ok(())
    }
}

/// Runs one reducer execution: times the pure reduce, applies the planned
/// fault for `(round, machine, attempt)`, and validates the output.
fn execute_attempt<T, R, F>(
    machine: usize,
    attempt: usize,
    part: &[T],
    reduce: &F,
    plan: Option<&crate::faults::FaultPlan>,
    validate: OutputValidator<'_, R>,
    round: usize,
) -> AttemptOutcome<R>
where
    F: Fn(usize, &[T]) -> R,
{
    let start = Instant::now();
    let out = reduce(machine, part);
    let work = start.elapsed();
    let fault = plan.and_then(|p| p.fault_for(round, machine, attempt));

    let mut events = Vec::new();
    let (output, charged, cause) = match fault {
        Some(FaultKind::Crash) => {
            events.push(FaultEvent::Crashed { machine, attempt });
            (None, work, Some(FaultCause::Crashed))
        }
        Some(FaultKind::Corrupt) => {
            events.push(FaultEvent::Rejected {
                machine,
                attempt,
                cause: FaultCause::CorruptOutput,
            });
            (None, work, Some(FaultCause::CorruptOutput))
        }
        Some(FaultKind::Straggle { factor }) => {
            events.push(FaultEvent::Straggled {
                machine,
                attempt,
                factor,
            });
            let charged = work.mul_f64(factor.max(0.0));
            match validate {
                Some(v) if !v(machine, &out) => {
                    events.push(FaultEvent::Rejected {
                        machine,
                        attempt,
                        cause: FaultCause::ValidationFailed,
                    });
                    (None, charged, Some(FaultCause::ValidationFailed))
                }
                _ => (Some(out), charged, None),
            }
        }
        None => match validate {
            Some(v) if !v(machine, &out) => {
                events.push(FaultEvent::Rejected {
                    machine,
                    attempt,
                    cause: FaultCause::ValidationFailed,
                });
                (None, work, Some(FaultCause::ValidationFailed))
            }
            _ => (Some(out), work, None),
        },
    };
    AttemptOutcome {
        output,
        charged,
        work,
        cause,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, ScheduledFault};
    use crate::partition;

    fn config(machines: usize, capacity: usize) -> ClusterConfig {
        ClusterConfig::new(machines, capacity)
    }

    #[test]
    fn run_round_returns_outputs_in_partition_order() {
        let mut cluster = SimulatedCluster::new(config(4, 100));
        let parts: Vec<Vec<u64>> = vec![vec![1, 2], vec![3], vec![4, 5, 6]];
        let sums = cluster
            .run_round("sum", &parts, |_, xs| xs.iter().sum::<u64>(), |_| 1)
            .unwrap();
        assert_eq!(sums, vec![3, 3, 15]);
        let stats = cluster.stats();
        assert_eq!(stats.num_rounds(), 1);
        let r = &stats.rounds()[0];
        assert_eq!(r.items_in, 6);
        assert_eq!(r.max_machine_items, 3);
        assert_eq!(r.items_out, 3);
        assert_eq!(r.machines_used, 3);
        assert_eq!(r.label, "sum");
        assert_eq!(r.attempts, 3);
        assert!(r.faults.is_empty());
    }

    #[test]
    fn run_round_rejects_empty_input() {
        let mut cluster = SimulatedCluster::new(config(2, 10));
        let err = cluster
            .run_round::<u32, u32, _, _>("x", &[], |_, _| 0, |_| 0)
            .unwrap_err();
        assert_eq!(err, MapReduceError::EmptyRound);
    }

    #[test]
    fn run_round_rejects_too_many_partitions() {
        let mut cluster = SimulatedCluster::new(config(2, 10));
        let parts = vec![vec![1], vec![2], vec![3]];
        let err = cluster
            .run_round("x", &parts, |_, xs: &[i32]| xs.len(), |_| 0)
            .unwrap_err();
        assert_eq!(
            err,
            MapReduceError::TooManyPartitions {
                partitions: 3,
                machines: 2
            }
        );
    }

    #[test]
    fn run_round_enforces_capacity() {
        let mut cluster = SimulatedCluster::new(config(2, 2));
        let parts = vec![vec![1, 2, 3]];
        let err = cluster
            .run_round("x", &parts, |_, xs: &[i32]| xs.len(), |_| 0)
            .unwrap_err();
        assert_eq!(
            err,
            MapReduceError::CapacityExceeded {
                machine: 0,
                items: 3,
                capacity: 2
            }
        );
    }

    #[test]
    fn unchecked_cluster_ignores_capacity() {
        let mut cluster = SimulatedCluster::unchecked(config(2, 2));
        assert!(!cluster.enforces_capacity());
        let parts = vec![vec![1, 2, 3, 4, 5]];
        let out = cluster
            .run_round("x", &parts, |_, xs: &[i32]| xs.len(), |_| 0)
            .unwrap();
        assert_eq!(out, vec![5]);
        assert!(cluster.check_fits(1_000_000).is_ok());
    }

    #[test]
    fn run_single_funnels_everything_to_one_reducer() {
        let mut cluster = SimulatedCluster::new(config(8, 100));
        let total = cluster
            .run_single(
                "final",
                (1..=10u64).collect(),
                |xs| xs.iter().sum::<u64>(),
                |_| 1,
            )
            .unwrap();
        assert_eq!(total, 55);
        assert_eq!(cluster.stats().rounds()[0].machines_used, 1);
    }

    #[test]
    fn check_fits_detects_undersized_cluster() {
        let cluster = SimulatedCluster::new(config(2, 3));
        assert!(cluster.check_fits(6).is_ok());
        assert_eq!(
            cluster.check_fits(7).unwrap_err(),
            MapReduceError::ClusterTooSmall {
                items: 7,
                total_capacity: 6
            }
        );
    }

    #[test]
    fn simulated_time_is_at_most_sequential_time() {
        let mut cluster = SimulatedCluster::new(config(8, 100_000));
        let items: Vec<u64> = (0..80_000).collect();
        let parts = partition::chunks(&items, 8);
        cluster
            .run_round(
                "busy",
                &parts,
                |_, xs| xs.iter().map(|x| x.wrapping_mul(2654435761)).sum::<u64>(),
                |_| 1,
            )
            .unwrap();
        let r = &cluster.stats().rounds()[0];
        assert!(r.simulated_time <= r.sequential_time);
        assert!(r.simulated_time > Duration::ZERO);
    }

    #[test]
    fn multi_round_job_accumulates_stats() {
        let mut cluster = SimulatedCluster::new(config(4, 1000));
        let items: Vec<u64> = (0..1000).collect();
        let parts = partition::chunks(&items, 4);
        let partials = cluster
            .run_round("sum parts", &parts, |_, xs| xs.iter().sum::<u64>(), |_| 1)
            .unwrap();
        let total = cluster
            .run_single("combine", partials, |xs| xs.iter().sum::<u64>(), |_| 1)
            .unwrap();
        assert_eq!(total, 499_500);
        assert_eq!(cluster.stats().num_rounds(), 2);
        assert_eq!(cluster.stats().rounds()[1].items_in, 4);
        let stats = cluster.into_stats();
        assert_eq!(stats.num_rounds(), 2);
    }

    #[test]
    fn reducer_index_is_passed_through() {
        let mut cluster = SimulatedCluster::new(config(3, 10));
        let parts = vec![vec![0u8], vec![0u8], vec![0u8]];
        let ids = cluster.run_round("ids", &parts, |i, _| i, |_| 0).unwrap();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn round_index_matches_job_position() {
        let mut cluster = SimulatedCluster::new(config(2, 10));
        for _ in 0..3 {
            cluster
                .run_round("r", &[vec![1u8]], |_, xs| xs.len(), |_| 0)
                .unwrap();
        }
        let rounds = cluster.stats().rounds();
        assert_eq!(rounds[0].round, 0);
        assert_eq!(rounds[1].round, 1);
        assert_eq!(rounds[2].round, 2);
    }

    #[test]
    fn crashed_reducer_is_retried_and_the_round_succeeds() {
        let plan = FaultPlan::explicit(vec![ScheduledFault {
            round: 0,
            machine: 1,
            attempt: 0,
            kind: FaultKind::Crash,
        }]);
        let mut cluster =
            SimulatedCluster::new(config(4, 100)).with_fault_injection(FaultConfig::new(plan));
        let parts: Vec<Vec<u64>> = vec![vec![1, 2], vec![3, 4], vec![5]];
        let sums = cluster
            .run_round("sum", &parts, |_, xs| xs.iter().sum::<u64>(), |_| 1)
            .unwrap();
        assert_eq!(sums, vec![3, 7, 5]);
        let r = &cluster.stats().rounds()[0];
        assert_eq!(r.attempts, 4);
        assert_eq!(r.faults.crashes(), 1);
        assert_eq!(r.faults.retries(), 1);
    }

    #[test]
    fn exhausted_attempts_fail_the_round_with_provenance() {
        let plan = FaultPlan::explicit(
            (0..2)
                .map(|attempt| ScheduledFault {
                    round: 0,
                    machine: 0,
                    attempt,
                    kind: FaultKind::Crash,
                })
                .collect(),
        );
        let faults = FaultConfig::new(plan).with_policy(FaultPolicy::with_max_attempts(2));
        let mut cluster = SimulatedCluster::new(config(2, 100)).with_fault_injection(faults);
        let err = cluster
            .run_round("sum", &[vec![1u64]], |_, xs| xs.iter().sum::<u64>(), |_| 1)
            .unwrap_err();
        assert_eq!(
            err,
            MapReduceError::RoundFailed {
                round: 0,
                machine: 0,
                attempts: 2,
                source: FaultCause::Crashed,
            }
        );
    }

    #[test]
    fn degradable_round_drops_dead_shards_and_keeps_survivors() {
        let plan = FaultPlan::explicit(
            (0..3)
                .map(|attempt| ScheduledFault {
                    round: 0,
                    machine: 1,
                    attempt,
                    kind: FaultKind::Corrupt,
                })
                .collect(),
        );
        let mut cluster =
            SimulatedCluster::new(config(4, 100)).with_fault_injection(FaultConfig::new(plan));
        let parts: Vec<Vec<u64>> = vec![vec![1, 2], vec![3, 4, 5], vec![6]];
        let out = cluster
            .run_round_degradable("sum", &parts, |_, xs| xs.iter().sum::<u64>(), |_| 1)
            .unwrap();
        assert_eq!(out.outputs[0], Some(3));
        assert_eq!(out.outputs[1], None);
        assert_eq!(out.outputs[2], Some(6));
        assert_eq!(out.dropped.len(), 1);
        let shard = &out.dropped[0];
        assert_eq!(shard.machine, 1);
        assert_eq!(shard.items, 3);
        assert_eq!(shard.attempts, 3);
        assert_eq!(shard.cause, FaultCause::CorruptOutput);
        let r = &cluster.stats().rounds()[0];
        assert_eq!(r.faults.shards_dropped(), 1);
        assert_eq!(r.faults.rejections(), 3);
        // Shuffle accounting only counts surviving outputs.
        assert_eq!(r.items_out, 2);
    }

    #[test]
    fn straggle_inflates_charged_time_but_keeps_output() {
        let plan = FaultPlan::explicit(vec![ScheduledFault {
            round: 0,
            machine: 0,
            attempt: 0,
            kind: FaultKind::Straggle { factor: 100.0 },
        }]);
        let mut cluster =
            SimulatedCluster::new(config(2, 100_000)).with_fault_injection(FaultConfig::new(plan));
        let items: Vec<u64> = (0..40_000).collect();
        let parts = partition::chunks(&items, 2);
        let sums = cluster
            .run_round(
                "busy",
                &parts,
                |_, xs| xs.iter().map(|x| x.wrapping_mul(2654435761)).sum::<u64>(),
                |_| 1,
            )
            .unwrap();
        assert_eq!(sums.len(), 2);
        let r = &cluster.stats().rounds()[0];
        assert_eq!(r.faults.stragglers(), 1);
        // The straggler's inflated time dominates the charged round time
        // but not the sequential (real work) time.
        assert!(r.simulated_time > r.sequential_time);
    }

    #[test]
    fn backoff_is_charged_into_simulated_time() {
        let plan = FaultPlan::explicit(vec![ScheduledFault {
            round: 0,
            machine: 0,
            attempt: 0,
            kind: FaultKind::Crash,
        }]);
        let policy = FaultPolicy {
            max_attempts: 3,
            backoff: crate::faults::Backoff {
                base: Duration::from_secs(60),
                exponential: false,
            },
            speculation: None,
        };
        let mut cluster = SimulatedCluster::new(config(2, 100))
            .with_fault_injection(FaultConfig::new(plan).with_policy(policy));
        cluster
            .run_round("sum", &[vec![1u64]], |_, xs| xs.iter().sum::<u64>(), |_| 1)
            .unwrap();
        let r = &cluster.stats().rounds()[0];
        // One retry with a 60 s fixed backoff: the charged time must
        // include it, the real work time must not.
        assert!(r.simulated_time >= Duration::from_secs(60));
        assert!(r.sequential_time < Duration::from_secs(1));
    }

    #[test]
    fn validator_rejection_triggers_retry_and_then_failure() {
        // No injected faults at all: the validator itself rejects machine
        // 0's output every time.
        let faults = FaultConfig::new(FaultPlan::explicit(vec![]))
            .with_policy(FaultPolicy::with_max_attempts(2));
        let mut cluster = SimulatedCluster::new(config(2, 100)).with_fault_injection(faults);
        let err = cluster
            .run_round_validated(
                "sum",
                &[vec![1u64], vec![2u64]],
                |_, xs| xs.iter().sum::<u64>(),
                |_| 1,
                |i, _| i != 0,
            )
            .unwrap_err();
        assert_eq!(
            err,
            MapReduceError::RoundFailed {
                round: 0,
                machine: 0,
                attempts: 2,
                source: FaultCause::ValidationFailed,
            }
        );
    }

    #[test]
    fn speculation_races_the_straggler_and_charges_the_winner() {
        // Machine 0 straggles enormously on every attempt it runs directly,
        // but the speculative copy (attempt 1) is clean.
        let plan = FaultPlan::explicit(vec![ScheduledFault {
            round: 0,
            machine: 0,
            attempt: 0,
            kind: FaultKind::Straggle { factor: 1000.0 },
        }]);
        let policy = FaultPolicy {
            max_attempts: 3,
            backoff: crate::faults::Backoff::NONE,
            speculation: Some(crate::faults::Speculation { threshold: 2.0 }),
        };
        let mut cluster = SimulatedCluster::new(config(4, 100_000))
            .with_fault_injection(FaultConfig::new(plan).with_policy(policy));
        let items: Vec<u64> = (0..80_000).collect();
        let parts = partition::chunks(&items, 4);
        let sums = cluster
            .run_round(
                "busy",
                &parts,
                |_, xs| xs.iter().map(|x| x.wrapping_mul(2654435761)).sum::<u64>(),
                |_| 1,
            )
            .unwrap();
        // Outputs are bit-identical regardless of who won the race.
        let expected: Vec<u64> = parts
            .iter()
            .map(|xs| xs.iter().map(|x| x.wrapping_mul(2654435761)).sum::<u64>())
            .collect();
        assert_eq!(sums, expected);
        let r = &cluster.stats().rounds()[0];
        assert_eq!(r.faults.speculations_launched(), 1);
        // With a 1000x straggler the clean copy must win the race.
        assert_eq!(r.faults.speculations_won(), 1);
    }

    #[test]
    fn threaded_executor_returns_bit_identical_outputs_at_any_width() {
        let items: Vec<u64> = (0..10_000).collect();
        let parts = partition::chunks(&items, 8);
        let reduce = |_: usize, xs: &[u64]| xs.iter().map(|x| x.wrapping_mul(31)).sum::<u64>();

        let mut simulated = Cluster::new(config(8, 10_000));
        let expected = simulated.run_round("sum", &parts, reduce, |_| 1).unwrap();
        assert_eq!(simulated.stats().rounds()[0].executor, Executor::Simulated);

        for threads in [1, 2, 3, 8] {
            let mut threaded = Cluster::threaded(config(8, 10_000), threads);
            assert_eq!(threaded.executor(), Executor::threads(threads));
            let out = threaded.run_round("sum", &parts, reduce, |_| 1).unwrap();
            assert_eq!(out, expected, "threads = {threads}");
            let r = &threaded.stats().rounds()[0];
            assert_eq!(r.executor, Executor::threads(threads));
            assert!(r.wall_time > Duration::ZERO);
        }
    }

    #[test]
    fn threaded_executor_survives_seeded_chaos_bit_identically() {
        let items: Vec<u64> = (0..10_000).collect();
        let parts = partition::chunks(&items, 8);
        let reduce = |_: usize, xs: &[u64]| xs.iter().map(|x| x.wrapping_mul(31)).sum::<u64>();

        let mut clean = Cluster::new(config(8, 10_000));
        let clean_out = clean.run_round("sum", &parts, reduce, |_| 1).unwrap();

        // The identical fault plan (retries, stragglers, corruption) under
        // the threaded executor, with speculation racing on the wall clock:
        // every partition eventually succeeds, so the outputs must match the
        // fault-free simulated round bit for bit.
        let faults = FaultConfig::new(FaultPlan::seeded(1234))
            .with_policy(FaultPolicy::with_max_attempts(64));
        let mut chaotic = Cluster::threaded(config(8, 10_000), 4).with_fault_injection(faults);
        let chaotic_out = chaotic.run_round("sum", &parts, reduce, |_| 1).unwrap();
        assert_eq!(clean_out, chaotic_out);
        let summary = chaotic.stats().fault_summary();
        assert_eq!(summary.executor, Executor::threads(4));
    }

    #[test]
    fn threaded_degradable_round_keeps_drop_provenance() {
        let plan = FaultPlan::explicit(
            (0..3)
                .map(|attempt| ScheduledFault {
                    round: 0,
                    machine: 1,
                    attempt,
                    kind: FaultKind::Crash,
                })
                .collect(),
        );
        let mut cluster =
            Cluster::threaded(config(4, 100), 3).with_fault_injection(FaultConfig::new(plan));
        let parts: Vec<Vec<u64>> = vec![vec![1, 2], vec![3, 4, 5], vec![6]];
        let out = cluster
            .run_round_degradable("sum", &parts, |_, xs| xs.iter().sum::<u64>(), |_| 1)
            .unwrap();
        assert_eq!(out.outputs, vec![Some(3), None, Some(6)]);
        assert_eq!(out.dropped.len(), 1);
        assert_eq!(out.dropped[0].machine, 1);
        assert_eq!(out.dropped[0].cause, FaultCause::Crashed);
    }

    #[test]
    fn seeded_chaos_with_enough_attempts_reproduces_fault_free_outputs() {
        let items: Vec<u64> = (0..10_000).collect();
        let parts = partition::chunks(&items, 8);
        let reduce = |_: usize, xs: &[u64]| xs.iter().map(|x| x.wrapping_mul(31)).sum::<u64>();

        let mut clean = SimulatedCluster::new(config(8, 10_000));
        let clean_out = clean.run_round("sum", &parts, reduce, |_| 1).unwrap();

        // Default seeded rates with a deep attempt budget: every partition
        // succeeds eventually, outputs must match bit-for-bit.
        let faults = FaultConfig::new(FaultPlan::seeded(1234))
            .with_policy(FaultPolicy::with_max_attempts(64));
        let mut chaotic = SimulatedCluster::new(config(8, 10_000)).with_fault_injection(faults);
        let chaotic_out = chaotic.run_round("sum", &parts, reduce, |_| 1).unwrap();
        assert_eq!(clean_out, chaotic_out);
    }
}
