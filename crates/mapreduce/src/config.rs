//! Cluster configuration: number of machines and per-machine capacity.

use serde::{Deserialize, Serialize};

/// Configuration of the simulated MapReduce cluster.
///
/// The paper fixes the number of machines to `m = 50` for every experiment
/// and reasons about a per-machine capacity `c` measured in points:
/// the two-round MRG case requires `n/m ≤ c` and `k·m ≤ c` (Lemma 2), and
/// the multi-round analysis (Lemma 3 / Inequality (1)) kicks in when
/// `k·m > c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of simulated machines (the paper's `m`).
    pub machines: usize,
    /// Per-machine capacity in points (the paper's `c`).
    pub capacity: usize,
}

impl ClusterConfig {
    /// The paper's default machine count.
    pub const PAPER_MACHINES: usize = 50;

    /// Creates a configuration with `machines` machines of capacity
    /// `capacity` points each.
    ///
    /// # Panics
    ///
    /// Panics if either value is zero.
    pub fn new(machines: usize, capacity: usize) -> Self {
        assert!(machines > 0, "a cluster needs at least one machine");
        assert!(capacity > 0, "machine capacity must be positive");
        Self { machines, capacity }
    }

    /// The paper's setup: 50 machines, with capacity chosen large enough to
    /// hold an `n/m`-point partition and a `k·m`-point sample, i.e. the
    /// "two-round case" capacity `max(ceil(n/m), k·m)`.
    pub fn paper_default(n: usize, k: usize) -> Self {
        let m = Self::PAPER_MACHINES;
        let capacity = (n.div_ceil(m)).max(k * m).max(1);
        Self::new(m, capacity)
    }

    /// Total number of points the cluster can hold across all machines.
    pub fn total_capacity(&self) -> usize {
        self.machines * self.capacity
    }

    /// Whether a data set of `n` points fits in the cluster at all
    /// (`m · c ≥ n`, the paper's minimum requirement for small `k`).
    pub fn fits(&self, n: usize) -> bool {
        self.total_capacity() >= n
    }

    /// Whether the two-round MRG preconditions of Lemma 2 hold for an
    /// instance with `n` points and `k` centers: `n/m ≤ c` and `k·m ≤ c`.
    pub fn allows_two_round(&self, n: usize, k: usize) -> bool {
        n.div_ceil(self.machines) <= self.capacity && k * self.machines <= self.capacity
    }

    /// The machine-count bound of Inequality (1) after `i` reduction rounds:
    /// `m(i) ≤ m·(k/c)^i + (1 − (k/c)^i) / (1 − k/c)`.
    ///
    /// Returns `None` when `k ≥ c`, in which case the recurrence does not
    /// shrink and the paper notes the algorithm cannot finish without
    /// external memory.
    pub fn machines_after_rounds(&self, k: usize, rounds: u32) -> Option<f64> {
        let ratio = k as f64 / self.capacity as f64;
        if ratio >= 1.0 {
            return None;
        }
        let m = self.machines as f64;
        let r_i = ratio.powi(rounds as i32);
        Some(m * r_i + (1.0 - r_i) / (1.0 - ratio))
    }

    /// The number of reduction rounds MRG needs before the surviving sample
    /// fits on a single machine, following the Lemma 3 recurrence: starting
    /// from `n` points on `m` machines, each round turns the current point
    /// count `s` into `k · ceil(s / c)` (one GON run of `k` centers per
    /// occupied machine), and the loop ends once `s ≤ c`.
    ///
    /// Returns `None` if the recurrence stops shrinking before fitting
    /// (which happens when `k ≥ c`).
    pub fn rounds_needed(&self, n: usize, k: usize) -> Option<u32> {
        if n == 0 {
            return Some(0);
        }
        if k >= self.capacity && n > self.capacity {
            return None;
        }
        let mut s = n;
        let mut rounds = 0u32;
        while s > self.capacity {
            let machines_needed = s.div_ceil(self.capacity).max(1);
            let next = k.saturating_mul(machines_needed);
            rounds += 1;
            if next >= s {
                // No progress: the sample no longer shrinks.
                return None;
            }
            s = next;
        }
        Some(rounds + 1) // +1 for the final single-machine round.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_inputs() {
        let c = ClusterConfig::new(50, 1000);
        assert_eq!(c.machines, 50);
        assert_eq!(c.capacity, 1000);
        assert_eq!(c.total_capacity(), 50_000);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn new_rejects_zero_machines() {
        ClusterConfig::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn new_rejects_zero_capacity() {
        ClusterConfig::new(10, 0);
    }

    #[test]
    fn paper_default_uses_fifty_machines_and_fits_both_rounds() {
        let c = ClusterConfig::paper_default(1_000_000, 100);
        assert_eq!(c.machines, 50);
        assert!(c.allows_two_round(1_000_000, 100));
        assert!(c.fits(1_000_000));
    }

    #[test]
    fn fits_and_two_round_preconditions() {
        let c = ClusterConfig::new(10, 100);
        assert!(c.fits(1000));
        assert!(!c.fits(1001));
        // n/m = 100 <= 100 and k*m = 50 <= 100.
        assert!(c.allows_two_round(1000, 5));
        // k*m = 200 > 100 -> needs more rounds.
        assert!(!c.allows_two_round(1000, 20));
        // n/m = 101 > 100.
        assert!(!c.allows_two_round(1010, 5));
    }

    #[test]
    fn machines_after_rounds_matches_inequality_one() {
        let c = ClusterConfig::new(50, 1000);
        // k/c = 0.1: after one round m(1) <= 50*0.1 + (1-0.1)/(1-0.1) = 6.
        let bound = c.machines_after_rounds(100, 1).unwrap();
        assert!((bound - 6.0).abs() < 1e-9);
        // As i grows the bound approaches 1/(1-k/c).
        let limit = c.machines_after_rounds(100, 30).unwrap();
        assert!((limit - 1.0 / 0.9).abs() < 1e-6);
        assert!(c.machines_after_rounds(1000, 1).is_none());
    }

    #[test]
    fn rounds_needed_two_round_case() {
        // n/m <= c and k*m <= c: classic 2-round MRG.
        let c = ClusterConfig::new(50, 20_000);
        assert_eq!(c.rounds_needed(1_000_000, 100), Some(2));
    }

    #[test]
    fn rounds_needed_when_everything_fits_on_one_machine() {
        let c = ClusterConfig::new(50, 10_000);
        assert_eq!(c.rounds_needed(5_000, 10), Some(1));
        assert_eq!(c.rounds_needed(0, 10), Some(0));
    }

    #[test]
    fn rounds_needed_multi_round_case() {
        // Capacity too small for k*m after one round: k*m = 5*50 = 250 > c = 100,
        // so a second reduction round is required before the final round.
        let c = ClusterConfig::new(50, 100);
        let rounds = c.rounds_needed(5_000, 5).unwrap();
        assert!(rounds >= 3, "expected at least three rounds, got {rounds}");
    }

    #[test]
    fn rounds_needed_detects_non_convergence() {
        // k >= c: selecting k centers per machine cannot shrink the sample.
        let c = ClusterConfig::new(10, 50);
        assert_eq!(c.rounds_needed(10_000, 60), None);
    }
}
