//! Error types for the simulated MapReduce substrate.

use std::fmt;

/// Errors raised by the simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapReduceError {
    /// A reducer was handed more points than one machine can hold.
    CapacityExceeded {
        /// Index of the offending reducer/machine.
        machine: usize,
        /// Number of items assigned to it.
        items: usize,
        /// The per-machine capacity.
        capacity: usize,
    },
    /// More partitions were supplied than there are machines.
    TooManyPartitions {
        /// Number of partitions supplied.
        partitions: usize,
        /// Number of machines available.
        machines: usize,
    },
    /// The whole input does not fit in the cluster (`m · c < n`).
    ClusterTooSmall {
        /// Total number of items.
        items: usize,
        /// Total cluster capacity.
        total_capacity: usize,
    },
    /// A round was started with no input partitions.
    EmptyRound,
}

impl fmt::Display for MapReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapReduceError::CapacityExceeded {
                machine,
                items,
                capacity,
            } => write!(
                f,
                "machine {machine} was assigned {items} items but has capacity {capacity}"
            ),
            MapReduceError::TooManyPartitions {
                partitions,
                machines,
            } => write!(
                f,
                "{partitions} partitions supplied but the cluster has only {machines} machines"
            ),
            MapReduceError::ClusterTooSmall {
                items,
                total_capacity,
            } => write!(
                f,
                "input of {items} items exceeds the total cluster capacity of {total_capacity}"
            ),
            MapReduceError::EmptyRound => {
                write!(f, "a MapReduce round needs at least one partition")
            }
        }
    }
}

impl std::error::Error for MapReduceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_numbers() {
        let e = MapReduceError::CapacityExceeded {
            machine: 3,
            items: 100,
            capacity: 50,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains("100") && s.contains("50"));

        let e = MapReduceError::TooManyPartitions {
            partitions: 10,
            machines: 5,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains('5'));

        let e = MapReduceError::ClusterTooSmall {
            items: 7,
            total_capacity: 6,
        };
        assert!(e.to_string().contains('7') && e.to_string().contains('6'));

        assert!(MapReduceError::EmptyRound
            .to_string()
            .contains("at least one"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MapReduceError::EmptyRound, MapReduceError::EmptyRound);
        assert_ne!(
            MapReduceError::EmptyRound,
            MapReduceError::TooManyPartitions {
                partitions: 1,
                machines: 1
            }
        );
    }
}
