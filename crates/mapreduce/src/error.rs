//! Error types for the simulated MapReduce substrate.

use crate::faults::FaultCause;
use std::fmt;

/// Errors raised by the simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapReduceError {
    /// A reducer was handed more points than one machine can hold.
    CapacityExceeded {
        /// Index of the offending reducer/machine.
        machine: usize,
        /// Number of items assigned to it.
        items: usize,
        /// The per-machine capacity.
        capacity: usize,
    },
    /// More partitions were supplied than there are machines.
    TooManyPartitions {
        /// Number of partitions supplied.
        partitions: usize,
        /// Number of machines available.
        machines: usize,
    },
    /// The whole input does not fit in the cluster (`m · c < n`).
    ClusterTooSmall {
        /// Total number of items.
        items: usize,
        /// Total cluster capacity.
        total_capacity: usize,
    },
    /// A round was started with no input partitions.
    EmptyRound,
    /// A reducer exhausted its attempt budget under fault injection and the
    /// round was not allowed to degrade.  `source` (also exposed through
    /// [`std::error::Error::source`]) says how the final attempt died.
    RoundFailed {
        /// 0-based round index within the cluster's job.
        round: usize,
        /// The machine whose partition could not be completed.
        machine: usize,
        /// Number of attempts that were made.
        attempts: usize,
        /// The failure cause of the final attempt.
        source: FaultCause,
    },
    /// A round produced a different number of outputs than partitions — a
    /// substrate invariant violation (e.g. a single-reducer round that did
    /// not return exactly one output).
    MissingOutput {
        /// Label of the offending round.
        label: String,
    },
}

impl fmt::Display for MapReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapReduceError::CapacityExceeded {
                machine,
                items,
                capacity,
            } => write!(
                f,
                "machine {machine} was assigned {items} items but has capacity {capacity}"
            ),
            MapReduceError::TooManyPartitions {
                partitions,
                machines,
            } => write!(
                f,
                "{partitions} partitions supplied but the cluster has only {machines} machines"
            ),
            MapReduceError::ClusterTooSmall {
                items,
                total_capacity,
            } => write!(
                f,
                "input of {items} items exceeds the total cluster capacity of {total_capacity}"
            ),
            MapReduceError::EmptyRound => {
                write!(f, "a MapReduce round needs at least one partition")
            }
            MapReduceError::RoundFailed {
                round,
                machine,
                attempts,
                source,
            } => write!(
                f,
                "round {round} failed: machine {machine} exhausted {attempts} attempts ({source})"
            ),
            MapReduceError::MissingOutput { label } => write!(
                f,
                "round {label:?} did not produce one output per partition"
            ),
        }
    }
}

impl std::error::Error for MapReduceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MapReduceError::RoundFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_numbers() {
        let e = MapReduceError::CapacityExceeded {
            machine: 3,
            items: 100,
            capacity: 50,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains("100") && s.contains("50"));

        let e = MapReduceError::TooManyPartitions {
            partitions: 10,
            machines: 5,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains('5'));

        let e = MapReduceError::ClusterTooSmall {
            items: 7,
            total_capacity: 6,
        };
        assert!(e.to_string().contains('7') && e.to_string().contains('6'));

        assert!(MapReduceError::EmptyRound
            .to_string()
            .contains("at least one"));

        let e = MapReduceError::RoundFailed {
            round: 2,
            machine: 4,
            attempts: 3,
            source: FaultCause::Crashed,
        };
        let s = e.to_string();
        assert!(s.contains('2') && s.contains('4') && s.contains('3') && s.contains("crashed"));

        let e = MapReduceError::MissingOutput {
            label: "final".to_string(),
        };
        assert!(e.to_string().contains("final"));
    }

    #[test]
    fn round_failed_carries_its_cause_as_source() {
        use std::error::Error;
        let e = MapReduceError::RoundFailed {
            round: 0,
            machine: 1,
            attempts: 3,
            source: FaultCause::CorruptOutput,
        };
        let source = e.source().expect("RoundFailed must expose a source");
        assert!(source.to_string().contains("corrupt"));
        assert!(MapReduceError::EmptyRound.source().is_none());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MapReduceError::EmptyRound, MapReduceError::EmptyRound);
        assert_ne!(
            MapReduceError::EmptyRound,
            MapReduceError::TooManyPartitions {
                partitions: 1,
                machines: 1
            }
        );
    }
}
