//! Property tests for the mixed-precision certification contract of the
//! evaluation layer: the `f64`-refined `covering_radius` over an `f32`
//! store must sit within *input-rounding* distance of the all-`f64` value.
//!
//! The documented bound: storing a point `x` at `f32` perturbs each
//! coordinate by at most `|x_i| · 2^-24`, so every pairwise Euclidean
//! distance moves by at most `‖δa‖ + ‖δb‖ ≤ 2 · 2^-24 · √dim · max|coord|`,
//! and a max-of-mins moves by no more than its worst constituent distance.
//! Because the evaluation arithmetic itself is `f64` at either precision
//! (the `wide_cmp_*` certification scans), input rounding is the *only*
//! error source — which is exactly what this proptest pins down.

use kcenter_core::evaluate::{covered_within, covering_radius, distances_to_centers};
use kcenter_metric::{Euclidean, FlatPoints, Scalar, VecSpace};
use proptest::prelude::*;

/// The input-rounding bound for one Euclidean distance over `dim`-dimensional
/// points with coordinates bounded by `max_abs`, with a 2× safety margin.
fn input_rounding_tol(dim: usize, max_abs: f64) -> f64 {
    4.0 * f32::UNIT_ROUNDOFF * (dim as f64).sqrt() * (max_abs + 1.0)
}

/// Strategy: an f64 coordinate cloud (n in 4..=64, dim in 1..=16) plus its
/// exact parameters.
fn cloud() -> impl Strategy<Value = (Vec<f64>, usize)> {
    (1usize..=16, 4usize..=64).prop_flat_map(|(dim, n)| {
        prop::collection::vec(-1000.0f64..1000.0, dim * n).prop_map(move |coords| (coords, dim))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For a fixed center set, the covering radius over the f32 store is
    /// within the documented input-rounding bound of the all-f64 value.
    #[test]
    fn covering_radius_under_f32_storage_is_within_input_rounding((coords, dim) in cloud()) {
        let max_abs = coords.iter().fold(0.0f64, |m, c| m.max(c.abs()));
        let flat64 = FlatPoints::<f64>::from_coords(coords.clone(), dim).unwrap();
        let flat32 = flat64.to_precision::<f32>();
        let space64 = VecSpace::from_flat(flat64);
        let space32 = VecSpace::from_flat(flat32);

        let n = coords.len() / dim;
        let centers: Vec<usize> = vec![0, n / 3, (2 * n) / 3];

        let r64 = covering_radius(&space64, &centers);
        let r32 = covering_radius(&space32, &centers);
        let tol = input_rounding_tol(dim, max_abs);
        prop_assert!(
            (r64 - r32).abs() <= tol,
            "covering radius drifted past input rounding: |{r64} - {r32}| > {tol}"
        );

        // The f32-certified radius really covers the f32 store (self
        // -consistency of the certification path), with only the final f64
        // rounding as slack.
        prop_assert!(covered_within(&space32, &centers, r32 * (1.0 + 1e-12) + 1e-12));

        // Per-point certified distances obey the same bound.
        let d64 = distances_to_centers(&space64, &centers);
        let d32 = distances_to_centers(&space32, &centers);
        for (i, (a, b)) in d64.iter().zip(&d32).enumerate() {
            prop_assert!(
                (a - b).abs() <= tol,
                "point {i}: certified distance drifted: |{a} - {b}| > {tol}"
            );
        }
    }

    /// The certification path is bit-for-bit deterministic: evaluating the
    /// same store twice gives identical results, at either precision.
    #[test]
    fn certified_evaluation_is_deterministic((coords, dim) in cloud()) {
        let flat64 = FlatPoints::<f64>::from_coords(coords, dim).unwrap();
        let flat32 = flat64.to_precision::<f32>();
        let n = flat64.len();
        let centers: Vec<usize> = vec![0, n / 2];

        let s64a = VecSpace::from_flat(flat64.clone());
        let s64b = VecSpace::from_flat(flat64);
        prop_assert_eq!(
            covering_radius(&s64a, &centers).to_bits(),
            covering_radius(&s64b, &centers).to_bits()
        );
        let s32a = VecSpace::from_flat(flat32.clone());
        let s32b = VecSpace::from_flat(flat32);
        prop_assert_eq!(
            covering_radius(&s32a, &centers).to_bits(),
            covering_radius(&s32b, &centers).to_bits()
        );
    }
}

/// Deterministic (non-proptest) check at a size that crosses the parallel
/// evaluation threshold: the rayon path must agree with the sequential one
/// bit-for-bit at both precisions.
#[test]
fn parallel_certified_radius_matches_sequential_at_both_precisions() {
    let n = 20_000usize;
    let dim = 3usize;
    let coords: Vec<f64> = (0..n * dim)
        .map(|i| {
            let v = (i as u64)
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(97);
            ((v >> 33) % 100_000) as f64 / 50.0 - 1000.0
        })
        .collect();
    let flat64 = FlatPoints::<f64>::from_coords(coords, dim).unwrap();
    let flat32 = flat64.to_precision::<f32>();
    let centers = vec![0usize, 7_000, 19_999];

    fn seq_radius<S: Scalar>(space: &VecSpace<Euclidean, S>, centers: &[usize]) -> f64 {
        use kcenter_metric::MetricSpace;
        (0..space.len())
            .map(|p| space.distance_to_set(p, centers))
            .fold(0.0f64, f64::max)
    }

    let space64 = VecSpace::from_flat(flat64);
    let space32 = VecSpace::from_flat(flat32);
    // covering_radius prunes with the early-exit bound; the pruned result
    // must still be the exact maximum the naive scan finds.
    assert_eq!(
        covering_radius(&space64, &centers).to_bits(),
        seq_radius(&space64, &centers).to_bits()
    );
    assert_eq!(
        covering_radius(&space32, &centers).to_bits(),
        seq_radius(&space32, &centers).to_bits()
    );
}
