//! Outlier-variant parity (ISSUE 9 satellites).
//!
//! Two promises are pinned here:
//!
//! 1. **z = 0 is the plain objective, to the bit.**  Evaluating any
//!    solver's center set with `evaluate_with_outliers(…, 0)` must
//!    reproduce the solver's own certified radius bit-for-bit — across
//!    both storage precisions, every available kernel backend, and both
//!    assignment arms, because certification always runs in the same
//!    `wide_cmp_*` space regardless of how the selection scans were
//!    dispatched.
//! 2. **Kept ≤ full, always.**  The certified radius over the kept
//!    `n − z` points never exceeds the full-space radius, for any cloud,
//!    any center set and any `z` (a proptest, not an example).
//!
//! A third satellite lives here because this crate has the solvers and the
//! data crate in scope: **duplicate-heavy data never panics any solver**
//! — fully degenerate inputs (down to `n` copies of one point) run through
//! GON, HS, MRG and EIM, and ties resolve to the lowest index per the
//! documented selection contract.

use std::sync::Mutex;

use kcenter_core::evaluate::covering_radius;
use kcenter_core::outliers::evaluate_with_outliers;
use kcenter_core::prelude::*;
use kcenter_data::{DupGenerator, PlantedOutlierGenerator, PointGenerator};
use kcenter_metric::grid::{self, AssignChoice, AssignMode};
use kcenter_metric::kernel::simd::{self, KernelBackend};
use kcenter_metric::{Euclidean, FlatPoints, Scalar, VecSpace};
use proptest::prelude::*;

/// Serialises tests that flip the process-global kernel / assignment state.
static DISPATCH_LOCK: Mutex<()> = Mutex::new(());

fn space_of<S: Scalar>(coords: &[f64], dim: usize) -> VecSpace<Euclidean, S> {
    let coords: Vec<S> = coords.iter().map(|&c| S::from_f64(c)).collect();
    VecSpace::from_flat(FlatPoints::from_coords(coords, dim).unwrap())
}

/// Every kernel backend available in this build/host.
fn backends() -> Vec<KernelBackend> {
    [
        KernelBackend::Scalar,
        KernelBackend::Portable,
        KernelBackend::Avx2,
    ]
    .into_iter()
    .filter(|b| b.is_available())
    .collect()
}

/// z = 0 parity for one monomorphised precision under the currently
/// installed dispatch state.
fn assert_z0_parity_at<S: Scalar>(coords: &[f64], dim: usize, k: usize) {
    let space = space_of::<S>(coords, dim);
    let sol = GonzalezConfig::new(k).solve(&space).unwrap();
    let eval = evaluate_with_outliers(&space, &sol.centers, 0);
    assert_eq!(
        eval.radius.to_bits(),
        sol.radius.to_bits(),
        "z=0 outlier radius diverged from the plain certified radius ({})",
        S::NAME
    );
    assert_eq!(eval.full_radius.to_bits(), sol.radius.to_bits());
    assert!(eval.dropped.is_empty());
    // And against the evaluation entry point directly.
    let plain = covering_radius(&space, &sol.centers);
    assert_eq!(eval.radius.to_bits(), plain.to_bits());
}

#[test]
fn z_zero_is_bit_identical_across_precisions_kernels_and_assign_arms() {
    let _guard = DISPATCH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // An integer lattice cloud with planted duplicates: exactly
    // representable at both precisions, tie-heavy on purpose.
    let n = 400;
    let dim = 3;
    let coords: Vec<f64> = (0..n * dim)
        .map(|i| f64::from((i as i32 * 37 + (i as i32 / 5) * 11) % 41))
        .collect();
    for backend in backends() {
        simd::set_active(backend).unwrap();
        for arm in [AssignMode::Dense, AssignMode::Grid] {
            grid::set_choice(AssignChoice::Fixed(arm));
            for k in [1, 3, 8] {
                assert_z0_parity_at::<f64>(&coords, dim, k);
                assert_z0_parity_at::<f32>(&coords, dim, k);
            }
        }
    }
    // Restore the build's defaults so sibling tests see pristine dispatch.
    grid::set_choice(AssignChoice::Auto);
    simd::set_active(kcenter_metric::KernelChoice::Auto.resolve().unwrap()).unwrap();
}

#[test]
fn duplicate_heavy_data_never_panics_any_solver() {
    // (n, distinct) grids including k far above the number of distinct
    // locations and the fully degenerate single-location case.
    for (n, distinct) in [(200, 1), (300, 2), (500, 7), (400, 64)] {
        let flat = DupGenerator::new(n, distinct).generate_flat_at::<f64>(9);
        let space = VecSpace::from_flat(flat);
        for k in [1, 2, distinct, distinct + 5, 16] {
            let gon = GonzalezConfig::new(k).solve(&space).unwrap();
            assert!(gon.centers.len() <= k && !gon.centers.is_empty());
            let hs = HochbaumShmoysConfig::new(k).solve(&space).unwrap();
            assert!(hs.centers.len() <= k);
            let mrg = MrgConfig::new(k)
                .with_machines(4)
                .with_unchecked_capacity()
                .run(&space)
                .unwrap();
            assert!(mrg.solution.centers.len() <= k);
            let eim = EimConfig::new(k)
                .with_machines(4)
                .with_seed(7)
                .run(&space)
                .unwrap();
            assert!(eim.solution.centers.len() <= k);
            // Once every distinct location is a center the radius is 0.
            if k >= distinct {
                assert_eq!(gon.radius, 0.0);
            }
        }
    }
}

#[test]
fn fully_degenerate_data_ties_resolve_lowest_index() {
    // n identical points: the first center is position 0 (the documented
    // default) and the selection loop stops rather than duplicating it.
    let flat = DupGenerator::new(120, 1).generate_flat_at::<f64>(3);
    let space = VecSpace::from_flat(flat);
    let sol = GonzalezConfig::new(5).solve(&space).unwrap();
    assert_eq!(sol.centers, vec![0]);
    assert_eq!(sol.radius, 0.0);
}

#[test]
fn planted_outlier_workload_improves_strictly_under_drops() {
    // The library-level version of the shape test: on GAU+OUT, dropping
    // exactly the planted z strictly shrinks the certified radius.
    let gen = PlantedOutlierGenerator::new(2_000, 5, 20);
    let space = VecSpace::from_flat(gen.generate_flat_at::<f64>(11));
    let sol = GonzalezConfig::new(5).solve(&space).unwrap();
    let eval = evaluate_with_outliers(&space, &sol.centers, 20);
    assert!(
        eval.radius < eval.full_radius,
        "dropping the planted outliers must strictly improve: kept {} vs full {}",
        eval.radius,
        eval.full_radius
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The certified kept radius never exceeds the full radius — any cloud,
    /// any k, any z (including z ≥ n), at both precisions.
    #[test]
    fn kept_radius_never_exceeds_full_radius(
        dim in 1usize..=4,
        n in 2usize..=160,
        k in 1usize..=6,
        z_frac in 0.0f64..=1.2,
        seed in 0u64..512,
    ) {
        let coords: Vec<f64> = {
            // Cheap deterministic pseudo-cloud: SplitMix-style hash of the
            // index, folded to a small range.
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            (0..n * dim)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((s >> 33) % 1000) as f64 / 10.0
                })
                .collect()
        };
        let z = ((n as f64) * z_frac) as usize;

        let f64_space = space_of::<f64>(&coords, dim);
        let sol = GonzalezConfig::new(k).solve(&f64_space).unwrap();
        let eval = evaluate_with_outliers(&f64_space, &sol.centers, z);
        prop_assert!(eval.radius <= eval.full_radius);
        prop_assert_eq!(eval.z(), z.min(n));
        // Monotone in z as well: dropping more never hurts.
        if z > 0 {
            let fewer = evaluate_with_outliers(&f64_space, &sol.centers, z - 1);
            prop_assert!(eval.radius <= fewer.radius);
        }

        let f32_space = space_of::<f32>(&coords, dim);
        let sol32 = GonzalezConfig::new(k).solve(&f32_space).unwrap();
        let eval32 = evaluate_with_outliers(&f32_space, &sol32.centers, z);
        prop_assert!(eval32.radius <= eval32.full_radius);
    }
}
