//! Property tests for the weighted-coreset layer (ISSUE 3 satellite):
//!
//! 1. **Certificate** — a Gonzalez coreset of size `t` yields a weighted
//!    k-center solution whose certified full-data radius respects the
//!    construction-radius certificate: it is within `construction_radius`
//!    of the solution's own coreset radius (the exact triangle-inequality
//!    form), and bounded against the raw-space solution by the provable
//!    `2·r_raw + 3·r_t` composition bound.
//! 2. **Unit weights** — the weighted solver entry points reproduce the
//!    unweighted solvers bit-for-bit, at both `f32` and `f64` storage.
//! 3. **Determinism** — EIM-built coresets are identical per
//!    `(seed, precision)` pair and differ across seeds.

use kcenter_core::coreset::GonzalezCoresetConfig;
use kcenter_core::evaluate::weighted_covering_radius_subset;
use kcenter_core::prelude::*;
use kcenter_core::{gonzalez, hochbaum_shmoys};
use kcenter_metric::{Euclidean, FlatPoints, MetricSpace as _, Scalar, VecSpace};
use proptest::prelude::*;

/// Strategy: an f64 coordinate cloud (n in 24..=120, dim in 1..=4) plus its
/// dimension — small enough for Hochbaum–Shmoys' quadratic candidate list.
fn cloud() -> impl Strategy<Value = (Vec<f64>, usize)> {
    (1usize..=4, 24usize..=120).prop_flat_map(|(dim, n)| {
        prop::collection::vec(-500.0f64..500.0, dim * n).prop_map(move |coords| (coords, dim))
    })
}

fn space_of(coords: Vec<f64>, dim: usize) -> VecSpace {
    VecSpace::from_flat(FlatPoints::<f64>::from_coords(coords, dim).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite (a): the coreset quality certificate.  For every solution
    /// selected on the coreset, the exact full-data radius is within the
    /// construction radius of the solution's coreset radius — and the
    /// composition against the raw-space greedy stays inside the provable
    /// `2·r_raw + 3·r_t` envelope.
    #[test]
    fn gonzalez_coreset_certificate_holds((coords, dim) in cloud(), k in 1usize..=5) {
        let space = space_of(coords, dim);
        let t = (space.len() / 3).max(k + 1);
        let coreset = GonzalezCoresetConfig::new(t)
            .with_machines(4)
            .build(&space)
            .unwrap();
        let r_t = coreset.construction_radius();

        let sol = coreset
            .solve(k, SequentialSolver::Gonzalez, FirstCenter::default())
            .unwrap();
        let full = sol.certify(&space);

        // The certificate: full radius within construction_radius of the
        // coreset-space radius, in both directions.
        prop_assert!(full <= sol.coreset_radius + r_t + 1e-9,
            "certificate violated: {full} > {} + {r_t}", sol.coreset_radius);
        prop_assert!(sol.coreset_radius <= full + 1e-9,
            "reps are real points, coreset radius cannot exceed full radius");
        prop_assert!((sol.radius_bound - (sol.coreset_radius + r_t)).abs() <= 1e-12);

        // Composition against the same solver on the raw space: GON on the
        // coreset is a 2-approximation of OPT over the coreset, and moving
        // between space and summary costs at most r_t per hop, so
        // full <= 2·OPT + 3·r_t <= 2·r_raw + 3·r_t.
        let raw = GonzalezConfig::new(k).solve(&space).unwrap();
        prop_assert!(
            full <= 2.0 * raw.radius + 3.0 * r_t + 1e-9,
            "composition bound violated: {full} > 2·{} + 3·{r_t}",
            raw.radius
        );
    }

    /// Satellite (b): unit weights reproduce the unweighted solvers
    /// bit-for-bit at both storage precisions.
    #[test]
    fn unit_weights_reproduce_unweighted_solvers_bit_for_bit(
        (coords, dim) in cloud(),
        k in 1usize..=5,
    ) {
        let flat64 = FlatPoints::<f64>::from_coords(coords, dim).unwrap();
        let flat32 = flat64.to_precision::<f32>();

        fn check<S: Scalar>(space: &VecSpace<Euclidean, S>, k: usize) {
            let subset: Vec<usize> = (0..space.len()).collect();
            let ones = vec![1u64; subset.len()];
            let gon_plain =
                gonzalez::select_centers(space, &subset, k, FirstCenter::default(), false);
            let gon_weighted = gonzalez::select_centers_weighted(
                space, &subset, &ones, k, FirstCenter::default(), false,
            );
            prop_assert_eq!(gon_plain, gon_weighted, "GON diverged at {}", S::NAME);
            let hs_plain = hochbaum_shmoys::select_centers(space, &subset, k);
            let hs_weighted = hochbaum_shmoys::select_centers_weighted(space, &subset, &ones, k);
            prop_assert_eq!(hs_plain, hs_weighted, "HS diverged at {}", S::NAME);
        }
        check(&VecSpace::from_flat(flat64), k);
        check(&VecSpace::from_flat(flat32), k);
    }

    /// The weighted covering radius with unit weights is exactly the
    /// unweighted one (same wide_cmp certification scan).
    #[test]
    fn unit_weighted_covering_radius_matches_unweighted((coords, dim) in cloud()) {
        let space = space_of(coords, dim);
        let n = kcenter_metric::MetricSpace::len(&space);
        let subset: Vec<usize> = (0..n).collect();
        let ones = vec![1u64; n];
        let centers = vec![0, n / 2];
        let weighted = weighted_covering_radius_subset(&space, &subset, &ones, &centers);
        let plain = covering_radius(&space, &centers);
        prop_assert_eq!(weighted, plain);
    }
}

/// Satellite (c): EIM-built coresets are deterministic per
/// `(seed, precision)` and respond to the seed.
#[test]
fn eim_coresets_are_deterministic_per_seed_and_precision() {
    let spec = kcenter_data::DatasetSpec::Gau {
        n: 4_000,
        k_prime: 5,
    };
    let config = EimConfig::new(2).with_epsilon(0.13).with_machines(8);

    fn build_at<S: Scalar>(
        spec: &kcenter_data::DatasetSpec,
        config: &EimConfig,
        seed: u64,
    ) -> (Vec<usize>, Vec<u64>, f64) {
        let space: VecSpace<Euclidean, S> = VecSpace::from_flat(spec.generate_flat_at::<S>(1));
        let coreset = config
            .clone()
            .with_seed(seed)
            .build_coreset(&space)
            .unwrap();
        (
            coreset.source_ids().to_vec(),
            coreset.weights().to_vec(),
            coreset.construction_radius(),
        )
    }

    for seed in [3u64, 9] {
        let a64 = build_at::<f64>(&spec, &config, seed);
        let b64 = build_at::<f64>(&spec, &config, seed);
        assert_eq!(a64, b64, "f64 build not deterministic at seed {seed}");
        let a32 = build_at::<f32>(&spec, &config, seed);
        let b32 = build_at::<f32>(&spec, &config, seed);
        assert_eq!(a32, b32, "f32 build not deterministic at seed {seed}");
    }
    // Different seeds sample differently (almost surely a different set).
    let x = build_at::<f64>(&spec, &config, 3);
    let y = build_at::<f64>(&spec, &config, 9);
    assert_ne!(x.0, y.0, "different seeds produced the same coreset");
}

/// The MapReduce build path is deterministic too (chunked partitions and
/// lowest-index tie-breaking leave no ordering freedom).
#[test]
fn mapreduce_gonzalez_build_is_deterministic() {
    let spec = kcenter_data::DatasetSpec::Unb {
        n: 3_000,
        k_prime: 4,
    };
    let space: VecSpace = VecSpace::from_flat(spec.generate_flat(7));
    let a = GonzalezCoresetConfig::new(50)
        .with_machines(6)
        .build(&space)
        .unwrap();
    let b = GonzalezCoresetConfig::new(50)
        .with_machines(6)
        .build(&space)
        .unwrap();
    assert_eq!(a.source_ids(), b.source_ids());
    assert_eq!(a.weights(), b.weights());
    assert_eq!(a.construction_radius(), b.construction_radius());
}
