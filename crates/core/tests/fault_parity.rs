//! Fault-tolerance parity properties.
//!
//! The fault layer's central promise: as long as every partition
//! eventually succeeds within its attempt budget, retries, stragglers and
//! speculation must not change a single bit of any driver's output — the
//! determinism tuple stays `(seed, precision, kernel, assign)`, never
//! "and the fault schedule".  These tests drive random seeded fault plans
//! through MRG, EIM and both coreset builders and demand bit-identical
//! results, plus pin the degrade-mode contract: a run that drops shards
//! must say exactly which fraction of the input its certificate still
//! covers.
//!
//! The executor is held to the same standard: running the same drivers on
//! the threaded executor at a *random* worker budget — with the same
//! random survivable fault plan active — must reproduce the simulated
//! run's outputs bit for bit, so "executor" never joins the determinism
//! tuple either.

use kcenter_core::prelude::*;
use kcenter_mapreduce::{
    Executor, FaultConfig, FaultKind, FaultPlan, FaultPolicy, FaultRates, ScheduledFault,
};
use kcenter_metric::{Point, VecSpace};
use proptest::prelude::*;

/// Deterministic pseudo-random cloud of `n` points in a 100x100 square.
fn cloud(n: usize, seed: u64) -> VecSpace {
    VecSpace::new(
        (0..n)
            .map(|i| {
                let v = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64)
                    .wrapping_mul(0xD129_0DDB_53C4_3E49);
                let x = (v % 10_000) as f64 / 100.0;
                let y = ((v >> 20) % 10_000) as f64 / 100.0;
                Point::xy(x, y)
            })
            .collect(),
    )
}

/// A random seeded fault plan whose 64-attempt budget makes eventual
/// success overwhelmingly certain (per-attempt failure stays below 45%,
/// so a shard failing all attempts has probability under 0.45^64).
fn chaotic_faults() -> impl Strategy<Value = FaultConfig> {
    (
        any::<u64>(),
        0.0f64..0.3,
        0.0f64..0.3,
        0.0f64..0.15,
        1.0f64..8.0,
    )
        .prop_map(|(seed, crash, straggle, corrupt, straggle_factor)| {
            let rates = FaultRates {
                crash,
                straggle,
                corrupt,
                straggle_factor,
            };
            FaultConfig::new(FaultPlan::seeded_with_rates(seed, rates))
                .with_policy(FaultPolicy::with_max_attempts(64))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mrg_output_is_bit_identical_under_survivable_faults(faults in chaotic_faults()) {
        let space = cloud(800, 41);
        let clean = MrgConfig::new(6).with_machines(8).run(&space).unwrap();
        let faulty = MrgConfig::new(6)
            .with_machines(8)
            .with_faults(faults)
            .run(&space)
            .unwrap();
        prop_assert_eq!(&clean.solution.centers, &faulty.solution.centers);
        prop_assert_eq!(clean.solution.radius, faulty.solution.radius);
        prop_assert_eq!(clean.mapreduce_rounds, faulty.mapreduce_rounds);
        prop_assert!(faulty.degraded.is_none());
    }

    #[test]
    fn eim_output_is_bit_identical_under_survivable_faults(faults in chaotic_faults()) {
        let space = cloud(800, 42);
        let config = EimConfig::new(3).with_machines(6).with_epsilon(0.13).with_seed(7);
        let clean = config.run(&space).unwrap();
        let faulty = config.clone().with_faults(faults).run(&space).unwrap();
        prop_assert_eq!(&clean.solution.centers, &faulty.solution.centers);
        prop_assert_eq!(clean.solution.radius, faulty.solution.radius);
        prop_assert_eq!(clean.iterations, faulty.iterations);
        prop_assert_eq!(clean.sample_size, faulty.sample_size);
        prop_assert!(faulty.degraded.is_none());
    }

    #[test]
    fn coreset_builds_and_solves_are_bit_identical_under_survivable_faults(
        faults in chaotic_faults()
    ) {
        let space = cloud(800, 43);

        let clean = GonzalezCoresetConfig::new(48).with_machines(6).build(&space).unwrap();
        let faulty = GonzalezCoresetConfig::new(48)
            .with_machines(6)
            .with_faults(faults.clone())
            .build(&space)
            .unwrap();
        prop_assert_eq!(clean.source_ids(), faulty.source_ids());
        prop_assert_eq!(clean.weights(), faulty.weights());
        prop_assert_eq!(clean.construction_radius(), faulty.construction_radius());
        prop_assert!(!faulty.is_partial());
        // The certified sweep cells downstream match bit-for-bit too.
        let solver = SequentialSolver::Gonzalez;
        let a = clean.solve(4, solver, FirstCenter::default()).unwrap();
        let b = faulty.solve(4, solver, FirstCenter::default()).unwrap();
        prop_assert_eq!(a, b);

        let config = EimConfig::new(3).with_machines(6).with_epsilon(0.13).with_seed(7);
        let clean = config.build_coreset(&space).unwrap();
        let faulty = config.clone().with_faults(faults).build_coreset(&space).unwrap();
        prop_assert_eq!(clean.source_ids(), faulty.source_ids());
        prop_assert_eq!(clean.weights(), faulty.weights());
        prop_assert_eq!(clean.construction_radius(), faulty.construction_radius());
        prop_assert!(!faulty.is_partial());
    }

    #[test]
    fn mrg_threaded_executor_matches_simulated_under_survivable_faults(
        threads in 1usize..=8,
        faults in chaotic_faults(),
    ) {
        let space = cloud(800, 45);
        let config = MrgConfig::new(6).with_machines(8).with_faults(faults);
        let simulated = config.clone().run(&space).unwrap();
        let threaded = config
            .with_executor(Executor::threads(threads))
            .run(&space)
            .unwrap();
        prop_assert_eq!(&simulated.solution.centers, &threaded.solution.centers);
        prop_assert_eq!(simulated.solution.radius, threaded.solution.radius);
        prop_assert_eq!(simulated.mapreduce_rounds, threaded.mapreduce_rounds);
        prop_assert!(threaded.degraded.is_none());
    }

    #[test]
    fn eim_threaded_executor_matches_simulated_under_survivable_faults(
        threads in 1usize..=8,
        faults in chaotic_faults(),
    ) {
        let space = cloud(800, 46);
        let config = EimConfig::new(3)
            .with_machines(6)
            .with_epsilon(0.13)
            .with_seed(7)
            .with_faults(faults);
        let simulated = config.clone().run(&space).unwrap();
        let threaded = config
            .with_executor(Executor::threads(threads))
            .run(&space)
            .unwrap();
        prop_assert_eq!(&simulated.solution.centers, &threaded.solution.centers);
        prop_assert_eq!(simulated.solution.radius, threaded.solution.radius);
        prop_assert_eq!(simulated.iterations, threaded.iterations);
        prop_assert_eq!(simulated.sample_size, threaded.sample_size);
        prop_assert!(threaded.degraded.is_none());
    }

    #[test]
    fn coreset_builders_threaded_executor_matches_simulated_under_survivable_faults(
        threads in 1usize..=8,
        faults in chaotic_faults(),
    ) {
        let space = cloud(800, 47);

        let config = GonzalezCoresetConfig::new(48)
            .with_machines(6)
            .with_faults(faults.clone());
        let simulated = config.clone().build(&space).unwrap();
        let threaded = config
            .with_executor(Executor::threads(threads))
            .build(&space)
            .unwrap();
        prop_assert_eq!(simulated.source_ids(), threaded.source_ids());
        prop_assert_eq!(simulated.weights(), threaded.weights());
        prop_assert_eq!(simulated.construction_radius(), threaded.construction_radius());
        prop_assert!(!threaded.is_partial());
        let solver = SequentialSolver::Gonzalez;
        let a = simulated.solve(4, solver, FirstCenter::default()).unwrap();
        let b = threaded.solve(4, solver, FirstCenter::default()).unwrap();
        prop_assert_eq!(a, b);

        let config = EimConfig::new(3)
            .with_machines(6)
            .with_epsilon(0.13)
            .with_seed(7)
            .with_faults(faults);
        let simulated = config.clone().build_coreset(&space).unwrap();
        let threaded = config
            .with_executor(Executor::threads(threads))
            .build_coreset(&space)
            .unwrap();
        prop_assert_eq!(simulated.source_ids(), threaded.source_ids());
        prop_assert_eq!(simulated.weights(), threaded.weights());
        prop_assert_eq!(simulated.construction_radius(), threaded.construction_radius());
        prop_assert!(!threaded.is_partial());
    }
}

/// Degrade mode pins the partial-certificate contract exactly: known dead
/// shard, known coverage fraction, radius restated over the survivors.
#[test]
fn degraded_coreset_pins_its_coverage_fraction_and_provenance() {
    let space = cloud(2_000, 44);
    // Machine 7 of the data-holding round 0 dies on every attempt; the
    // other nine shards (200 points each) survive.
    let plan = FaultPlan::explicit(
        (0..3)
            .map(|attempt| ScheduledFault {
                round: 0,
                machine: 7,
                attempt,
                kind: FaultKind::Crash,
            })
            .collect(),
    );
    let faults = FaultConfig::new(plan)
        .with_policy(FaultPolicy::with_max_attempts(3))
        .with_degrade(true);

    let coreset = GonzalezCoresetConfig::new(64)
        .with_machines(10)
        .with_faults(faults.clone())
        .build(&space)
        .unwrap();
    assert!(coreset.is_partial());
    assert_eq!(coreset.coverage().covered_source_len, 1_800);
    assert_eq!(coreset.coverage_fraction(), 0.9);
    assert_eq!(coreset.total_weight(), 1_800);
    let shard = &coreset.coverage().dropped_shards[0];
    assert_eq!(
        (shard.round, shard.machine, shard.attempts, shard.items),
        (0, 7, 3, 200)
    );
    // The lost ids are exactly machine 7's chunk, and solutions inherit
    // the partial coverage instead of claiming the full input.
    assert_eq!(coreset.coverage().lost_source_ids.len(), 200);
    assert_eq!(coreset.coverage().lost_source_ids[0], 1_400);
    let sol = coreset
        .solve(5, SequentialSolver::Gonzalez, FirstCenter::default())
        .unwrap();
    assert!(sol.is_partial());
    assert_eq!(sol.covered_fraction, 0.9);
    let covered = coreset.certify_covered(&space, &sol);
    assert!(covered <= sol.radius_bound + 1e-9);

    // The same plan degrades MRG with the same disclosure.
    let result = MrgConfig::new(5)
        .with_machines(10)
        .with_faults(faults)
        .run(&space)
        .unwrap();
    let degraded = result.degraded.expect("MRG run must be marked degraded");
    assert_eq!(degraded.covered_points, 1_800);
    assert_eq!(degraded.total_points, 2_000);
    assert_eq!(degraded.coverage_fraction(), 0.9);
    assert_eq!(degraded.dropped_shards.len(), 1);
}
