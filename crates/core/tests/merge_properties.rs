//! Property tests for the mergeable-coreset layer (ISSUE 10 satellite):
//!
//! 1. **Split invariance** — summarising a stream in two halves and
//!    merging yields a summary whose certified bound still covers the
//!    full data, for every split position; and an even re-compression
//!    over budget keeps the (additively widened) certificate sound.
//! 2. **Merge determinism** — the same split produces byte-identical
//!    merged summaries, and the certificate composes as the exact `max`
//!    of the halves.
//! 3. **Persistence** — `to_bytes`/`from_bytes` round-trips are
//!    byte-exact, every proper prefix is rejected as a named
//!    [`PersistError`], and every single-bit flip is rejected as a named
//!    error — never a panic, never a partial value.

use kcenter_core::coreset::{GonzalezCoresetConfig, WeightedCoreset};
use kcenter_core::prelude::*;
use kcenter_core::PersistError;
use kcenter_metric::{Euclidean, FlatPoints, MetricSpace as _, VecSpace};
use proptest::prelude::*;

/// Strategy: an f64 coordinate cloud (n in 32..=96, dim in 1..=3) plus its
/// dimension and a split fraction strictly inside the stream.
fn split_cloud() -> impl Strategy<Value = (Vec<f64>, usize, usize)> {
    (1usize..=3, 32usize..=96).prop_flat_map(|(dim, n)| {
        (
            prop::collection::vec(-500.0f64..500.0, dim * n),
            Just(dim),
            8usize..n - 8,
        )
    })
}

fn space_of(coords: Vec<f64>, dim: usize) -> VecSpace {
    VecSpace::from_flat(FlatPoints::<f64>::from_coords(coords, dim).unwrap())
}

/// Builds a `t`-representative Gonzalez summary of one batch.
fn summarise(space: &VecSpace, t: usize) -> WeightedCoreset {
    GonzalezCoresetConfig::new(t)
        .with_machines(3)
        .build(space)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Splitting the stream at any position and merging the two batch
    /// summaries yields a certificate that still soundly bounds the true
    /// covering radius over the concatenated source — and an over-budget
    /// re-compression widens the certificate additively but keeps it sound.
    #[test]
    fn merged_certificate_covers_the_full_stream_at_every_split(
        (coords, dim, split) in split_cloud(),
        k in 1usize..=4,
    ) {
        let full = space_of(coords.clone(), dim);
        let a = space_of(coords[..split * dim].to_vec(), dim);
        let b = space_of(coords[split * dim..].to_vec(), dim);
        let t = 8;
        let ca = summarise(&a, t);
        let cb = summarise(&b, t);
        let merged = ca.merge(&cb).unwrap();

        // The merge is exact composition: no slack is added.
        prop_assert_eq!(merged.source_len(), full.len());
        prop_assert_eq!(
            merged.construction_radius().to_bits(),
            ca.construction_radius()
                .max(cb.construction_radius())
                .to_bits()
        );
        prop_assert_eq!(
            merged.total_weight(),
            ca.total_weight() + cb.total_weight()
        );

        // Certificate soundness: the certified full-data radius of any
        // solution on the merged summary respects the composed bound.
        let sol = merged
            .solve(k, SequentialSolver::Gonzalez, FirstCenter::default())
            .unwrap();
        let exact = sol.certify(&full);
        prop_assert!(
            exact <= sol.radius_bound + 1e-9,
            "split {split}: certified {exact} > bound {}",
            sol.radius_bound
        );

        // Re-compress to half the size: the certificate widens by exactly
        // the compression radius and stays sound against the full data.
        let budget = (merged.len() / 2).max(k + 1);
        let squeezed = merged.recompress(budget).unwrap();
        prop_assert!(squeezed.len() <= budget);
        prop_assert!(squeezed.construction_radius() >= merged.construction_radius());
        prop_assert_eq!(squeezed.total_weight(), merged.total_weight());
        let ssol = squeezed
            .solve(k.min(squeezed.len()), SequentialSolver::Gonzalez, FirstCenter::default())
            .unwrap();
        let sexact = ssol.certify(&full);
        prop_assert!(
            sexact <= ssol.radius_bound + 1e-9,
            "recompressed bound violated: {sexact} > {}",
            ssol.radius_bound
        );
    }

    /// The same split summarised twice merges to byte-identical state:
    /// the fold is deterministic end to end, which is what lets a resumed
    /// ingestion reproduce the uninterrupted run bit for bit.
    #[test]
    fn identical_splits_merge_bit_identically(
        (coords, dim, split) in split_cloud(),
    ) {
        let build = || {
            let a = space_of(coords[..split * dim].to_vec(), dim);
            let b = space_of(coords[split * dim..].to_vec(), dim);
            summarise(&a, 8).merge(&summarise(&b, 8)).unwrap()
        };
        prop_assert_eq!(build().to_bytes(), build().to_bytes());
    }

    /// Persisted summaries round-trip byte-exactly, and the decoded value
    /// reproduces every certified field.
    #[test]
    fn persist_round_trip_is_byte_exact((coords, dim, split) in split_cloud()) {
        let a = space_of(coords[..split * dim].to_vec(), dim);
        let b = space_of(coords[split * dim..].to_vec(), dim);
        let merged = summarise(&a, 8).merge(&summarise(&b, 8)).unwrap();

        let bytes = merged.to_bytes();
        let decoded = WeightedCoreset::<Euclidean, f64>::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&decoded.to_bytes(), &bytes);
        prop_assert_eq!(decoded.len(), merged.len());
        prop_assert_eq!(decoded.source_len(), merged.source_len());
        prop_assert_eq!(
            decoded.construction_radius().to_bits(),
            merged.construction_radius().to_bits()
        );
        prop_assert_eq!(decoded.weights(), merged.weights());
        prop_assert_eq!(decoded.source_ids(), merged.source_ids());
    }

    /// Every proper prefix of a persisted summary decodes to a named
    /// error — never a panic, never a partial value.
    #[test]
    fn truncated_bytes_are_named_errors(
        (coords, dim, _) in split_cloud(),
        cut in 0.0f64..1.0,
    ) {
        let space = space_of(coords, dim);
        let bytes = summarise(&space, 8).to_bytes();
        let len = ((bytes.len() as f64) * cut) as usize; // < bytes.len()
        let err = WeightedCoreset::<Euclidean, f64>::from_bytes(&bytes[..len])
            .expect_err("a proper prefix must not decode");
        prop_assert!(
            matches!(
                err,
                PersistError::Truncated { .. }
                    | PersistError::BadMagic { .. }
                    | PersistError::ChecksumMismatch { .. }
                    | PersistError::Malformed { .. }
            ),
            "unexpected rejection for prefix of {len}: {err}"
        );
    }

    /// Every single-bit flip is caught: the trailing checksum covers the
    /// whole buffer (and a flip inside the checksum itself breaks the
    /// match), so corruption is reported as corruption.
    #[test]
    fn bit_flips_are_named_errors(
        (coords, dim, _) in split_cloud(),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let space = space_of(coords, dim);
        let mut bytes = summarise(&space, 8).to_bytes();
        let at = ((bytes.len() as f64) * pos) as usize;
        bytes[at] ^= 1 << bit;
        let err = WeightedCoreset::<Euclidean, f64>::from_bytes(&bytes)
            .expect_err("a corrupted buffer must not decode");
        // A flip in the magic is reported as BadMagic (checked before the
        // checksum so unrelated files are named as such); in the version
        // field as UnsupportedVersion; everywhere else the checksum trips.
        prop_assert!(
            matches!(
                err,
                PersistError::ChecksumMismatch { .. }
                    | PersistError::BadMagic { .. }
                    | PersistError::UnsupportedVersion { .. }
            ),
            "unexpected rejection for flip at {at}: {err}"
        );
    }
}
