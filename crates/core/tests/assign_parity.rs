//! Grid-vs-dense assignment parity (ISSUE 7 satellite).
//!
//! The spatial-grid assignment arm (`kcenter_metric::grid`) promises to be
//! *bit-identical* to the dense scan it replaces: same per-pair comparison
//! values, same lowest-index tie-breaking, same `wide_cmp_*` certification.
//! These tests pin that promise end to end by running every solver and both
//! coreset builders twice — once with the assignment arm forced to `dense`,
//! once forced to `grid` — and demanding identical centers, radii, weights
//! and assignment vectors.
//!
//! Coordinates are drawn from small integer lattices so every squared
//! distance is exactly representable at both storage precisions and under
//! every kernel backend (scalar, portable, AVX2): parity must then be exact
//! to the bit, with no tolerance.  The lattice also manufactures ties and
//! duplicates aggressively, exercising the tie-break paths; a dedicated
//! duplicate-heavy case drives the degenerate-extent guards.

use std::sync::Mutex;

use kcenter_core::coreset::GonzalezCoresetConfig;
use kcenter_core::evaluate;
use kcenter_core::prelude::*;
use kcenter_metric::grid::{self, AssignChoice, AssignMode};
use kcenter_metric::{Euclidean, FlatPoints, MetricSpace as _, Scalar, VecSpace};
use proptest::prelude::*;

/// Serialises every test that flips the process-global assignment arm.
static ARM_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once under each forced assignment arm and returns
/// `(dense_result, grid_result)`.  The global choice is restored to `Auto`
/// before the lock is released, so tests cannot leak a forced arm into each
/// other (or into any sibling test binary sharing the process).
fn both_arms<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    grid::set_choice(AssignChoice::Fixed(AssignMode::Dense));
    let dense = f();
    grid::set_choice(AssignChoice::Fixed(AssignMode::Grid));
    let grid_r = f();
    grid::set_choice(AssignChoice::Auto);
    (dense, grid_r)
}

fn space_of<S: Scalar>(coords: &[f64], dim: usize) -> VecSpace<Euclidean, S> {
    let coords: Vec<S> = coords.iter().map(|&c| S::from_f64(c)).collect();
    VecSpace::from_flat(FlatPoints::from_coords(coords, dim).unwrap())
}

/// Integer-lattice cloud: `dim` in 1..=5, `n` in 40..=220, coordinates on a
/// deliberately coarse lattice (`0..=40`) so collisions and equidistant
/// ties are common rather than exotic.
fn lattice_cloud() -> impl Strategy<Value = (Vec<f64>, usize)> {
    (1usize..=5, 40usize..=220).prop_flat_map(|(dim, n)| {
        prop::collection::vec(0i32..=40, dim * n)
            .prop_map(move |ints| (ints.into_iter().map(f64::from).collect(), dim))
    })
}

/// Duplicate-heavy cloud: a handful of base rows, each repeated many times,
/// so whole grid cells collapse to a point and per-dimension extents can be
/// zero.  Also the worst case for lowest-index tie-breaking.
fn duplicate_cloud() -> impl Strategy<Value = (Vec<f64>, usize)> {
    (1usize..=4, 3usize..=8, 8usize..=30).prop_flat_map(|(dim, bases, reps)| {
        prop::collection::vec(0i32..=10, dim * bases).prop_map(move |ints| {
            let mut coords = Vec::with_capacity(dim * bases * reps);
            for r in 0..reps {
                for b in 0..bases {
                    // Interleave the repeats so equal rows are spread across
                    // the id range, not adjacent.
                    let _ = r;
                    coords.extend(ints[b * dim..(b + 1) * dim].iter().map(|&c| f64::from(c)));
                }
            }
            (coords, dim)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GON: identical centers and certified radius under both arms, at both
    /// storage precisions.
    #[test]
    fn gonzalez_parity((coords, dim) in lattice_cloud(), k in 1usize..=8) {
        let f64_space = space_of::<f64>(&coords, dim);
        let f32_space = space_of::<f32>(&coords, dim);
        let (d, g) = both_arms(|| {
            let a = GonzalezConfig::new(k).solve(&f64_space).unwrap();
            let b = GonzalezConfig::new(k).solve(&f32_space).unwrap();
            ((a.centers, a.radius), (b.centers, b.radius))
        });
        prop_assert_eq!(d, g);
    }

    /// MRG: the two-round MapReduce pipeline routes its per-machine GON
    /// calls and final assignment through the same arms.
    #[test]
    fn mrg_parity((coords, dim) in lattice_cloud(), k in 1usize..=6, machines in 1usize..=5) {
        let space = space_of::<f64>(&coords, dim);
        let (d, g) = both_arms(|| {
            let r = MrgConfig::new(k)
                .with_machines(machines)
                .with_unchecked_capacity()
                .run(&space)
                .unwrap();
            (r.solution.centers, r.solution.radius)
        });
        prop_assert_eq!(d, g);
    }

    /// EIM: iterative sampling is seeded, so the only cross-arm variation
    /// could come from the assignment scans — there must be none.
    #[test]
    fn eim_parity((coords, dim) in lattice_cloud(), k in 1usize..=5, seed in 0u64..1000) {
        let space = space_of::<f64>(&coords, dim);
        let (d, g) = both_arms(|| {
            let r = EimConfig::new(k)
                .with_seed(seed)
                .with_machines(3)
                .run(&space)
                .unwrap();
            (r.solution.centers, r.solution.radius)
        });
        prop_assert_eq!(d, g);
    }

    /// Gonzalez coreset builder: representatives, weights and the certified
    /// construction radius all survive the arm swap bit-for-bit.
    #[test]
    fn gonzalez_coreset_parity((coords, dim) in lattice_cloud(), t in 4usize..=16) {
        let space = space_of::<f64>(&coords, dim);
        let (d, g) = both_arms(|| {
            let c = GonzalezCoresetConfig::new(t)
                .with_machines(4)
                .build(&space)
                .unwrap();
            (
                c.source_ids().to_vec(),
                c.weights().to_vec(),
                c.construction_radius(),
            )
        });
        prop_assert_eq!(d, g);
    }

    /// EIM coreset builder: same contract as the Gonzalez builder, plus the
    /// sampled hand-off set must be unchanged (it is seed-driven but its
    /// weights round runs through the dispatched nearest-rep scan).
    #[test]
    fn eim_coreset_parity((coords, dim) in lattice_cloud(), seed in 0u64..1000) {
        let space = space_of::<f64>(&coords, dim);
        let (d, g) = both_arms(|| {
            let c = EimConfig::new(3)
                .with_seed(seed)
                .with_machines(3)
                .build_coreset(&space)
                .unwrap();
            (
                c.source_ids().to_vec(),
                c.weights().to_vec(),
                c.construction_radius(),
            )
        });
        prop_assert_eq!(d, g);
    }

    /// `evaluate::assign`: the label vector (argmin with smallest-position
    /// tie-break) is identical under both arms, at both precisions.
    #[test]
    fn assign_parity((coords, dim) in lattice_cloud(), k in 1usize..=8) {
        let f64_space = space_of::<f64>(&coords, dim);
        let f32_space = space_of::<f32>(&coords, dim);
        let centers: Vec<usize> = (0..k.min(f64_space.len())).map(|i| i * 7 % f64_space.len()).collect();
        let mut centers = centers;
        centers.sort_unstable();
        centers.dedup();
        let (d, g) = both_arms(|| {
            (
                evaluate::assign(&f64_space, &centers),
                evaluate::assign(&f32_space, &centers),
            )
        });
        prop_assert_eq!(d, g);
    }

    /// Duplicate-heavy instances: zero-extent dimensions, collapsed cells,
    /// and massed ties must neither panic nor perturb any output.
    #[test]
    fn duplicate_heavy_parity((coords, dim) in duplicate_cloud(), k in 1usize..=5) {
        let space = space_of::<f64>(&coords, dim);
        let (d, g) = both_arms(|| {
            let gon = GonzalezConfig::new(k).solve(&space).unwrap();
            let mrg = MrgConfig::new(k)
                .with_machines(3)
                .with_unchecked_capacity()
                .run(&space)
                .unwrap();
            let cs = GonzalezCoresetConfig::new(k + 2)
                .with_machines(3)
                .build(&space)
                .unwrap();
            let labels = evaluate::assign(&space, &gon.centers);
            (
                (gon.centers, gon.radius),
                (mrg.solution.centers, mrg.solution.radius),
                (cs.weights().to_vec(), cs.construction_radius()),
                labels,
            )
        });
        prop_assert_eq!(d, g);
    }
}

/// Engineered ties: a symmetric cross where several points are exactly
/// equidistant from competing centers — the lowest-index winner must be the
/// same point under both arms, for every solver.
#[test]
fn engineered_tie_parity() {
    // 4 corners of a square + center + axis midpoints: the center is
    // equidistant from all four corners, each midpoint from two.
    let coords = vec![
        0.0, 0.0, // 0: corner
        4.0, 0.0, // 1: corner
        0.0, 4.0, // 2: corner
        4.0, 4.0, // 3: corner
        2.0, 2.0, // 4: center (ties all corners)
        2.0, 0.0, // 5: bottom midpoint (ties 0 and 1)
        0.0, 2.0, // 6: left midpoint (ties 0 and 2)
        4.0, 2.0, // 7: right midpoint (ties 1 and 3)
        2.0, 4.0, // 8: top midpoint (ties 2 and 3)
    ];
    let space = space_of::<f64>(&coords, 2);
    for k in 1..=5 {
        let (d, g) = both_arms(|| {
            let gon = GonzalezConfig::new(k).solve(&space).unwrap();
            let labels = evaluate::assign(&space, &gon.centers);
            let eim = EimConfig::new(k)
                .with_seed(7)
                .with_machines(2)
                .run(&space)
                .unwrap();
            (
                (gon.centers, gon.radius),
                labels,
                (eim.solution.centers, eim.solution.radius),
            )
        });
        assert_eq!(d, g, "tie-break divergence at k={k}");
    }
}

/// The forced grid arm really does run the grid scans (not a silent dense
/// fallback) on a well-conditioned instance — guarding against a future
/// regression that re-routes everything to dense and lets these parity
/// tests pass vacuously.
#[test]
fn grid_arm_actually_engages() {
    let mut coords = Vec::new();
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..600 {
        coords.push((next() % 1000) as f64);
        coords.push((next() % 1000) as f64);
    }
    let space = space_of::<f64>(&coords, 2);
    let _guard = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    grid::set_choice(AssignChoice::Fixed(AssignMode::Grid));
    grid::reset_scan_counts();
    let sol = GonzalezConfig::new(8).solve(&space).unwrap();
    let _ = evaluate::assign(&space, &sol.centers);
    let (grid_scans, dense_scans) = grid::scan_counts();
    grid::set_choice(AssignChoice::Auto);
    assert!(
        grid_scans >= 2,
        "expected the forced grid arm to engage (dense={dense_scans}, grid={grid_scans})"
    );
}
