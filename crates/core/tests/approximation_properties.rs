//! Property-based tests for the approximation guarantees the paper proves.
//!
//! Brute-force OPT is only feasible on tiny instances, so the proptest
//! strategies stay below `MAX_BRUTE_FORCE_POINTS`; larger-scale behaviour is
//! covered by the integration tests at the workspace root.

use kcenter_core::brute_force::optimal_radius;
use kcenter_core::evaluate::{assign, covering_radius};
use kcenter_core::prelude::*;
use kcenter_metric::{pairwise_lower_bound, MetricSpace, Point, VecSpace};
use proptest::prelude::*;

/// A small random instance: 4..=16 points in a bounded 2-D square, plus a
/// target k in 1..=4.
fn small_instance() -> impl Strategy<Value = (VecSpace, usize)> {
    (
        prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 4..=16),
        1usize..=4,
    )
        .prop_map(|(coords, k)| {
            let points = coords.into_iter().map(|(x, y)| Point::xy(x, y)).collect();
            (VecSpace::new(points), k)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gonzalez_is_a_two_approximation((space, k) in small_instance()) {
        let sol = GonzalezConfig::new(k).solve(&space).unwrap();
        let opt = optimal_radius(&space, k).unwrap();
        prop_assert!(sol.radius <= 2.0 * opt + 1e-9, "GON {} > 2*OPT {}", sol.radius, opt);
        prop_assert!(sol.radius >= opt - 1e-9, "no algorithm can beat OPT");
    }

    #[test]
    fn hochbaum_shmoys_is_a_two_approximation((space, k) in small_instance()) {
        let sol = HochbaumShmoysConfig::new(k).solve(&space).unwrap();
        let opt = optimal_radius(&space, k).unwrap();
        prop_assert!(sol.radius <= 2.0 * opt + 1e-9, "HS {} > 2*OPT {}", sol.radius, opt);
        prop_assert!(sol.radius >= opt - 1e-9);
    }

    #[test]
    fn mrg_respects_its_round_dependent_bound((space, k) in small_instance()) {
        // Tiny capacity forces at least one reduction round on 3 machines.
        let capacity = (space.len() / 2).max(k + 1).max(2);
        let result = MrgConfig::new(k)
            .with_machines(3)
            .with_capacity(capacity)
            .run(&space);
        // k close to the capacity can legitimately stall (NoProgress); the
        // bound only applies to successful runs.
        if let Ok(result) = result {
            let opt = optimal_radius(&space, k).unwrap();
            let bound = result.approximation_factor * opt + 1e-9;
            prop_assert!(
                result.solution.radius <= bound,
                "MRG {} > {} (factor {}, rounds {})",
                result.solution.radius, bound, result.approximation_factor, result.reduction_rounds
            );
            prop_assert!(result.solution.radius >= opt - 1e-9);
        }
    }

    #[test]
    fn mrg_on_one_machine_with_full_capacity_equals_gonzalez((space, k) in small_instance()) {
        let mrg = MrgConfig::new(k)
            .with_machines(1)
            .with_capacity(space.len())
            .run(&space)
            .unwrap();
        let gon = GonzalezConfig::new(k).solve(&space).unwrap();
        prop_assert_eq!(mrg.solution.centers, gon.centers);
        prop_assert_eq!(mrg.solution.radius, gon.radius);
        prop_assert_eq!(mrg.reduction_rounds, 0);
    }

    #[test]
    fn eim_below_threshold_equals_gonzalez((space, k) in small_instance()) {
        // At these sizes |R| never exceeds the sampling threshold, so EIM
        // must degenerate to GON on the full input.
        let eim = EimConfig::new(k).with_machines(3).run(&space).unwrap();
        let gon = GonzalezConfig::new(k).solve(&space).unwrap();
        prop_assert!(eim.fell_back_to_sequential);
        prop_assert_eq!(eim.solution.centers, gon.centers);
        prop_assert_eq!(eim.solution.radius, gon.radius);
    }

    #[test]
    fn gonzalez_radius_is_monotone_non_increasing_in_k(
        coords in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 5..=20)
    ) {
        let space = VecSpace::new(coords.into_iter().map(|(x, y)| Point::xy(x, y)).collect());
        let mut last = f64::INFINITY;
        for k in 1..=space.len().min(6) {
            let sol = GonzalezConfig::new(k).solve(&space).unwrap();
            prop_assert!(sol.radius <= last + 1e-9, "radius increased when k grew to {k}");
            last = sol.radius;
        }
    }

    #[test]
    fn gonzalez_witness_lower_bound_brackets_opt((space, k) in small_instance()) {
        // Gonzalez's k centers plus the final farthest point are pairwise
        // separated by the final radius, so witness/2 <= OPT <= GON radius.
        let sol = GonzalezConfig::new(k).solve(&space).unwrap();
        if sol.centers.len() == k && k < space.len() {
            // Find the farthest point from the chosen centers.
            let far = (0..space.len())
                .max_by(|&a, &b| {
                    space.distance_to_set(a, &sol.centers)
                        .total_cmp(&space.distance_to_set(b, &sol.centers))
                })
                .unwrap();
            let mut witness = sol.centers.clone();
            witness.push(far);
            let lb = pairwise_lower_bound(&space, &witness);
            let opt = optimal_radius(&space, k).unwrap();
            prop_assert!(lb <= opt + 1e-9, "witness lower bound {} exceeded OPT {}", lb, opt);
        }
    }

    #[test]
    fn solutions_are_valid_center_sets((space, k) in small_instance()) {
        for sol in [
            GonzalezConfig::new(k).solve(&space).unwrap(),
            HochbaumShmoysConfig::new(k).solve(&space).unwrap(),
            MrgConfig::new(k).with_machines(2).with_capacity(space.len()).run(&space).unwrap().solution,
            EimConfig::new(k).with_machines(2).run(&space).unwrap().solution,
        ] {
            prop_assert!(sol.centers.len() <= k.min(space.len()));
            prop_assert!(!sol.centers.is_empty());
            prop_assert!(sol.centers.iter().all(|&c| c < space.len()));
            let mut dedup = sol.centers.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), sol.centers.len(), "duplicate centers");
            // The reported radius matches an independent evaluation.
            let radius = covering_radius(&space, &sol.centers);
            prop_assert!((radius - sol.radius).abs() < 1e-9);
        }
    }

    #[test]
    fn assignment_is_consistent_with_the_radius((space, k) in small_instance()) {
        let sol = GonzalezConfig::new(k).solve(&space).unwrap();
        let assignment = assign(&space, &sol.centers);
        prop_assert_eq!(assignment.len(), space.len());
        for (p, &a) in assignment.iter().enumerate() {
            prop_assert!(a < sol.centers.len());
            let d = space.distance(p, sol.centers[a]);
            prop_assert!(d <= sol.radius + 1e-9, "assigned distance exceeds the covering radius");
        }
    }
}
