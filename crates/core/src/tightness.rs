//! Empirical probing of MRG's approximation factor.
//!
//! The paper's future-work section notes that the factor of four for the
//! two-round MRG is *tight* — there exist inputs where an adversarial
//! assignment of points to machines plus an adversarial choice of GON
//! seedings drives the solution to 4·OPT — and asks: **how likely are such
//! cases in practice?**
//!
//! This module provides the measurement tool for that question: a
//! [`TightnessProbe`] runs MRG many times on the *same* instance while
//! randomising exactly the two adversarial degrees of freedom (the
//! point-to-machine assignment, by permuting the point order, and the GON
//! seeding, via [`FirstCenter::Seeded`]) and reports the worst, mean, and
//! best observed ratio against the exact optimum (brute force, so only tiny
//! instances are accepted) or against any externally supplied lower bound.
//!
//! The accompanying tests confirm that over hundreds of trials on random
//! instances the observed ratio stays well below the worst-case bound —
//! the empirical answer the paper anticipates — while the bound itself is
//! never violated.

use crate::brute_force::optimal_radius;
use crate::error::KCenterError;
use crate::evaluate::covered_within;
use crate::gonzalez::FirstCenter;
use crate::mrg::MrgConfig;
use kcenter_metric::{Euclidean, FlatPoints, Point, Scalar, VecSpace};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of an MRG tightness probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TightnessProbe {
    /// Number of centers.
    pub k: usize,
    /// Number of simulated machines.
    pub machines: usize,
    /// Per-machine capacity (small values force the reduction rounds whose
    /// compounding is what the factor-4 analysis is about).
    pub capacity: usize,
    /// Number of randomised trials.
    pub trials: usize,
    /// Base seed for the permutation / seeding randomness.
    pub seed: u64,
}

impl TightnessProbe {
    /// A probe with `trials` randomised runs of `k`-center MRG on a small
    /// cluster (3 machines, capacity forcing at least one reduction round
    /// for any instance larger than the capacity).
    pub fn new(k: usize, trials: usize) -> Self {
        Self {
            k,
            machines: 3,
            capacity: 8,
            trials,
            seed: 0,
        }
    }

    /// Sets the cluster geometry.
    pub fn with_cluster(mut self, machines: usize, capacity: usize) -> Self {
        self.machines = machines;
        self.capacity = capacity;
        self
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the probe against the exact optimum of `points` (computed by
    /// brute force, so the instance must be tiny), at `f64` storage
    /// precision.
    pub fn run(&self, points: &[Point]) -> Result<TightnessReport, KCenterError> {
        self.run_at::<f64>(points)
    }

    /// Like [`TightnessProbe::run`], but with MRG's scans running over an
    /// `S`-precision store.  The OPT reference and all reported ratios stay
    /// in `f64` (the probe's coverage guard and radii use the certified
    /// evaluation path), so reduced precision only perturbs the rounded
    /// inputs, never the measurement.
    pub fn run_at<S: Scalar>(&self, points: &[Point]) -> Result<TightnessReport, KCenterError> {
        let space = VecSpace::new(points.to_vec());
        let opt = optimal_radius(&space, self.k)?;
        self.run_with_lower_bound_at::<S>(points, opt)
    }

    /// Runs the probe against an externally supplied lower bound on OPT
    /// (useful for larger instances where brute force is infeasible; the
    /// reported ratios are then upper bounds on the true ratios), at `f64`
    /// storage precision.
    pub fn run_with_lower_bound(
        &self,
        points: &[Point],
        opt_lower_bound: f64,
    ) -> Result<TightnessReport, KCenterError> {
        self.run_with_lower_bound_at::<f64>(points, opt_lower_bound)
    }

    /// Precision-generic core of [`TightnessProbe::run_with_lower_bound`].
    pub fn run_with_lower_bound_at<S: Scalar>(
        &self,
        points: &[Point],
        opt_lower_bound: f64,
    ) -> Result<TightnessReport, KCenterError> {
        if points.is_empty() {
            return Err(KCenterError::EmptyInput);
        }
        if self.k == 0 {
            return Err(KCenterError::ZeroK);
        }
        if self.trials == 0 {
            return Err(KCenterError::InvalidParameter {
                name: "trials",
                message: "at least one trial is required".into(),
            });
        }
        if !(opt_lower_bound.is_finite() && opt_lower_bound >= 0.0) {
            return Err(KCenterError::InvalidParameter {
                name: "opt_lower_bound",
                message: format!("must be finite and non-negative, got {opt_lower_bound}"),
            });
        }

        let mut ratios = Vec::with_capacity(self.trials);
        let mut worst_factor_bound: f64 = 0.0;
        let mut worst_seed = self.seed;
        let mut worst_so_far = f64::NEG_INFINITY;
        for trial in 0..self.trials {
            let trial_seed = self.seed.wrapping_add(trial as u64);
            // Randomise the point-to-machine assignment by permuting the
            // point order: MRG's mapper chunks points contiguously, so a
            // permutation of the input realises an arbitrary assignment.
            let mut permuted = points.to_vec();
            let mut rng = StdRng::seed_from_u64(trial_seed);
            permuted.shuffle(&mut rng);
            let space: VecSpace<Euclidean, S> =
                VecSpace::from_flat(FlatPoints::from_points(&permuted));

            let result = MrgConfig::new(self.k)
                .with_machines(self.machines)
                .with_capacity(self.capacity)
                .with_unchecked_capacity()
                .with_first_center(FirstCenter::Seeded(trial_seed))
                .run(&space)?;

            // Guard the measurement itself: the reported radius must cover
            // every point.  The early-exit scan makes this check cheap (each
            // point stops at the first center within the radius).  The
            // margin is relative: the check squares the radius internally,
            // so an absolute epsilon would vanish against the sqrt/square
            // round-trip error on large-coordinate instances.
            let margin = result.solution.radius * (1.0 + 1e-9) + 1e-9;
            assert!(
                covered_within(&space, &result.solution.centers, margin),
                "trial {trial}: covering radius {} does not cover the instance",
                result.solution.radius
            );

            let ratio = if opt_lower_bound > 0.0 {
                result.solution.radius / opt_lower_bound
            } else if result.solution.radius == 0.0 {
                1.0
            } else {
                f64::INFINITY
            };
            if ratio > worst_so_far {
                worst_so_far = ratio;
                worst_seed = trial_seed;
            }
            worst_factor_bound = worst_factor_bound.max(result.approximation_factor);
            ratios.push(ratio);
        }

        let worst = ratios.iter().copied().fold(0.0, f64::max);
        let best = ratios.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        Ok(TightnessReport {
            trials: self.trials,
            opt_lower_bound,
            worst_ratio: worst,
            mean_ratio: mean,
            best_ratio: best,
            worst_seed,
            proven_factor: worst_factor_bound,
        })
    }
}

/// The outcome of a tightness probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TightnessReport {
    /// Number of randomised trials performed.
    pub trials: usize,
    /// The OPT value (or lower bound) the ratios are measured against.
    pub opt_lower_bound: f64,
    /// The worst (largest) observed radius / OPT ratio.
    pub worst_ratio: f64,
    /// The mean observed ratio.
    pub mean_ratio: f64,
    /// The best (smallest) observed ratio.
    pub best_ratio: f64,
    /// The trial seed that produced the worst ratio (for reproduction).
    pub worst_seed: u64,
    /// The largest proven approximation factor among the trials (4 for the
    /// two-round case, +2 per extra reduction round).
    pub proven_factor: f64,
}

impl TightnessReport {
    /// Whether any trial violated its proven bound — always `false` unless
    /// there is a bug (or the supplied lower bound was not actually a lower
    /// bound).
    pub fn bound_violated(&self) -> bool {
        self.worst_ratio > self.proven_factor + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small instance with two obvious clusters plus a few stragglers:
    /// enough structure that bad partitions/seedings produce visibly worse
    /// solutions, small enough for brute force.
    fn instance() -> Vec<Point> {
        vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(0.0, 1.0),
            Point::xy(1.0, 1.0),
            Point::xy(20.0, 0.0),
            Point::xy(21.0, 0.0),
            Point::xy(20.0, 1.0),
            Point::xy(21.0, 1.0),
            Point::xy(10.0, 10.0),
            Point::xy(10.5, 10.0),
            Point::xy(10.0, 10.5),
            Point::xy(30.0, 30.0),
            Point::xy(30.0, 31.0),
            Point::xy(31.0, 30.0),
        ]
    }

    #[test]
    fn probe_never_observes_a_bound_violation() {
        let report = TightnessProbe::new(3, 60)
            .with_seed(1)
            .run(&instance())
            .unwrap();
        assert_eq!(report.trials, 60);
        assert!(
            report.worst_ratio >= 1.0 - 1e-9,
            "no algorithm can beat OPT"
        );
        assert!(
            !report.bound_violated(),
            "worst ratio {} exceeded the proven factor {}",
            report.worst_ratio,
            report.proven_factor
        );
        assert!(report.best_ratio <= report.mean_ratio && report.mean_ratio <= report.worst_ratio);
    }

    #[test]
    fn typical_ratios_are_far_below_the_worst_case() {
        // The empirical answer to the paper's future-work question: across
        // many random assignments and seedings the observed ratio on a
        // benign instance stays far below 4.
        let report = TightnessProbe::new(4, 80)
            .with_seed(2)
            .run(&instance())
            .unwrap();
        assert!(report.proven_factor >= 4.0);
        assert!(
            report.mean_ratio < 0.75 * report.proven_factor,
            "mean ratio {} is implausibly close to the worst case {}",
            report.mean_ratio,
            report.proven_factor
        );
    }

    #[test]
    fn randomisation_actually_changes_outcomes() {
        // Different trials must explore different partitions/seedings; on
        // this instance that shows up as best != worst.
        let report = TightnessProbe::new(2, 40)
            .with_seed(3)
            .run(&instance())
            .unwrap();
        assert!(
            report.worst_ratio > report.best_ratio + 1e-9,
            "all trials produced the same ratio; the probe is not randomising"
        );
    }

    #[test]
    fn probe_is_deterministic_given_its_seed() {
        let a = TightnessProbe::new(3, 25)
            .with_seed(7)
            .run(&instance())
            .unwrap();
        let b = TightnessProbe::new(3, 25)
            .with_seed(7)
            .run(&instance())
            .unwrap();
        assert_eq!(a, b);
        let c = TightnessProbe::new(3, 25)
            .with_seed(8)
            .run(&instance())
            .unwrap();
        assert!(a != c || a.worst_seed != c.worst_seed);
    }

    #[test]
    fn external_lower_bound_variant_accepts_larger_instances() {
        // A 60-point instance is too big for brute force but fine with an
        // explicit lower bound (here: half the minimum distance between the
        // two planted cluster centers is a valid bound for k = 2 ... we use
        // a trivially valid bound of 0.5).
        let mut points = Vec::new();
        for i in 0..30 {
            points.push(Point::xy(i as f64 * 0.01, 0.0));
            points.push(Point::xy(100.0 + i as f64 * 0.01, 0.0));
        }
        let report = TightnessProbe::new(2, 10)
            .with_cluster(4, 16)
            .with_seed(5)
            .run_with_lower_bound(&points, 0.1)
            .unwrap();
        assert!(report.worst_ratio.is_finite());
        assert!(report.trials == 10);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert_eq!(
            TightnessProbe::new(2, 0).run(&instance()).unwrap_err(),
            KCenterError::InvalidParameter {
                name: "trials",
                message: "at least one trial is required".into()
            }
        );
        assert_eq!(
            TightnessProbe::new(0, 5).run(&instance()).unwrap_err(),
            KCenterError::ZeroK
        );
        assert_eq!(
            TightnessProbe::new(2, 5).run(&[]).unwrap_err(),
            KCenterError::EmptyInput
        );
        assert!(matches!(
            TightnessProbe::new(2, 5)
                .run_with_lower_bound(&instance(), f64::NAN)
                .unwrap_err(),
            KCenterError::InvalidParameter {
                name: "opt_lower_bound",
                ..
            }
        ));
    }
}
