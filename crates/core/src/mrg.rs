//! MRG — "MapReduce Gonzalez", the paper's multi-round parallel k-center
//! algorithm (Algorithm 1).
//!
//! While the surviving sample `S` is larger than one machine's capacity `c`,
//! the mapper splits it into at most `m` parts of size ≤ ⌈|S|/m⌉, every
//! reducer runs the sequential sub-procedure (GON by default) on its part
//! and returns `k` centers, and the union of those centers becomes the new
//! sample.  Once the sample fits on one machine a final reducer runs the
//! sub-procedure once more and its `k` centers are the answer.
//!
//! With the two-round preconditions of Lemma 2 (`n/m ≤ c` and `k·m ≤ c`)
//! this is a 4-approximation; every additional reduction round adds 2 to the
//! factor (Lemma 3).  The runtime is `O(k·n/m + k²·m)` (Section 5.1).

use crate::error::KCenterError;
use crate::evaluate::{covering_radius, covering_radius_subset};
use crate::gonzalez::FirstCenter;
use crate::solution::KCenterSolution;
use crate::solver::SequentialSolver;
use kcenter_mapreduce::{
    partition, Cluster, ClusterConfig, DegradedRun, DroppedShard, Executor, FaultConfig, JobStats,
    MapReduceError,
};
use kcenter_metric::{MetricSpace, PointId};
use serde::{Deserialize, Serialize};

/// Configuration of the MRG algorithm.
///
/// ```
/// use kcenter_core::MrgConfig;
/// use kcenter_metric::{Point, VecSpace};
///
/// // 1,000 points on a line, clustered with k = 4 on 8 simulated machines.
/// let space = VecSpace::new((0..1000).map(|i| Point::xy(i as f64, 0.0)).collect());
/// let result = MrgConfig::new(4).with_machines(8).run(&space).unwrap();
/// assert_eq!(result.mapreduce_rounds, 2);          // the common two-round case
/// assert_eq!(result.approximation_factor, 4.0);    // Lemma 2
/// assert_eq!(result.solution.centers.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MrgConfig {
    /// Number of centers to select.
    pub k: usize,
    /// Number of simulated machines (the paper fixes 50).
    pub machines: usize,
    /// Per-machine capacity in points.  `None` chooses the paper's
    /// two-round capacity `max(⌈n/m⌉, k·m)` once `n` is known.
    pub capacity: Option<usize>,
    /// Whether the simulated cluster enforces the capacity when handing
    /// partitions to reducers.  Disable to mimic the paper's experiments,
    /// where the single test machine had ample RAM.
    pub enforce_capacity: bool,
    /// The sequential sub-procedure run inside reducers and in the final
    /// round (GON in the paper).
    pub solver: SequentialSolver,
    /// First-center policy forwarded to the sub-procedure.
    pub first_center: FirstCenter,
    /// Optional deterministic fault injection (plan + retry policy +
    /// degrade mode) installed on the simulated cluster.
    pub faults: Option<FaultConfig>,
    /// How the cluster executes each round's machines: the paper's
    /// sequential simulation (the default) or real scoped threads.
    /// Outputs are bit-identical either way.
    pub executor: Executor,
}

impl MrgConfig {
    /// MRG with `k` centers on the paper's 50-machine cluster, automatic
    /// two-round capacity, GON sub-procedure.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            machines: ClusterConfig::PAPER_MACHINES,
            capacity: None,
            enforce_capacity: true,
            solver: SequentialSolver::Gonzalez,
            first_center: FirstCenter::default(),
            faults: None,
            executor: Executor::Simulated,
        }
    }

    /// Sets the number of simulated machines.
    pub fn with_machines(mut self, machines: usize) -> Self {
        self.machines = machines;
        self
    }

    /// Sets an explicit per-machine capacity (in points).  Lower it below
    /// `k · m` to force the multi-round regime of Lemma 3.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Disables capacity enforcement in the simulated cluster.
    pub fn with_unchecked_capacity(mut self) -> Self {
        self.enforce_capacity = false;
        self
    }

    /// Chooses the sequential sub-procedure.
    pub fn with_solver(mut self, solver: SequentialSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the first-center policy of the sub-procedure.
    pub fn with_first_center(mut self, first: FirstCenter) -> Self {
        self.first_center = first;
        self
    }

    /// Installs deterministic fault injection on the simulated cluster.
    /// With `faults.degrade` set, a shard that exhausts its attempts is
    /// dropped and the run continues on the survivors, reporting an
    /// explicitly partial certificate (see [`MrgResult::degraded`]).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Selects the cluster executor (simulated by default).
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// The capacity that will actually be used for an instance of `n`
    /// points: the explicit capacity if set, otherwise the paper's
    /// two-round default `max(⌈n/m⌉, k·m)`.
    pub fn effective_capacity(&self, n: usize) -> usize {
        self.capacity
            .unwrap_or_else(|| ClusterConfig::paper_default(n, self.k).capacity.max(1))
            .max(1)
    }

    /// Runs MRG on the given space.
    pub fn run<S: MetricSpace + ?Sized>(&self, space: &S) -> Result<MrgResult, KCenterError> {
        let n = space.len();
        if n == 0 {
            return Err(KCenterError::EmptyInput);
        }
        if self.k == 0 {
            return Err(KCenterError::ZeroK);
        }
        if !space.is_metric() {
            return Err(KCenterError::NotAMetric {
                distance: space.distance_name(),
            });
        }
        if self.machines == 0 {
            return Err(KCenterError::InvalidParameter {
                name: "machines",
                message: "at least one machine is required".into(),
            });
        }

        let capacity = self.effective_capacity(n);
        let cluster_config = ClusterConfig::new(self.machines, capacity);
        let mut cluster = if self.enforce_capacity {
            Cluster::new(cluster_config)
        } else {
            Cluster::unchecked(cluster_config)
        }
        .with_executor(self.executor);
        cluster.check_fits(n)?;
        if let Some(faults) = &self.faults {
            cluster.set_fault_injection(Some(faults.clone()));
        }
        let degrade = cluster.degrade_enabled();

        let solver = self.solver;
        let k = self.k;
        let first = self.first_center;

        // Algorithm 1, line 1: S <- V.
        let mut sample: Vec<PointId> = (0..n).collect();
        let mut reduction_rounds = 0usize;
        // Degrade-mode bookkeeping: provenance of every dropped shard, and
        // the source points that left coverage with a round-0 shard (later
        // rounds hold only candidate centers, so dropping them loses no
        // source coverage — the final radius is measured directly either
        // way).
        let mut dropped: Vec<DroppedShard> = Vec::new();
        let mut lost: Vec<PointId> = Vec::new();

        // Lines 2-5: while |S| > c, reduce in parallel.
        while sample.len() > capacity {
            // The first reduction round spreads the full input over all m
            // machines (Algorithm 1, line 3: |V_i| <= ceil(n/m)); later
            // rounds follow the Lemma 3 analysis and pack the surviving
            // sample onto m' = ceil(|S|/c) machines so it keeps shrinking.
            let machines_this_round = if reduction_rounds == 0 {
                self.machines
            } else {
                sample.len().div_ceil(capacity).clamp(1, self.machines)
            };
            let parts = partition::chunks(&sample, machines_this_round);
            let label = format!(
                "MRG reduction round {} ({} on {} machines)",
                reduction_rounds + 1,
                solver.name(),
                parts.len()
            );
            let next: Vec<PointId> = if degrade {
                let out = cluster.run_round_degradable(
                    &label,
                    &parts,
                    |_, part| solver.select_centers(space, part, k, first),
                    Vec::len,
                )?;
                for (i, o) in out.outputs.iter().enumerate() {
                    if o.is_none() && reduction_rounds == 0 {
                        // Round 0 partitions hold source data: those points
                        // leave the coverage claim with the shard.
                        lost.extend_from_slice(&parts[i]);
                    }
                }
                dropped.extend(out.dropped);
                let next: Vec<PointId> = out.outputs.into_iter().flatten().flatten().collect();
                if next.is_empty() {
                    // Every shard died: there is nothing to degrade to.
                    let shard = dropped.last().expect("empty round output implies drops");
                    return Err(KCenterError::MapReduce(MapReduceError::RoundFailed {
                        round: shard.round,
                        machine: shard.machine,
                        attempts: shard.attempts,
                        source: shard.cause,
                    }));
                }
                next
            } else {
                let outputs = cluster.run_round(
                    &label,
                    &parts,
                    |_, part| solver.select_centers(space, part, k, first),
                    Vec::len,
                )?;
                outputs.into_iter().flatten().collect()
            };
            if next.len() >= sample.len() {
                // k is too close to the capacity: the sample no longer
                // shrinks (the situation discussed after Lemma 3).
                return Err(KCenterError::NoProgress {
                    sample_size: sample.len(),
                    capacity,
                });
            }
            sample = next;
            reduction_rounds += 1;
        }

        // Lines 6-8: final single-machine run of the sub-procedure.
        let label = format!("MRG final round ({} on 1 machine)", solver.name());
        let centers = cluster.run_single(
            &label,
            sample,
            |part| solver.select_centers(space, part, k, first),
            Vec::len,
        )?;

        // The certificate: a directly measured covering radius.  A degraded
        // run restates it over the surviving points only — never silently
        // over the full input.
        let radius = if lost.is_empty() {
            covering_radius(space, &centers)
        } else {
            let mut is_lost = vec![false; n];
            for &p in &lost {
                is_lost[p] = true;
            }
            let survivors: Vec<PointId> = (0..n).filter(|&p| !is_lost[p]).collect();
            covering_radius_subset(space, &survivors, &centers)
        };
        let degraded = if dropped.is_empty() {
            None
        } else {
            Some(DegradedRun {
                covered_points: n - lost.len(),
                total_points: n,
                dropped_shards: dropped,
            })
        };
        let solution = KCenterSolution::new(self.k, centers, radius);
        let stats = cluster.into_stats();
        Ok(MrgResult {
            solution,
            reduction_rounds,
            mapreduce_rounds: reduction_rounds + 1,
            approximation_factor: 2.0 * (reduction_rounds as f64 + 1.0),
            capacity,
            stats,
            degraded,
        })
    }
}

/// The outcome of an MRG run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MrgResult {
    /// The selected centers and their covering radius over the full space.
    pub solution: KCenterSolution,
    /// Number of parallel reduction rounds (iterations of the while loop).
    pub reduction_rounds: usize,
    /// Total number of MapReduce rounds, including the final single-machine
    /// round (the paper's two-round case has `reduction_rounds == 1`).
    pub mapreduce_rounds: usize,
    /// The proven approximation factor for this round count:
    /// `2 · (reduction_rounds + 1)`.
    pub approximation_factor: f64,
    /// The per-machine capacity that was in force.
    pub capacity: usize,
    /// Per-round cost accounting (the paper's simulated time plus wall
    /// clock).
    pub stats: JobStats,
    /// `Some` iff degrade mode dropped at least one shard.  The solution's
    /// radius is then a certificate over `covered_points` surviving points
    /// only, and the Lemma 2/3 approximation factor no longer applies —
    /// the radius is honest (directly measured over the survivors) but the
    /// a-priori guarantee is void.
    pub degraded: Option<DegradedRun>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::optimal_radius;
    use crate::gonzalez::GonzalezConfig;
    use kcenter_metric::{Point, SquaredEuclidean, VecSpace};

    /// A deterministic pseudo-random cloud in the unit square scaled by 100.
    fn cloud(n: usize, seed: u64) -> VecSpace {
        VecSpace::new(
            (0..n)
                .map(|i| {
                    let v = seed
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(i as u64)
                        .wrapping_mul(1_442_695_040_888_963_407);
                    let x = (v % 10_000) as f64 / 100.0;
                    let y = ((v >> 32) % 10_000) as f64 / 100.0;
                    Point::xy(x, y)
                })
                .collect(),
        )
    }

    #[test]
    fn two_round_case_runs_two_mapreduce_rounds() {
        let space = cloud(2_000, 1);
        let result = MrgConfig::new(5).with_machines(10).run(&space).unwrap();
        assert_eq!(result.reduction_rounds, 1);
        assert_eq!(result.mapreduce_rounds, 2);
        assert_eq!(result.approximation_factor, 4.0);
        assert_eq!(result.solution.centers.len(), 5);
        assert_eq!(result.stats.num_rounds(), 2);
        // First round used several machines, final round exactly one.
        assert!(result.stats.rounds()[0].machines_used > 1);
        assert_eq!(result.stats.rounds()[1].machines_used, 1);
    }

    #[test]
    fn small_input_that_fits_on_one_machine_degenerates_to_gon() {
        let space = cloud(100, 2);
        let result = MrgConfig::new(4)
            .with_machines(10)
            .with_capacity(1_000)
            .run(&space)
            .unwrap();
        assert_eq!(result.reduction_rounds, 0);
        assert_eq!(result.mapreduce_rounds, 1);
        assert_eq!(result.approximation_factor, 2.0);
        // Identical to plain GON because the same sub-procedure ran on the
        // full point set with the same first center.
        let gon = GonzalezConfig::new(4).solve(&space).unwrap();
        assert_eq!(result.solution.centers, gon.centers);
        assert_eq!(result.solution.radius, gon.radius);
    }

    #[test]
    fn forced_multi_round_regime_adds_rounds_and_loosens_factor() {
        let space = cloud(3_000, 3);
        // Capacity below k·m (10·20 = 200) but above n/m (150) forces the
        // Lemma 3 multi-round regime.
        let result = MrgConfig::new(10)
            .with_machines(20)
            .with_capacity(160)
            .run(&space)
            .unwrap();
        assert!(
            result.reduction_rounds >= 2,
            "expected >= 2 reduction rounds, got {}",
            result.reduction_rounds
        );
        assert_eq!(
            result.approximation_factor,
            2.0 * (result.reduction_rounds as f64 + 1.0)
        );
        assert_eq!(result.solution.centers.len(), 10);
        // The solution is still a valid covering.
        assert!(result.solution.radius.is_finite());
    }

    #[test]
    fn no_progress_is_reported_when_k_exceeds_capacity() {
        let space = cloud(500, 4);
        // k = 60 > capacity = 50: each round produces >= as many centers as
        // it consumed points per machine, so the sample cannot shrink.
        let err = MrgConfig::new(60)
            .with_machines(5)
            .with_capacity(50)
            .with_unchecked_capacity()
            .run(&space)
            .unwrap_err();
        assert!(matches!(err, KCenterError::NoProgress { .. }));
    }

    #[test]
    fn capacity_enforcement_rejects_oversized_partitions() {
        let space = cloud(1_000, 5);
        // capacity 30 with 10 machines -> partitions of 100 > 30.
        let err = MrgConfig::new(2)
            .with_machines(10)
            .with_capacity(30)
            .run(&space)
            .unwrap_err();
        assert!(matches!(err, KCenterError::MapReduce(_)));
    }

    #[test]
    fn four_approximation_holds_against_brute_force_on_small_instances() {
        for seed in 0..4u64 {
            let space = cloud(18, seed);
            for k in [2usize, 3] {
                let opt = optimal_radius(&space, k).unwrap();
                let result = MrgConfig::new(k)
                    .with_machines(3)
                    .with_capacity(6)
                    .run(&space)
                    .unwrap();
                assert!(result.reduction_rounds >= 1);
                let bound = result.approximation_factor * opt + 1e-9;
                assert!(
                    result.solution.radius <= bound,
                    "MRG exceeded its bound: {} > {} (seed {seed}, k {k}, rounds {})",
                    result.solution.radius,
                    bound,
                    result.reduction_rounds
                );
            }
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        let empty = VecSpace::new(vec![]);
        assert_eq!(
            MrgConfig::new(3).run(&empty).unwrap_err(),
            KCenterError::EmptyInput
        );

        let space = cloud(50, 6);
        assert_eq!(
            MrgConfig::new(0).run(&space).unwrap_err(),
            KCenterError::ZeroK
        );
        assert!(matches!(
            MrgConfig::new(2).with_machines(0).run(&space).unwrap_err(),
            KCenterError::InvalidParameter {
                name: "machines",
                ..
            }
        ));

        let sq = VecSpace::with_distance(
            vec![Point::xy(0.0, 0.0), Point::xy(1.0, 1.0)],
            SquaredEuclidean,
        );
        assert!(matches!(
            MrgConfig::new(1).run(&sq).unwrap_err(),
            KCenterError::NotAMetric { .. }
        ));
    }

    #[test]
    fn hochbaum_shmoys_subprocedure_also_works() {
        let space = cloud(400, 7);
        let result = MrgConfig::new(4)
            .with_machines(8)
            .with_capacity(60)
            .with_solver(SequentialSolver::HochbaumShmoys)
            .run(&space)
            .unwrap();
        assert_eq!(result.solution.centers.len(), 4);
        assert!(result.solution.radius.is_finite());
        // Comparable to the GON-based run (both within constant factors).
        let gon_based = MrgConfig::new(4)
            .with_machines(8)
            .with_capacity(60)
            .run(&space)
            .unwrap();
        assert!(result.solution.radius <= 4.0 * gon_based.solution.radius + 1e-9);
    }

    #[test]
    fn effective_capacity_defaults_to_paper_rule() {
        let config = MrgConfig::new(100);
        // max(ceil(n/m), k*m) with m = 50: ceil(1M/50) = 20,000 > 100*50.
        assert_eq!(config.effective_capacity(1_000_000), 20_000);
        assert_eq!(
            MrgConfig::new(2).with_capacity(7).effective_capacity(1_000),
            7
        );
    }

    #[test]
    fn eventually_succeeding_faults_leave_the_result_bit_identical() {
        use kcenter_mapreduce::{FaultKind, FaultPlan, FaultPolicy, ScheduledFault};
        let space = cloud(2_000, 11);
        let clean = MrgConfig::new(5).with_machines(10).run(&space).unwrap();
        // Crash two different reducers on their first attempt and straggle
        // a third: every partition still succeeds within 3 attempts.
        let plan = FaultPlan::explicit(vec![
            ScheduledFault {
                round: 0,
                machine: 2,
                attempt: 0,
                kind: FaultKind::Crash,
            },
            ScheduledFault {
                round: 0,
                machine: 7,
                attempt: 0,
                kind: FaultKind::Corrupt,
            },
            ScheduledFault {
                round: 0,
                machine: 4,
                attempt: 0,
                kind: FaultKind::Straggle { factor: 5.0 },
            },
        ]);
        let faulty = MrgConfig::new(5)
            .with_machines(10)
            .with_faults(FaultConfig::new(plan).with_policy(FaultPolicy::with_max_attempts(3)))
            .run(&space)
            .unwrap();
        assert_eq!(faulty.solution.centers, clean.solution.centers);
        assert_eq!(faulty.solution.radius, clean.solution.radius);
        assert!(faulty.degraded.is_none());
        let summary = faulty.stats.fault_summary();
        assert_eq!(summary.crashes, 1);
        assert_eq!(summary.rejections, 1);
        assert_eq!(summary.stragglers, 1);
        assert_eq!(summary.retries, 2);
    }

    #[test]
    fn degrade_mode_drops_a_dead_shard_and_reports_partial_coverage() {
        use kcenter_mapreduce::{FaultKind, FaultPlan, FaultPolicy, ScheduledFault};
        let space = cloud(2_000, 12);
        // Machine 3 dies on every attempt of round 0.
        let plan = FaultPlan::explicit(
            (0..3)
                .map(|attempt| ScheduledFault {
                    round: 0,
                    machine: 3,
                    attempt,
                    kind: FaultKind::Crash,
                })
                .collect(),
        );
        let faults = FaultConfig::new(plan)
            .with_policy(FaultPolicy::with_max_attempts(3))
            .with_degrade(true);
        let result = MrgConfig::new(5)
            .with_machines(10)
            .with_faults(faults.clone())
            .run(&space)
            .unwrap();
        let degraded = result.degraded.expect("the run must be marked degraded");
        // 10 machines over 2,000 points: the dead shard held 200 points.
        assert_eq!(degraded.total_points, 2_000);
        assert_eq!(degraded.covered_points, 1_800);
        assert!((degraded.coverage_fraction() - 0.9).abs() < 1e-12);
        assert_eq!(degraded.dropped_shards.len(), 1);
        assert_eq!(degraded.dropped_shards[0].machine, 3);
        assert_eq!(degraded.dropped_shards[0].items, 200);
        assert_eq!(result.stats.fault_summary().shards_dropped, 1);
        // The radius is a true certificate over the survivors.
        assert!(result.solution.radius.is_finite());

        // Without degrade mode the same plan fails the run with provenance.
        let err = MrgConfig::new(5)
            .with_machines(10)
            .with_faults(faults.with_degrade(false))
            .run(&space)
            .unwrap_err();
        match err {
            KCenterError::MapReduce(MapReduceError::RoundFailed {
                round,
                machine,
                attempts,
                ..
            }) => {
                assert_eq!(round, 0);
                assert_eq!(machine, 3);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected RoundFailed, got {other:?}"),
        }
    }

    #[test]
    fn threaded_executor_reproduces_the_simulated_run_bit_for_bit() {
        let space = cloud(2_000, 13);
        let simulated = MrgConfig::new(5).with_machines(10).run(&space).unwrap();
        for threads in [1usize, 3, 8] {
            let threaded = MrgConfig::new(5)
                .with_machines(10)
                .with_executor(Executor::threads(threads))
                .run(&space)
                .unwrap();
            assert_eq!(threaded.solution.centers, simulated.solution.centers);
            assert_eq!(threaded.solution.radius, simulated.solution.radius);
            assert_eq!(threaded.reduction_rounds, simulated.reduction_rounds);
            for r in threaded.stats.rounds() {
                assert_eq!(r.executor, Executor::threads(threads));
            }
        }
    }

    #[test]
    fn stats_expose_paper_style_accounting() {
        let space = cloud(5_000, 8);
        let result = MrgConfig::new(10).with_machines(25).run(&space).unwrap();
        let stats = &result.stats;
        assert_eq!(stats.num_rounds(), result.mapreduce_rounds);
        assert!(stats.simulated_time() <= stats.sequential_time());
        assert_eq!(stats.rounds()[0].items_in, 5_000);
    }
}
