//! The sequential sub-procedure used inside the parallel algorithms.
//!
//! Both MRG and EIM end by running a sequential k-center algorithm on a
//! sample that fits on one machine, and MRG additionally runs one inside
//! every reducer.  The paper uses GON for all of these ("For all parallel
//! implementations, GON is the subprocedure for selecting the final
//! centers") and asks, as future work, how alternatives such as
//! Hochbaum–Shmoys would behave; [`SequentialSolver`] lets the caller pick.

use crate::gonzalez::{self, FirstCenter};
use crate::hochbaum_shmoys;
use kcenter_metric::grid::RelaxGridCache;
use kcenter_metric::{MetricSpace, PointId};
use serde::{Deserialize, Serialize};

/// Which sequential k-center algorithm the parallel schemes use internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SequentialSolver {
    /// Gonzalez's greedy farthest-point algorithm (the paper's choice).
    #[default]
    Gonzalez,
    /// The Hochbaum–Shmoys bottleneck algorithm (the paper's future-work
    /// alternative).  Quadratic in the subset size, so only sensible for
    /// the smaller aggregation rounds.
    HochbaumShmoys,
}

impl SequentialSolver {
    /// Selects at most `k` centers from `subset`.
    pub fn select_centers<S: MetricSpace + ?Sized>(
        &self,
        space: &S,
        subset: &[PointId],
        k: usize,
        first: FirstCenter,
    ) -> Vec<PointId> {
        match self {
            SequentialSolver::Gonzalez => gonzalez::select_centers(space, subset, k, first, false),
            SequentialSolver::HochbaumShmoys => hochbaum_shmoys::select_centers(space, subset, k),
        }
    }

    /// Selects at most `k` centers from a **weighted** subset, where
    /// `weights[i]` is the multiplicity of `subset[i]` (the number of
    /// source points a coreset representative covers).  This is the entry
    /// point the coreset layer routes through: positive multiplicities
    /// leave the max-radius objective untouched (all-unit weights are
    /// bit-for-bit the unweighted selection), while zero-weight summary
    /// rows are excluded from both candidacy and coverage.
    ///
    /// # Panics
    ///
    /// Panics if `subset` and `weights` have different lengths.
    pub fn select_centers_weighted<S: MetricSpace + ?Sized>(
        &self,
        space: &S,
        subset: &[PointId],
        weights: &[u64],
        k: usize,
        first: FirstCenter,
    ) -> Vec<PointId> {
        self.select_centers_weighted_cached(space, subset, weights, k, first, None)
    }

    /// [`SequentialSolver::select_centers_weighted`] with an optional
    /// build-once relax-grid cache for the subset (see
    /// [`gonzalez::select_centers_cached`] for the keying contract).  Only
    /// Gonzalez consults it — Hochbaum–Shmoys has no relax grid — and
    /// results are bit-identical with or without the cache.
    ///
    /// # Panics
    ///
    /// Panics if `subset` and `weights` have different lengths.
    pub fn select_centers_weighted_cached<S: MetricSpace + ?Sized>(
        &self,
        space: &S,
        subset: &[PointId],
        weights: &[u64],
        k: usize,
        first: FirstCenter,
        relax_cache: Option<&RelaxGridCache>,
    ) -> Vec<PointId> {
        match self {
            SequentialSolver::Gonzalez => gonzalez::select_centers_weighted_cached(
                space,
                subset,
                weights,
                k,
                first,
                false,
                relax_cache,
            ),
            SequentialSolver::HochbaumShmoys => {
                hochbaum_shmoys::select_centers_weighted(space, subset, weights, k)
            }
        }
    }

    /// Name used in experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            SequentialSolver::Gonzalez => "gonzalez",
            SequentialSolver::HochbaumShmoys => "hochbaum-shmoys",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::{Point, VecSpace};

    #[test]
    fn default_is_gonzalez_like_the_paper() {
        assert_eq!(SequentialSolver::default(), SequentialSolver::Gonzalez);
        assert_eq!(SequentialSolver::Gonzalez.name(), "gonzalez");
        assert_eq!(SequentialSolver::HochbaumShmoys.name(), "hochbaum-shmoys");
    }

    #[test]
    fn both_solvers_pick_k_centers_from_the_subset() {
        let space = VecSpace::new(vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(10.0, 0.0),
            Point::xy(11.0, 0.0),
            Point::xy(20.0, 0.0),
        ]);
        let subset = vec![0, 2, 3, 4];
        for solver in [SequentialSolver::Gonzalez, SequentialSolver::HochbaumShmoys] {
            let centers = solver.select_centers(&space, &subset, 2, FirstCenter::default());
            assert_eq!(centers.len(), 2, "{}", solver.name());
            assert!(
                centers.iter().all(|c| subset.contains(c)),
                "{}",
                solver.name()
            );
        }
    }

    #[test]
    fn weighted_dispatch_matches_unweighted_on_unit_weights() {
        let space = VecSpace::new(vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(10.0, 0.0),
            Point::xy(11.0, 0.0),
            Point::xy(20.0, 0.0),
        ]);
        let subset = vec![0, 1, 2, 3, 4];
        let ones = vec![1u64; subset.len()];
        for solver in [SequentialSolver::Gonzalez, SequentialSolver::HochbaumShmoys] {
            let plain = solver.select_centers(&space, &subset, 2, FirstCenter::default());
            let weighted =
                solver.select_centers_weighted(&space, &subset, &ones, 2, FirstCenter::default());
            assert_eq!(plain, weighted, "{}", solver.name());
        }
    }
}
