//! k-center **with outliers**: the robust variant that may drop the `z`
//! farthest points before measuring the covering radius.
//!
//! The MPC line of related work (Czumaj–Gao–Ghaffari–Jiang; Coy–Czumaj–
//! Mishra) treats the with-outliers objective as first-class, and it is the
//! natural robustness knob for adversarial workloads: a handful of planted
//! far points otherwise dominate the max-of-mins objective no matter how
//! good the centers are.  Given a center set chosen by *any* solver arm,
//! [`evaluate_with_outliers`] certifies the radius over the kept `n − z`
//! points by ranking every point's nearest-center distance in
//! **certification space** (`wide_cmp_*`: squared distances accumulated in
//! `f64` from the stored rows — the same arithmetic as
//! [`covering_radius`]) and discarding
//! the `z` largest.
//!
//! # Determinism contract
//!
//! The dropped set is ordered by `(certified distance descending, point id
//! ascending)` — bit-deterministic per `(seed, precision, kernel, assign)`
//! like every other reported quantity.  With `z = 0` the kept radius is
//! **bit-identical** to [`covering_radius`]:
//! both compute the same `f64` max over the same per-point certification
//! values and convert once at the end (pinned by the outlier-parity tests).

use crate::evaluate::covering_radius;
use kcenter_metric::{MetricSpace, PointId};
use rayon::prelude::*;

/// Below this many (point, center) pairs the per-point distance scan runs
/// sequentially (mirrors `evaluate::PARALLEL_THRESHOLD`).
const PARALLEL_THRESHOLD: usize = 1 << 14;

/// The certified result of evaluating a center set under the with-outliers
/// objective.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierEvaluation {
    /// Certified covering radius over the kept `n − z` points (`0.0` when
    /// every point is dropped or the space is empty; `f64::INFINITY` when
    /// `centers` is empty but kept points remain).
    pub radius: f64,
    /// Certified covering radius over **all** points — always `>= radius`.
    pub full_radius: f64,
    /// The dropped points: the `z` farthest from the center set, ordered by
    /// certified distance descending, ties by ascending point id.
    pub dropped: Vec<PointId>,
}

impl OutlierEvaluation {
    /// Number of dropped points.
    pub fn z(&self) -> usize {
        self.dropped.len()
    }
}

/// Certifies `centers` under the with-outliers objective, dropping the `z`
/// farthest points of `space`.
///
/// Runs entirely in certification space: per-point nearest-center values
/// are accumulated in `f64` from the stored rows (`wide_cmp_*`), the drop
/// set is selected on those wide values with deterministic ties (farther
/// first, then lower id), and exactly two conversions back to real
/// distances are made — one for the kept radius, one for the full radius.
///
/// Requesting `z >= n` drops everything and certifies a zero radius over
/// the empty remainder.
pub fn evaluate_with_outliers<S: MetricSpace + ?Sized>(
    space: &S,
    centers: &[PointId],
    z: usize,
) -> OutlierEvaluation {
    let n = space.len();
    if n == 0 {
        return OutlierEvaluation {
            radius: 0.0,
            full_radius: 0.0,
            dropped: Vec::new(),
        };
    }
    if z == 0 {
        // Fast path, and the parity anchor: identical code path to the
        // plain certified radius.
        let r = covering_radius(space, centers);
        return OutlierEvaluation {
            radius: r,
            full_radius: r,
            dropped: Vec::new(),
        };
    }
    if centers.is_empty() {
        let dropped: Vec<PointId> = (0..z.min(n)).collect();
        let radius = if z >= n { 0.0 } else { f64::INFINITY };
        return OutlierEvaluation {
            radius,
            full_radius: f64::INFINITY,
            dropped,
        };
    }

    // Certification-space nearest-center value for every point.  Unlike the
    // pruned max-of-mins scan, ranking needs every point's exact value, so
    // the bounded early exit cannot apply here.
    let wide_one = |p: PointId| space.wide_cmp_distance_to_set(p, centers);
    let wide: Vec<f64> = if n.saturating_mul(centers.len()) >= PARALLEL_THRESHOLD {
        (0..n).into_par_iter().map(wide_one).collect()
    } else {
        (0..n).map(wide_one).collect()
    };

    // Rank ids by (value desc, id asc): a total, deterministic order.
    let mut order: Vec<PointId> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| wide[b].total_cmp(&wide[a]).then(a.cmp(&b)));

    let z = z.min(n);
    let dropped = order[..z].to_vec();
    let full_radius = space.wide_cmp_to_distance(wide[order[0]].max(0.0));
    let radius = if z >= n {
        0.0
    } else {
        space.wide_cmp_to_distance(wide[order[z]].max(0.0))
    };
    OutlierEvaluation {
        radius,
        full_radius,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::{Point, VecSpace};

    fn line(n: usize) -> VecSpace {
        VecSpace::new((0..n).map(|i| Point::xy(i as f64, 0.0)).collect())
    }

    #[test]
    fn dropping_the_farthest_point_shrinks_the_radius() {
        // Points 0..10 on a line plus a far outlier at x = 100.
        let mut pts: Vec<Point> = (0..10).map(|i| Point::xy(i as f64, 0.0)).collect();
        pts.push(Point::xy(100.0, 0.0));
        let space = VecSpace::new(pts);
        let eval = evaluate_with_outliers(&space, &[0], 1);
        assert_eq!(eval.dropped, vec![10]);
        assert!((eval.full_radius - 100.0).abs() < 1e-9);
        assert!((eval.radius - 9.0).abs() < 1e-9);
    }

    #[test]
    fn z_zero_matches_covering_radius_bitwise() {
        let space = line(50);
        let centers = [0, 25];
        let eval = evaluate_with_outliers(&space, &centers, 0);
        let plain = covering_radius(&space, &centers);
        assert_eq!(eval.radius.to_bits(), plain.to_bits());
        assert_eq!(eval.full_radius.to_bits(), plain.to_bits());
        assert!(eval.dropped.is_empty());
    }

    #[test]
    fn ties_drop_the_lowest_id_first() {
        // Four points at distance 1 from the center, two at distance 2.
        let pts = vec![
            Point::xy(0.0, 0.0),  // center
            Point::xy(2.0, 0.0),  // far, id 1
            Point::xy(-2.0, 0.0), // far, id 2
            Point::xy(1.0, 0.0),
            Point::xy(-1.0, 0.0),
        ];
        let space = VecSpace::new(pts);
        let eval = evaluate_with_outliers(&space, &[0], 1);
        // Both far points tie at distance 2: the lower id is dropped.
        assert_eq!(eval.dropped, vec![1]);
        assert!((eval.radius - 2.0).abs() < 1e-12);
        let eval2 = evaluate_with_outliers(&space, &[0], 2);
        assert_eq!(eval2.dropped, vec![1, 2]);
        assert!((eval2.radius - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dropping_everything_certifies_zero() {
        let space = line(5);
        let eval = evaluate_with_outliers(&space, &[0], 5);
        assert_eq!(eval.radius, 0.0);
        assert_eq!(eval.dropped.len(), 5);
        // Oversized z clamps to n.
        let eval = evaluate_with_outliers(&space, &[0], 99);
        assert_eq!(eval.dropped.len(), 5);
        assert_eq!(eval.radius, 0.0);
    }

    #[test]
    fn empty_center_set_is_infinite_until_everything_drops() {
        let space = line(4);
        let eval = evaluate_with_outliers(&space, &[], 2);
        assert!(eval.radius.is_infinite());
        assert!(eval.full_radius.is_infinite());
        assert_eq!(eval.dropped, vec![0, 1]);
        let all = evaluate_with_outliers(&space, &[], 4);
        assert_eq!(all.radius, 0.0);
    }

    #[test]
    fn empty_space_is_trivially_covered() {
        let space = VecSpace::new(vec![]);
        let eval = evaluate_with_outliers(&space, &[], 3);
        assert_eq!(eval.radius, 0.0);
        assert!(eval.dropped.is_empty());
    }

    #[test]
    fn kept_radius_never_exceeds_full_radius() {
        let space = line(30);
        for z in 0..30 {
            let eval = evaluate_with_outliers(&space, &[7, 21], z);
            assert!(eval.radius <= eval.full_radius);
            assert_eq!(eval.z(), z);
        }
    }

    #[test]
    fn parallel_and_sequential_paths_agree_bitwise() {
        // Large enough that the ranking scan crosses PARALLEL_THRESHOLD.
        let space = line(20_000);
        let centers = [0, 10_000];
        let par = evaluate_with_outliers(&space, &centers, 10);
        // A 3-point subset stays sequential; instead re-run and compare the
        // deterministic outputs — position-stable parallel map means the
        // wide vector is identical across thread counts.
        let again = evaluate_with_outliers(&space, &centers, 10);
        assert_eq!(par, again);
        assert!(par.radius <= par.full_radius);
    }
}
