//! EIM — the iterative-sampling MapReduce k-center algorithm of Ene, Im &
//! Moseley (KDD 2011), as re-implemented and generalised by the paper
//! (Algorithms 2 and 3, Sections 4 and 6).
//!
//! The scheme keeps a shrinking set `R` of "unrepresented" points and a
//! growing sample `S`.  Each iteration of the main loop spends three
//! MapReduce rounds:
//!
//! 1. every reducer independently adds each of its points to `S` with
//!    probability `9·k·n^ε·log n / |R|` and to the pivot-candidate set `H`
//!    with probability `4·n^ε·log n / |R|`;
//! 2. a single reducer runs `Select(H, S)` — it orders `H` by distance to
//!    `S` (farthest first) and picks the pivot `v` in position `φ·log n`
//!    (the paper's new parameter φ; the original scheme fixes φ = 8);
//! 3. every reducer drops from `R` each point whose distance to `S` is at
//!    most `d(v, S)`.
//!
//! The loop ends once `|R| ≤ (4/ε)·k·n^ε·log n`; `C = S ∪ R` is then handed
//! to a sequential k-center algorithm (GON) in one final round.  With high
//! probability this is a 10-approximation when a 2-approximation is used in
//! the final round and φ > 5.15 (Section 6).
//!
//! The two termination fixes of Section 4.1 are implemented: points at
//! distance *equal* to the pivot's are removed as well, and points that were
//! just sampled into `S` are always removed from `R`.
//!
//! One deliberate implementation difference from the paper's cost
//! accounting: distances to the growing sample are maintained in an
//! incremental cache, so rounds 2 and 3 only scan the *newly added* sample
//! points instead of all of `S`.  This is a strict speed-up that does not
//! change any output (the minimum over `S` equals the minimum of the cached
//! value and the minimum over the additions) and only strengthens the
//! paper's observation that round 3 dominates the runtime.

use crate::error::KCenterError;
use crate::evaluate::{covering_radius, covering_radius_subset};
use crate::gonzalez::FirstCenter;
use crate::select::{select_pivot, PHI_ORIGINAL};
use crate::solution::KCenterSolution;
use crate::solver::SequentialSolver;
use kcenter_mapreduce::{
    partition, Cluster, ClusterConfig, DegradedRun, DroppedShard, Executor, FaultConfig, JobStats,
    MapReduceError,
};
use kcenter_metric::{MetricSpace, PointId, Scalar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the EIM sampling algorithm.
///
/// ```
/// use kcenter_core::EimConfig;
/// use kcenter_metric::{Point, VecSpace};
///
/// let space = VecSpace::new((0..500).map(|i| Point::xy(i as f64, 0.0)).collect());
/// // At this size the loop threshold exceeds n, so EIM degenerates to the
/// // sequential solver on the whole input — the paper's Figure 3b regime.
/// let result = EimConfig::new(10).with_seed(7).run(&space).unwrap();
/// assert!(result.fell_back_to_sequential);
/// assert_eq!(result.solution.centers.len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EimConfig {
    /// Number of centers to select.
    pub k: usize,
    /// The sampling exponent ε; the paper (following Ene et al.) uses 0.1.
    pub epsilon: f64,
    /// The pivot-rank parameter φ introduced by the paper; 8 reproduces the
    /// original Ene et al. behaviour, values above 5.15 keep the
    /// probabilistic guarantee, smaller values trade quality for speed.
    pub phi: f64,
    /// Number of simulated machines (the paper fixes 50).
    pub machines: usize,
    /// Seed for all sampling randomness (results are deterministic given
    /// the seed).
    pub seed: u64,
    /// The sequential algorithm run on the final sample (GON in the paper).
    pub solver: SequentialSolver,
    /// First-center policy forwarded to the final sub-procedure.
    pub first_center: FirstCenter,
    /// Safety valve: the main loop aborts after this many iterations even
    /// if the threshold has not been reached (the paper's fixes make this
    /// unreachable in practice, but a probabilistic loop deserves a bound).
    pub max_iterations: usize,
    /// Optional deterministic fault injection (plan + retry policy +
    /// degrade mode) installed on the simulated cluster.
    pub faults: Option<FaultConfig>,
    /// How the cluster executes each round's machines: the paper's
    /// sequential simulation (the default) or real scoped threads.
    /// Outputs are bit-identical either way.
    pub executor: Executor,
}

impl EimConfig {
    /// EIM with `k` centers and the paper's defaults: ε = 0.1, φ = 8,
    /// 50 machines, GON final round.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            epsilon: 0.1,
            phi: PHI_ORIGINAL,
            machines: ClusterConfig::PAPER_MACHINES,
            seed: 0,
            solver: SequentialSolver::Gonzalez,
            first_center: FirstCenter::default(),
            max_iterations: 64,
            faults: None,
            executor: Executor::Simulated,
        }
    }

    /// Sets the sampling exponent ε (must lie in `(0, 1)`).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the pivot-rank parameter φ.
    pub fn with_phi(mut self, phi: f64) -> Self {
        self.phi = phi;
        self
    }

    /// Sets the number of simulated machines.
    pub fn with_machines(mut self, machines: usize) -> Self {
        self.machines = machines;
        self
    }

    /// Sets the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Chooses the sequential algorithm for the final round.
    pub fn with_solver(mut self, solver: SequentialSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the first-center policy of the final round.
    pub fn with_first_center(mut self, first: FirstCenter) -> Self {
        self.first_center = first;
        self
    }

    /// Installs deterministic fault injection on the simulated cluster.
    /// With `faults.degrade` set, a shard that exhausts its attempts is
    /// dropped: its points leave the coverage claim and the result carries
    /// an explicitly partial certificate (see [`EimResult::degraded`]).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Selects the cluster executor (simulated by default).
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// The loop threshold `(4/ε)·k·n^ε·log n` for an instance of `n` points:
    /// sampling only happens while `|R|` exceeds this value, so when `n` is
    /// already below it the algorithm degenerates to the sequential solver
    /// on the whole input (the behaviour visible in Figures 3b and 4b).
    pub fn sampling_threshold(&self, n: usize) -> f64 {
        let nf = n.max(2) as f64;
        (4.0 / self.epsilon) * self.k as f64 * nf.powf(self.epsilon) * nf.ln()
    }

    fn validate(&self, n: usize) -> Result<(), KCenterError> {
        if n == 0 {
            return Err(KCenterError::EmptyInput);
        }
        if self.k == 0 {
            return Err(KCenterError::ZeroK);
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(KCenterError::InvalidParameter {
                name: "epsilon",
                message: format!("must lie in (0, 1), got {}", self.epsilon),
            });
        }
        if !(self.phi > 0.0 && self.phi.is_finite()) {
            return Err(KCenterError::InvalidParameter {
                name: "phi",
                message: format!("must be positive and finite, got {}", self.phi),
            });
        }
        if self.machines == 0 {
            return Err(KCenterError::InvalidParameter {
                name: "machines",
                message: "at least one machine is required".into(),
            });
        }
        if self.max_iterations == 0 {
            return Err(KCenterError::InvalidParameter {
                name: "max_iterations",
                message: "must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// Runs EIM on the given space.
    pub fn run<S: MetricSpace + ?Sized>(&self, space: &S) -> Result<EimResult, KCenterError> {
        let n = space.len();
        let (phase, mut cluster) = sampling_phase(self, space, "")?;
        let SamplingPhase {
            sample,
            remaining,
            iterations,
            dropped,
            lost,
        } = phase;

        // Line 10: C <- S ∪ R (disjoint by construction).
        let mut coreset: Vec<PointId> = Vec::with_capacity(sample.len() + remaining.len());
        coreset.extend(sample.iter().copied());
        coreset.extend(remaining.iter().copied());
        let sample_size = coreset.len();
        if coreset.is_empty() {
            // Degrade mode lost every point: nothing to degrade to.
            let shard = dropped.last().expect("an empty hand-off set implies drops");
            return Err(KCenterError::MapReduce(MapReduceError::RoundFailed {
                round: shard.round,
                machine: shard.machine,
                attempts: shard.attempts,
                source: shard.cause,
            }));
        }

        // Final clean-up round: a sequential k-center algorithm on C.
        // This round never degrades — without its single reducer there is
        // no solution at all, so an exhausted final round is always an
        // error, even in degrade mode.
        let solver = self.solver;
        let k = self.k;
        let first = self.first_center;
        let centers = cluster.run_single(
            &format!("EIM final round: {} on the sample", solver.name()),
            coreset,
            |c| solver.select_centers(space, c, k, first),
            Vec::len,
        )?;

        // The certificate: a degraded run restates the covering radius over
        // the surviving points only — never silently over the full input.
        let radius = if lost.is_empty() {
            covering_radius(space, &centers)
        } else {
            let mut is_lost = vec![false; n];
            for &p in &lost {
                is_lost[p] = true;
            }
            let survivors: Vec<PointId> = (0..n).filter(|&p| !is_lost[p]).collect();
            covering_radius_subset(space, &survivors, &centers)
        };
        let degraded = if dropped.is_empty() {
            None
        } else {
            Some(DegradedRun {
                covered_points: n - lost.len(),
                total_points: n,
                dropped_shards: dropped,
            })
        };
        let solution = KCenterSolution::new(self.k, centers, radius);
        Ok(EimResult {
            solution,
            iterations,
            mapreduce_rounds: 3 * iterations + 1,
            sample_size,
            fell_back_to_sequential: iterations == 0,
            phi: self.phi,
            epsilon: self.epsilon,
            stats: cluster.into_stats(),
            degraded,
        })
    }
}

/// The state left behind by EIM's iterative-sampling loop: the sample `S`,
/// the still-unrepresented points `R`, and how many iterations ran.  The
/// union `S ∪ R` (disjoint by construction) is the paper's hand-off set
/// `C`, which [`EimConfig::run`] clusters immediately and the coreset
/// builder (`crate::coreset`) instead weighs and keeps.
pub(crate) struct SamplingPhase {
    /// The accumulated sample `S`.
    pub sample: Vec<PointId>,
    /// The surviving unrepresented set `R`.
    pub remaining: Vec<PointId>,
    /// Iterations of the sampling loop that actually ran.
    pub iterations: usize,
    /// Shards dropped by degrade mode (empty without faults or drops).
    pub dropped: Vec<DroppedShard>,
    /// Source points that left the coverage claim with a dropped shard:
    /// a round-1 drop loses its whole chunk (those points were neither
    /// sampled nor filtered), a round-3 drop loses the unsampled part of
    /// its chunk, and a round-2 (Select) drop loses no points — only the
    /// pivot, so that iteration simply filters nothing.
    pub lost: Vec<PointId>,
}

/// Runs Algorithm 2's sampling loop (three MapReduce rounds per iteration)
/// and returns the phase outcome together with the cluster whose `JobStats`
/// charged those rounds, so callers can keep charging follow-up rounds to
/// the same accounting.  Round labels are prefixed with `label_prefix` so a
/// multi-phase job (e.g. the coreset builder) can slice the sampling cost
/// back out of the stats.
pub(crate) fn sampling_phase<S: MetricSpace + ?Sized>(
    config: &EimConfig,
    space: &S,
    label_prefix: &str,
) -> Result<(SamplingPhase, Cluster), KCenterError> {
    let n = space.len();
    config.validate(n)?;
    if !space.is_metric() {
        return Err(KCenterError::NotAMetric {
            distance: space.distance_name(),
        });
    }

    let nf = n.max(2) as f64;
    let log_n = nf.ln();
    let n_eps = nf.powf(config.epsilon);
    let threshold = config.sampling_threshold(n);

    // EIM has no per-machine capacity parameter; partitions are always
    // `⌈|R|/m⌉` points, which the paper's setup comfortably holds.
    let mut cluster = Cluster::unchecked(ClusterConfig::new(config.machines, n.max(1)))
        .with_executor(config.executor);
    if let Some(faults) = &config.faults {
        cluster.set_fault_injection(Some(faults.clone()));
    }
    let degrade = cluster.degrade_enabled();
    let mut dropped: Vec<DroppedShard> = Vec::new();
    let mut lost: Vec<PointId> = Vec::new();

    // Algorithm 2, line 1: S <- ∅, R <- V.
    let mut sample: Vec<PointId> = Vec::new();
    let mut in_sample = vec![false; n];
    let mut remaining: Vec<PointId> = (0..n).collect();
    // Incremental cache of d(x, S) for every point, kept in comparison
    // space (squared for Euclidean, at storage precision for a
    // reduced-precision store): Select and the round-3 filter only
    // ever *compare* these values, so the monotone surrogate gives the
    // same pivot and the same removals without a sqrt per pair.
    let mut dist_to_sample: Vec<S::Cmp> = vec![<S::Cmp as Scalar>::INFINITY; n];

    let mut iterations = 0usize;

    // Line 2: while |R| > (4/ε)·k·n^ε·log n.
    while (remaining.len() as f64) > threshold && iterations < config.max_iterations {
        let r_len = remaining.len() as f64;
        let p_sample = (9.0 * config.k as f64 * n_eps * log_n / r_len).min(1.0);
        let p_pivot = (4.0 * n_eps * log_n / r_len).min(1.0);
        let base_seed = mix_seed(config.seed, iterations as u64);

        // ---- Round 1 (lines 3-4): independent sampling on every reducer.
        let parts = partition::chunks(&remaining, config.machines);
        let round1_label = format!(
            "{label_prefix}EIM iteration {} round 1: sample S and H",
            iterations + 1
        );
        let round1_reduce = |machine: usize, chunk: &[PointId]| {
            let mut rng = StdRng::seed_from_u64(mix_seed(base_seed, machine as u64));
            let mut s_i = Vec::new();
            let mut h_i = Vec::new();
            for &x in chunk {
                if rng.gen::<f64>() < p_sample {
                    s_i.push(x);
                }
                if rng.gen::<f64>() < p_pivot {
                    h_i.push(x);
                }
            }
            (s_i, h_i)
        };
        let round1_count = |(s_i, h_i): &(Vec<PointId>, Vec<PointId>)| s_i.len() + h_i.len();
        let sampled: Vec<(Vec<PointId>, Vec<PointId>)> = if degrade {
            let out =
                cluster.run_round_degradable(&round1_label, &parts, round1_reduce, round1_count)?;
            let mut survived = Vec::new();
            let mut lost_now: Vec<PointId> = Vec::new();
            for (i, o) in out.outputs.into_iter().enumerate() {
                match o {
                    Some(pair) => survived.push(pair),
                    // The chunk's points were neither sampled nor filtered:
                    // they leave both R and the coverage claim.
                    None => lost_now.extend_from_slice(&parts[i]),
                }
            }
            dropped.extend(out.dropped);
            if !lost_now.is_empty() {
                let mut is_lost = vec![false; n];
                for &x in &lost_now {
                    is_lost[x] = true;
                }
                remaining.retain(|&x| !is_lost[x]);
                lost.extend(lost_now);
            }
            survived
        } else {
            cluster.run_round(&round1_label, &parts, round1_reduce, round1_count)?
        };

        // Line 5: S <- S ∪ (∪_i S^i), H <- ∪_i H^i.
        let mut additions: Vec<PointId> = Vec::new();
        let mut pivot_candidates: Vec<PointId> = Vec::new();
        for (s_i, h_i) in sampled {
            for x in s_i {
                if !in_sample[x] {
                    in_sample[x] = true;
                    additions.push(x);
                }
            }
            pivot_candidates.extend(h_i);
        }
        sample.extend(additions.iter().copied());

        // ---- Round 2 (lines 5-6): a single reducer runs Select(H, S).
        let phi = config.phi;
        let additions_ref: &[PointId] = &additions;
        let dist_ref: &[S::Cmp] = &dist_to_sample;
        let round2_label = format!(
            "{label_prefix}EIM iteration {} round 2: Select(H, S)",
            iterations + 1
        );
        let round2_reduce = |h: &[PointId]| {
            let with_dist: Vec<(PointId, S::Cmp)> = h
                .iter()
                .map(|&x| {
                    (
                        x,
                        distance_with_additions(space, x, dist_ref[x], additions_ref),
                    )
                })
                .collect();
            select_pivot(&with_dist, phi, n)
        };
        let round2_count = |p: &Option<(PointId, S::Cmp)>| usize::from(p.is_some());
        let pivot = if degrade {
            // A dead Select round loses only the pivot, never any points:
            // the iteration simply filters nothing beyond the sampled set.
            let single = vec![pivot_candidates];
            let mut out = cluster.run_round_degradable(
                &round2_label,
                &single,
                |_, h| round2_reduce(h),
                round2_count,
            )?;
            dropped.extend(out.dropped);
            out.outputs.pop().unwrap_or(None).flatten()
        } else {
            cluster.run_single(&round2_label, pivot_candidates, round2_reduce, round2_count)?
        };

        // ---- Round 3 (lines 7-9): drop points no farther than the pivot.
        let pivot_distance = pivot.map(|(_, d)| d);
        let parts = partition::chunks(&remaining, config.machines);
        let in_sample_ref: &[bool] = &in_sample;
        let round3_label = format!(
            "{label_prefix}EIM iteration {} round 3: filter R",
            iterations + 1
        );
        let round3_reduce = |_: usize, chunk: &[PointId]| {
            chunk
                .iter()
                .filter_map(|&x| {
                    let d = distance_with_additions(space, x, dist_ref[x], additions_ref);
                    // Section 4.1 fixes: sampled points always leave R,
                    // and ties with the pivot distance are removed too.
                    if in_sample_ref[x] {
                        return None;
                    }
                    match pivot_distance {
                        Some(vd) if d <= vd => None,
                        _ => Some((x, d)),
                    }
                })
                .collect::<Vec<_>>()
        };
        let retained: Vec<Vec<(PointId, S::Cmp)>> = if degrade {
            let out =
                cluster.run_round_degradable(&round3_label, &parts, round3_reduce, Vec::len)?;
            for (i, o) in out.outputs.iter().enumerate() {
                if o.is_none() {
                    // The unsampled part of a dead filter chunk is lost:
                    // those points are unrepresented and leave both R and
                    // the coverage claim (the sampled part is in S and
                    // stays covered).
                    lost.extend(parts[i].iter().copied().filter(|&x| !in_sample_ref[x]));
                }
            }
            dropped.extend(out.dropped);
            out.outputs.into_iter().flatten().collect()
        } else {
            cluster.run_round(&round3_label, &parts, round3_reduce, Vec::len)?
        };

        let mut next_remaining = Vec::with_capacity(remaining.len());
        for part in retained {
            for (x, d) in part {
                dist_to_sample[x] = d;
                next_remaining.push(x);
            }
        }

        iterations += 1;
        if next_remaining.len() >= remaining.len() {
            // Nothing was removed: the Section 4.1 fixes make this
            // extremely unlikely, but a probabilistic loop still gets a
            // hard stop rather than spinning forever.
            remaining = next_remaining;
            break;
        }
        remaining = next_remaining;
    }

    Ok((
        SamplingPhase {
            sample,
            remaining,
            iterations,
            dropped,
            lost,
        },
        cluster,
    ))
}

/// Comparison-space `d(x, S ∪ additions)` given the cached value for `S`.
#[inline]
fn distance_with_additions<S: MetricSpace + ?Sized>(
    space: &S,
    x: PointId,
    cached: S::Cmp,
    additions: &[PointId],
) -> S::Cmp {
    let mut best = cached;
    for &y in additions {
        let d = space.cmp_distance(x, y);
        if d < best {
            best = d;
        }
    }
    best
}

/// SplitMix64-style mixing used to derive per-iteration / per-machine seeds.
fn mix_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The outcome of an EIM run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EimResult {
    /// The selected centers and their covering radius over the full space.
    pub solution: KCenterSolution,
    /// Number of iterations of the sampling loop (each costs three
    /// MapReduce rounds).  The paper observes one or two in practice.
    pub iterations: usize,
    /// Total MapReduce rounds: `3 · iterations + 1` (the final clean-up).
    pub mapreduce_rounds: usize,
    /// Size of the sample `C = S ∪ R` handed to the final sequential round.
    pub sample_size: usize,
    /// Whether the threshold was already satisfied at the start, i.e. no
    /// sampling happened and the algorithm degenerated to the sequential
    /// solver on the whole input (Figures 3b / 4b in the paper).
    pub fell_back_to_sequential: bool,
    /// The φ that was used.
    pub phi: f64,
    /// The ε that was used.
    pub epsilon: f64,
    /// Per-round cost accounting.
    pub stats: JobStats,
    /// `Some` iff degrade mode dropped at least one shard.  The solution's
    /// radius is then a certificate over `covered_points` surviving points
    /// only, and the probabilistic 10-approximation guarantee no longer
    /// applies — the radius is honest (directly measured over the
    /// survivors) but the a-priori bound is void.
    pub degraded: Option<DegradedRun>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gonzalez::GonzalezConfig;
    use kcenter_metric::{Point, SquaredEuclidean, VecSpace};

    /// Deterministic pseudo-random cloud of `n` points in a 100×100 square.
    fn cloud(n: usize, seed: u64) -> VecSpace {
        VecSpace::new(
            (0..n)
                .map(|i| {
                    let v = seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64)
                        .wrapping_mul(0xD129_0DDB_53C4_3E49);
                    let x = (v % 10_000) as f64 / 100.0;
                    let y = ((v >> 20) % 10_000) as f64 / 100.0;
                    Point::xy(x, y)
                })
                .collect(),
        )
    }

    /// An EIM configuration whose threshold is small enough that sampling
    /// actually happens at test scale (ε near 1/ln n minimises the
    /// threshold (4/ε)·k·n^ε·log n).
    fn sampling_config(k: usize) -> EimConfig {
        EimConfig::new(k)
            .with_epsilon(0.13)
            .with_machines(8)
            .with_seed(1)
    }

    #[test]
    fn falls_back_to_sequential_when_k_is_large_relative_to_n() {
        // Threshold for n=500, k=25, eps=0.1 is far above 500, so the while
        // loop never runs — exactly the behaviour in Figures 3b and 4b.
        let space = cloud(500, 1);
        let result = EimConfig::new(25).with_machines(10).run(&space).unwrap();
        assert!(result.fell_back_to_sequential);
        assert_eq!(result.iterations, 0);
        assert_eq!(result.mapreduce_rounds, 1);
        assert_eq!(result.sample_size, 500);
        // With C = V the final round is just GON on everything.
        let gon = GonzalezConfig::new(25).solve(&space).unwrap();
        assert_eq!(result.solution.centers, gon.centers);
        assert_eq!(result.solution.radius, gon.radius);
    }

    #[test]
    fn sampling_kicks_in_for_small_k_and_shrinks_the_instance() {
        let space = cloud(4_000, 2);
        let config = sampling_config(1);
        assert!(
            config.sampling_threshold(4_000) < 4_000.0,
            "test setup: threshold must be below n"
        );
        let result = config.run(&space).unwrap();
        assert!(!result.fell_back_to_sequential);
        assert!(result.iterations >= 1);
        assert_eq!(result.mapreduce_rounds, 3 * result.iterations + 1);
        assert!(
            result.sample_size < 4_000,
            "sampling should shrink the instance"
        );
        assert_eq!(result.solution.centers.len(), 1);
        assert!(result.solution.radius.is_finite() && result.solution.radius > 0.0);
    }

    #[test]
    fn threaded_executor_reproduces_the_sampling_run_bit_for_bit() {
        let space = cloud(4_000, 2);
        let simulated = sampling_config(2).run(&space).unwrap();
        assert!(!simulated.fell_back_to_sequential);
        for threads in [1usize, 4] {
            let threaded = sampling_config(2)
                .with_executor(Executor::threads(threads))
                .run(&space)
                .unwrap();
            assert_eq!(threaded.solution.centers, simulated.solution.centers);
            assert_eq!(threaded.solution.radius, simulated.solution.radius);
            assert_eq!(threaded.iterations, simulated.iterations);
            assert_eq!(threaded.sample_size, simulated.sample_size);
        }
    }

    #[test]
    fn solution_quality_is_within_the_probabilistic_bound_of_the_baseline() {
        // EIM is a 10-approximation w.h.p. while GON is a 2-approximation,
        // so EIM's radius is at most 10·OPT ≤ 10·GON.  A violation would
        // indicate a real bug rather than bad luck.
        let space = cloud(4_000, 3);
        let gon = GonzalezConfig::new(3).solve(&space).unwrap();
        let eim = sampling_config(3).run(&space).unwrap();
        assert!(
            eim.solution.radius <= 10.0 * gon.radius + 1e-9,
            "EIM radius {} exceeds 10x the GON baseline {}",
            eim.solution.radius,
            gon.radius
        );
    }

    #[test]
    fn runs_are_deterministic_given_the_seed() {
        let space = cloud(3_000, 4);
        let a = sampling_config(2).with_seed(9).run(&space).unwrap();
        let b = sampling_config(2).with_seed(9).run(&space).unwrap();
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.sample_size, b.sample_size);
        let c = sampling_config(2).with_seed(10).run(&space).unwrap();
        // A different seed samples differently (the solution may or may not
        // coincide, but the sampled coreset almost surely differs).
        assert!(c.sample_size != a.sample_size || c.solution != a.solution);
    }

    #[test]
    fn phi_variants_all_produce_valid_solutions() {
        let space = cloud(3_000, 5);
        for phi in [1.0, 4.0, 6.0, 8.0] {
            let result = sampling_config(2).with_phi(phi).run(&space).unwrap();
            assert_eq!(result.phi, phi);
            assert_eq!(result.solution.centers.len(), 2);
            assert!(result.solution.radius.is_finite());
        }
    }

    #[test]
    fn smaller_phi_never_increases_the_sample_kept_per_iteration() {
        // Statistically, a smaller phi cuts deeper each iteration, so the
        // total work (items shuffled into round-3 reducers) should not grow.
        let space = cloud(4_000, 6);
        let small = sampling_config(1).with_phi(1.0).run(&space).unwrap();
        let large = sampling_config(1).with_phi(8.0).run(&space).unwrap();
        assert!(
            small.stats.total_items_in() <= large.stats.total_items_in() * 2,
            "phi=1 should not process dramatically more items than phi=8"
        );
    }

    #[test]
    fn hochbaum_shmoys_final_round_is_supported() {
        let space = cloud(2_000, 7);
        let result = sampling_config(2)
            .with_solver(SequentialSolver::HochbaumShmoys)
            .run(&space)
            .unwrap();
        assert_eq!(result.solution.centers.len(), 2);
        assert!(result.solution.radius.is_finite());
    }

    #[test]
    fn rejects_invalid_parameters() {
        let space = cloud(100, 8);
        let empty = VecSpace::new(vec![]);
        assert_eq!(
            EimConfig::new(2).run(&empty).unwrap_err(),
            KCenterError::EmptyInput
        );
        assert_eq!(
            EimConfig::new(0).run(&space).unwrap_err(),
            KCenterError::ZeroK
        );
        assert!(matches!(
            EimConfig::new(2).with_epsilon(0.0).run(&space).unwrap_err(),
            KCenterError::InvalidParameter {
                name: "epsilon",
                ..
            }
        ));
        assert!(matches!(
            EimConfig::new(2).with_epsilon(1.5).run(&space).unwrap_err(),
            KCenterError::InvalidParameter {
                name: "epsilon",
                ..
            }
        ));
        assert!(matches!(
            EimConfig::new(2).with_phi(0.0).run(&space).unwrap_err(),
            KCenterError::InvalidParameter { name: "phi", .. }
        ));
        assert!(matches!(
            EimConfig::new(2).with_machines(0).run(&space).unwrap_err(),
            KCenterError::InvalidParameter {
                name: "machines",
                ..
            }
        ));
        let sq = VecSpace::with_distance(
            vec![Point::xy(0.0, 0.0), Point::xy(1.0, 1.0)],
            SquaredEuclidean,
        );
        assert!(matches!(
            EimConfig::new(1).run(&sq).unwrap_err(),
            KCenterError::NotAMetric { .. }
        ));
    }

    #[test]
    fn round_accounting_matches_the_three_rounds_per_iteration_structure() {
        let space = cloud(3_000, 9);
        let result = sampling_config(1).run(&space).unwrap();
        assert_eq!(result.stats.num_rounds(), result.mapreduce_rounds);
        // Round labels follow the iteration structure.
        let labels: Vec<&str> = result
            .stats
            .rounds()
            .iter()
            .map(|r| r.label.as_str())
            .collect();
        assert!(labels[0].contains("round 1"));
        assert!(labels[1].contains("round 2"));
        assert!(labels[2].contains("round 3"));
        assert!(labels.last().unwrap().contains("final"));
    }

    #[test]
    fn eventually_succeeding_faults_leave_the_result_bit_identical() {
        use kcenter_mapreduce::{FaultConfig, FaultPlan, FaultPolicy};
        let space = cloud(4_000, 10);
        let clean = sampling_config(2).run(&space).unwrap();
        // Seeded chaos at the default rates with a deep attempt budget:
        // every partition eventually succeeds, so the solution must be
        // bit-identical and only the accounting may differ.
        let faults =
            FaultConfig::new(FaultPlan::seeded(77)).with_policy(FaultPolicy::with_max_attempts(64));
        let faulty = sampling_config(2).with_faults(faults).run(&space).unwrap();
        assert_eq!(faulty.solution, clean.solution);
        assert_eq!(faulty.iterations, clean.iterations);
        assert_eq!(faulty.sample_size, clean.sample_size);
        assert!(faulty.degraded.is_none());
        assert!(
            !faulty.stats.fault_summary().is_quiet(),
            "the seeded plan should have injected something at these rates"
        );
    }

    #[test]
    fn degrade_mode_survives_a_dead_filter_shard_with_partial_coverage() {
        use kcenter_mapreduce::{FaultConfig, FaultKind, FaultPlan, FaultPolicy, ScheduledFault};
        let space = cloud(4_000, 11);
        // Round index 2 is the first iteration's round 3 (filter R): kill
        // machine 0 there on every attempt.
        let plan = FaultPlan::explicit(
            (0..3)
                .map(|attempt| ScheduledFault {
                    round: 2,
                    machine: 0,
                    attempt,
                    kind: FaultKind::Crash,
                })
                .collect(),
        );
        let faults = FaultConfig::new(plan)
            .with_policy(FaultPolicy::with_max_attempts(3))
            .with_degrade(true);
        let result = sampling_config(2).with_faults(faults).run(&space).unwrap();
        let degraded = result.degraded.expect("the run must be marked degraded");
        assert_eq!(degraded.total_points, 4_000);
        assert!(degraded.covered_points < 4_000);
        assert!(degraded.coverage_fraction() < 1.0);
        assert_eq!(degraded.dropped_shards.len(), 1);
        assert_eq!(degraded.dropped_shards[0].round, 2);
        assert_eq!(result.stats.fault_summary().shards_dropped, 1);
        assert!(result.solution.radius.is_finite());
    }

    #[test]
    fn sampling_threshold_formula_matches_the_paper() {
        let config = EimConfig::new(10); // eps = 0.1
        let n = 10_000usize;
        let expected = (4.0 / 0.1) * 10.0 * (n as f64).powf(0.1) * (n as f64).ln();
        assert!((config.sampling_threshold(n) - expected).abs() < 1e-9);
    }
}
