//! Reusable weighted coresets: build once, sweep many `(k, φ)`.
//!
//! Every parallel scheme in the paper ends the same way: a small set
//! `C = S ∪ R` is handed to a sequential k-center algorithm (EIM line 10),
//! or the union of per-reducer centers is re-clustered (MRG).  In the
//! original pipeline that hand-off set is *consumed* — rerunning with a
//! different `k` or `φ` recomputes it from scratch, paying the full-data
//! MapReduce rounds every time.
//!
//! This module makes the hand-off set a first-class, reusable artifact: a
//! [`WeightedCoreset`] owns a flat SoA copy of its representative rows plus
//! a `u64` weight per representative (the number of source points it
//! stands for), so any number of downstream instances can be solved on the
//! summary without touching the source points again.  This is the standard
//! composable-coreset bridge from one-shot runs to sweep and streaming
//! workloads (Aghamolaei & Ghodsi 2023; Czumaj et al. 2025).
//!
//! # The quality certificate
//!
//! Every coreset records its **construction radius** `r_c`: the certified
//! (`f64`-accumulated, exact over the stored rows) maximum distance from
//! any source point to its nearest representative.  By the triangle
//! inequality, any center set `C` chosen *from the representatives*
//! satisfies
//!
//! ```text
//! radius_full(C)  ≤  radius_coreset(C) + r_c
//! ```
//!
//! because each source point reaches its representative within `r_c` and
//! the representative reaches its chosen center within `radius_coreset(C)`.
//! [`CoresetSolution::radius_bound`] reports exactly that sum, and
//! [`CoresetSolution::certify`] recomputes the exact full-data radius when
//! the source space is still at hand.  Conversely the representatives are
//! genuine source points, so `radius_coreset(C) ≤ radius_full(C)` — the
//! bound is tight to within `r_c`.
//!
//! # Builders
//!
//! * **Gonzalez-seeded** ([`GonzalezCoresetConfig`]): a farthest-point
//!   traversal to `t` representatives.  Gonzalez's own invariant makes the
//!   construction radius the classic `r_t` (the `(t+1)`-th farthest-point
//!   distance), giving the usual `r_t`-additive certificate; `r_t ≤ 2·OPT_t`
//!   shrinks as `t` grows.  The build runs as MapReduce rounds on a
//!   [`Cluster`] — per-reducer local coresets merged in a second
//!   round (the composable construction), then one weight/certification
//!   round — so construction cost shows up in [`JobStats`] next to the
//!   solve rounds it amortises.  With one machine the build degenerates to
//!   plain sequential Gonzalez.
//! * **EIM-sampled** ([`EimConfig::build_coreset`]): runs Algorithm 2's
//!   iterative-sampling MapReduce loop exactly once and *keeps* `C = S ∪ R`
//!   (weighted and certified) instead of consuming it.  Built at `k`, the
//!   sample's probabilistic guarantee covers every sweep cell with
//!   `k' ≤ k`, since the sampling probabilities and the loop threshold are
//!   monotone in `k`.
//!
//! Solving on the coreset goes through the weight-aware sequential entry
//! points ([`SequentialSolver::select_centers_weighted`]): positive
//! multiplicities leave the max-radius objective untouched, zero-weight
//! summary rows (possible after merges) drop out of both candidacy and
//! coverage, and the weighted covering radius is certified with the same
//! `wide_cmp_*` (`f64`-accumulating) discipline as every other reported
//! number in this workspace.
//!
//! # Streaming composition and persistence
//!
//! Two submodules turn the one-shot summary into a streaming artifact:
//!
//! * [`merge`] — [`WeightedCoreset::merge`] composes batch summaries with a
//!   `max`-composed certificate, [`WeightedCoreset::recompress`] shrinks an
//!   accumulated summary back under a budget with an *additively* composed
//!   certificate, and [`WeightedCoreset::absorb_reingested`] heals the
//!   coverage of a degraded build by folding in a summary of the lost
//!   points (re-replication from the source of record);
//! * [`persist`] — a versioned, checksummed binary format
//!   ([`WeightedCoreset::to_bytes`] / [`WeightedCoreset::from_bytes`]) so
//!   summaries cross process boundaries; corrupt, truncated or
//!   wrong-version inputs come back as named [`PersistError`]s, never
//!   panics.

pub mod merge;
pub mod persist;

pub use persist::PersistError;

use crate::eim::{sampling_phase, EimConfig};
use crate::error::KCenterError;
use crate::evaluate::{covering_radius, covering_radius_subset, weighted_covering_radius};
use crate::gonzalez::{self, FirstCenter};
use crate::solution::KCenterSolution;
use crate::solver::SequentialSolver;
use kcenter_mapreduce::{
    partition, Cluster, ClusterConfig, DroppedShard, Executor, FaultConfig, JobStats,
    MapReduceError,
};
use kcenter_metric::distance::Distance;
use kcenter_metric::grid::{self, RelaxGridCache, SpatialGrid};
use kcenter_metric::{Euclidean, FlatPoints, MetricSpace, PointId, Scalar, VecSpace};
use serde::{Deserialize, Serialize};

/// Which construction produced a coreset (recorded as provenance metadata).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoresetBuilder {
    /// Farthest-point traversal to `t` representatives (possibly built as
    /// per-reducer local coresets merged in a second round).
    Gonzalez,
    /// EIM's iterative-sampling loop, run once; the representatives are the
    /// paper's hand-off set `C = S ∪ R`.
    Eim,
    /// The composition of two or more coresets ([`WeightedCoreset::merge`]),
    /// possibly re-compressed against a budget
    /// ([`WeightedCoreset::recompress`]).  The certificate is the composed
    /// triangle-inequality bound, not a single builder's.
    Merged,
}

impl CoresetBuilder {
    /// Name used in reports and sweep output.
    pub fn name(&self) -> &'static str {
        match self {
            CoresetBuilder::Gonzalez => "gonzalez",
            CoresetBuilder::Eim => "eim",
            CoresetBuilder::Merged => "merged",
        }
    }
}

/// Coverage provenance of a coreset: which part of the source the
/// certificate actually speaks for.
///
/// A fault-free build covers every source point
/// ([`CoresetCoverage::is_partial`] is `false`).  A degrade-mode build that
/// dropped shards records here exactly which source points fell out of the
/// claim and which shards took them — so the triangle-inequality
/// certificate is always explicitly a statement about
/// `covered_source_len` surviving points, never silently about the full
/// input.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoresetCoverage {
    /// Number of source points the construction radius certifies.
    pub covered_source_len: usize,
    /// Shards dropped by degrade mode during the build (empty when the
    /// build was fault-free or every retry succeeded).
    pub dropped_shards: Vec<DroppedShard>,
    /// Source ids that left the coverage claim with the dropped shards,
    /// ascending.
    pub lost_source_ids: Vec<PointId>,
}

impl CoresetCoverage {
    /// Full coverage of `source_len` points (the fault-free case).
    pub fn full(source_len: usize) -> Self {
        Self {
            covered_source_len: source_len,
            dropped_shards: Vec::new(),
            lost_source_ids: Vec::new(),
        }
    }

    /// Whether any source point is missing from the certificate.
    pub fn is_partial(&self) -> bool {
        !self.lost_source_ids.is_empty() || !self.dropped_shards.is_empty()
    }
}

/// A weighted summary of a metric space: flat SoA rows of the
/// representatives, a `u64` weight per representative (how many source
/// points it covers), and provenance/quality metadata — most importantly
/// the certified construction radius behind the additive quality
/// certificate (see the module docs).
///
/// The representative rows are an owned [`FlatPoints`] at the source
/// space's storage precision, wrapped in a [`VecSpace`] with the source's
/// distance function: the coreset *is* a metric space of its own, so every
/// solver in this crate runs on it unchanged, and the source space can be
/// dropped (streaming ingestion) once the coreset is built.
#[derive(Clone)]
pub struct WeightedCoreset<D: Distance = Euclidean, S: Scalar = f64> {
    space: VecSpace<D, S>,
    source_ids: Vec<PointId>,
    weights: Vec<u64>,
    source_len: usize,
    construction_radius: f64,
    builder: CoresetBuilder,
    seed: Option<u64>,
    stats: JobStats,
    coverage: CoresetCoverage,
    /// Build-once bucketing of the representative rows for the grid-mode
    /// Gonzalez selections of a `(k, φ)` sweep — the rows never change
    /// after construction, so every solve shares one [`SpatialGrid`]
    /// (clones share it too; results are bit-identical either way).
    relax_grid: RelaxGridCache,
}

impl<D: Distance, S: Scalar> WeightedCoreset<D, S> {
    #[allow(clippy::too_many_arguments)] // crate-private constructor: every field is load-bearing
    fn from_parts(
        space: VecSpace<D, S>,
        source_ids: Vec<PointId>,
        weights: Vec<u64>,
        source_len: usize,
        construction_radius: f64,
        builder: CoresetBuilder,
        seed: Option<u64>,
        stats: JobStats,
        coverage: CoresetCoverage,
    ) -> Self {
        assert_eq!(space.len(), source_ids.len(), "rows/ids length mismatch");
        assert_eq!(space.len(), weights.len(), "rows/weights length mismatch");
        debug_assert_eq!(
            weights.iter().sum::<u64>(),
            coverage.covered_source_len as u64,
            "weights must partition the covered source points"
        );
        debug_assert_eq!(
            coverage.covered_source_len + coverage.lost_source_ids.len(),
            source_len,
            "covered + lost must account for every source point"
        );
        Self {
            space,
            source_ids,
            weights,
            source_len,
            construction_radius,
            builder,
            seed,
            stats,
            coverage,
            relax_grid: RelaxGridCache::new(),
        }
    }

    /// Number of representatives.
    pub fn len(&self) -> usize {
        self.source_ids.len()
    }

    /// Whether the coreset holds no representatives.
    pub fn is_empty(&self) -> bool {
        self.source_ids.is_empty()
    }

    /// The representatives as a metric space of their own (local ids
    /// `0..len`), at the source storage precision and distance.
    pub fn space(&self) -> &VecSpace<D, S> {
        &self.space
    }

    /// For each representative, its id in the source space.
    pub fn source_ids(&self) -> &[PointId] {
        &self.source_ids
    }

    /// For each representative, the number of source points it covers.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Number of points in the source space the coreset summarises.
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// Total covered weight; equals [`WeightedCoreset::source_len`] for a
    /// fault-free build (the weights partition the source) and
    /// [`CoresetCoverage::covered_source_len`] for a degraded one.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// The certified construction radius `r_c`: the exact
    /// (`f64`-accumulated) maximum distance from any **covered** source
    /// point to its nearest representative.  This is the additive slack of
    /// the quality certificate (module docs).  For a partial coreset
    /// ([`WeightedCoreset::is_partial`]) the certificate speaks only for
    /// the covered subset — never for the points lost with dropped shards.
    pub fn construction_radius(&self) -> f64 {
        self.construction_radius
    }

    /// Coverage provenance: which source points the certificate speaks for
    /// and which shards were dropped by degrade mode.
    pub fn coverage(&self) -> &CoresetCoverage {
        &self.coverage
    }

    /// Fraction of the source the certificate covers (`1.0` for a
    /// fault-free build; `0.0` for an empty source).
    pub fn coverage_fraction(&self) -> f64 {
        if self.source_len == 0 {
            0.0
        } else {
            self.coverage.covered_source_len as f64 / self.source_len as f64
        }
    }

    /// Whether degrade mode dropped shards during the build, making the
    /// certificate a statement about a strict subset of the source.
    pub fn is_partial(&self) -> bool {
        self.coverage.is_partial()
    }

    /// The source ids the certificate covers, ascending — the full
    /// `0..source_len` range minus [`CoresetCoverage::lost_source_ids`].
    pub fn covered_source_ids(&self) -> Vec<PointId> {
        if !self.is_partial() {
            return (0..self.source_len).collect();
        }
        let mut lost = vec![false; self.source_len];
        for &id in &self.coverage.lost_source_ids {
            lost[id] = true;
        }
        (0..self.source_len).filter(|&id| !lost[id]).collect()
    }

    /// Recomputes the **exact** certified covering radius of `solution`'s
    /// centers over the covered part of the source space.  For a fault-free
    /// coreset this is the full-data radius ([`CoresetSolution::certify`]);
    /// for a partial one it scans only the surviving points, which is the
    /// honest counterpart of the partial [`CoresetSolution::radius_bound`].
    pub fn certify_covered<Sp: MetricSpace + ?Sized>(
        &self,
        source: &Sp,
        solution: &CoresetSolution,
    ) -> f64 {
        if !self.is_partial() {
            return covering_radius(source, &solution.centers);
        }
        covering_radius_subset(source, &self.covered_source_ids(), &solution.centers)
    }

    /// Which builder produced this coreset.
    pub fn builder(&self) -> CoresetBuilder {
        self.builder
    }

    /// The sampling seed, for builders that use randomness (EIM).
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// Storage-precision name of the representative rows.
    pub fn precision_name(&self) -> &'static str {
        S::NAME
    }

    /// MapReduce accounting of the construction (simulated time, per-round
    /// items) — the build-once cost a sweep amortises.
    pub fn stats(&self) -> &JobStats {
        &self.stats
    }

    /// Solves a `k`-center instance **on the coreset** with a weight-aware
    /// sequential solver and returns the solution together with its quality
    /// certificate.  Cost is `O(k · t)` for Gonzalez on `t` representatives
    /// — independent of the source size, which is what makes a `(k, φ)`
    /// sweep over one coreset cheap.  Grid-mode selections share one
    /// build-once bucketing of the representative rows across all solves
    /// on this coreset (the rows are immutable); outputs are bit-identical
    /// to a fresh build per call.
    pub fn solve(
        &self,
        k: usize,
        solver: SequentialSolver,
        first: FirstCenter,
    ) -> Result<CoresetSolution, KCenterError> {
        if self.is_empty() {
            return Err(KCenterError::EmptyInput);
        }
        if k == 0 {
            return Err(KCenterError::ZeroK);
        }
        let local_ids: Vec<PointId> = (0..self.len()).collect();
        let local_centers = solver.select_centers_weighted_cached(
            &self.space,
            &local_ids,
            &self.weights,
            k,
            first,
            Some(&self.relax_grid),
        );
        Ok(self.package_solution(k, local_centers))
    }

    /// Like [`WeightedCoreset::solve`], but charges the selection to one
    /// single-reducer round on `cluster` (labelled `label`) so a sweep's
    /// per-cell solve cost lands in the same [`JobStats`] as the build —
    /// making "built once, solved many" visible in the round accounting.
    pub fn solve_on_cluster(
        &self,
        k: usize,
        solver: SequentialSolver,
        first: FirstCenter,
        cluster: &mut Cluster,
        label: &str,
    ) -> Result<CoresetSolution, KCenterError> {
        if self.is_empty() {
            return Err(KCenterError::EmptyInput);
        }
        if k == 0 {
            return Err(KCenterError::ZeroK);
        }
        let local_ids: Vec<PointId> = (0..self.len()).collect();
        let weights = &self.weights;
        let space = &self.space;
        let relax_grid = &self.relax_grid;
        let local_centers = cluster.run_single(
            label,
            local_ids,
            |ids| {
                solver.select_centers_weighted_cached(
                    space,
                    ids,
                    weights,
                    k,
                    first,
                    Some(relax_grid),
                )
            },
            Vec::len,
        )?;
        Ok(self.package_solution(k, local_centers))
    }

    fn package_solution(&self, k: usize, local_centers: Vec<PointId>) -> CoresetSolution {
        let coreset_radius = weighted_covering_radius(&self.space, &self.weights, &local_centers);
        let centers: Vec<PointId> = local_centers.iter().map(|&c| self.source_ids[c]).collect();
        CoresetSolution {
            k,
            local_centers,
            centers,
            coreset_radius,
            radius_bound: coreset_radius + self.construction_radius,
            covered_fraction: self.coverage_fraction(),
        }
    }
}

impl<D: Distance, S: Scalar> std::fmt::Debug for WeightedCoreset<D, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WeightedCoreset(builder={}, t={}, source_len={}, r_c={:.6}, precision={})",
            self.builder.name(),
            self.len(),
            self.source_len,
            self.construction_radius,
            S::NAME
        )
    }
}

/// A k-center solution selected on a [`WeightedCoreset`], carrying its
/// quality certificate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoresetSolution {
    /// The number of centers that was requested.
    pub k: usize,
    /// Centers as local representative indices (`0..t`).
    pub local_centers: Vec<PointId>,
    /// The same centers as **source-space** point ids — directly comparable
    /// to any solution computed on the raw space.
    pub centers: Vec<PointId>,
    /// The weighted covering radius over the coreset (certified in `f64`).
    pub coreset_radius: f64,
    /// The triangle-inequality certificate:
    /// `coreset_radius + construction_radius` is an upper bound on the
    /// covering radius of [`CoresetSolution::centers`] over the **covered**
    /// source points — no source scan needed.  When
    /// [`CoresetSolution::covered_fraction`] is `1.0` that is the full
    /// source space; for a partial coreset the bound explicitly excludes
    /// the points lost with dropped shards.
    pub radius_bound: f64,
    /// Fraction of the source the certificate covers — `1.0` unless the
    /// coreset was built in degrade mode and dropped shards (see
    /// [`WeightedCoreset::coverage`]).
    pub covered_fraction: f64,
}

impl CoresetSolution {
    /// Whether the certificate covers only a strict subset of the source
    /// (the coreset was degraded by dropped shards).
    pub fn is_partial(&self) -> bool {
        self.covered_fraction < 1.0
    }

    /// Recomputes the **exact** certified full-data covering radius of the
    /// selected centers over the source space (an `O(n · k)` wide scan).
    /// At most [`CoresetSolution::radius_bound`] when the coreset covered
    /// the full source; for a partial coreset the bound does not speak for
    /// the lost points, so use [`WeightedCoreset::certify_covered`]
    /// instead.
    pub fn certify<Sp: MetricSpace + ?Sized>(&self, source: &Sp) -> f64 {
        covering_radius(source, &self.centers)
    }

    /// Packages the solution as a [`KCenterSolution`] whose radius is the
    /// certified bound (use [`CoresetSolution::certify`] first for the
    /// exact full-data radius when the source is available).
    pub fn into_solution(self) -> KCenterSolution {
        KCenterSolution::new(self.k, self.centers, self.radius_bound)
    }
}

/// Configuration of the Gonzalez-seeded coreset builder.
///
/// With `machines == 1` the build is the plain sequential farthest-point
/// traversal; with more machines it is the composable two-round MapReduce
/// construction (local coresets, then a merge), plus one weight /
/// certification round in both cases.  All rounds are labelled with the
/// `"coreset"` prefix so [`JobStats::num_rounds_labelled`] can prove the
/// build happened exactly once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GonzalezCoresetConfig {
    /// Number of representatives `t` to keep (the certificate's `r_t`
    /// shrinks as `t` grows).
    pub t: usize,
    /// Number of simulated machines; 1 means a sequential build.
    pub machines: usize,
    /// First-center policy of the farthest-point traversals.
    pub first_center: FirstCenter,
    /// Whether the single-machine traversal may use the rayon-parallel
    /// inner scan (multi-machine builds already parallelise across
    /// reducers).
    pub parallel_scan: bool,
    /// Fault injection applied to the build's MapReduce rounds (`None`
    /// runs fault-free).  With degrade mode enabled, shards that exhaust
    /// their attempts are dropped and the coreset comes back **partial**
    /// (see [`WeightedCoreset::coverage`]).
    pub faults: Option<FaultConfig>,
    /// How the cluster executes each round's machines: the paper's
    /// sequential simulation (the default) or real scoped threads.
    /// Outputs are bit-identical either way.
    pub executor: Executor,
}

impl GonzalezCoresetConfig {
    /// A sequential build of `t` representatives.
    pub fn new(t: usize) -> Self {
        Self {
            t,
            machines: 1,
            first_center: FirstCenter::default(),
            parallel_scan: false,
            faults: None,
            executor: Executor::Simulated,
        }
    }

    /// Sets the number of simulated machines (>1 selects the MapReduce
    /// merge construction).
    pub fn with_machines(mut self, machines: usize) -> Self {
        self.machines = machines;
        self
    }

    /// Sets the first-center policy.
    pub fn with_first_center(mut self, first: FirstCenter) -> Self {
        self.first_center = first;
        self
    }

    /// Enables the rayon-parallel inner scan for single-machine builds.
    pub fn with_parallel_scan(mut self, parallel: bool) -> Self {
        self.parallel_scan = parallel;
        self
    }

    /// Installs fault injection on the build's simulated cluster.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Selects the cluster executor (simulated by default).
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Builds the weighted coreset over `space`.
    ///
    /// Requires a coordinate-backed [`VecSpace`] because the coreset copies
    /// its representatives' rows into an owned flat store (the property
    /// that lets the source be dropped afterwards).
    pub fn build<D: Distance + Clone, S: Scalar>(
        &self,
        space: &VecSpace<D, S>,
    ) -> Result<WeightedCoreset<D, S>, KCenterError> {
        let n = MetricSpace::len(space);
        if n == 0 {
            return Err(KCenterError::EmptyInput);
        }
        if self.t == 0 {
            return Err(KCenterError::InvalidParameter {
                name: "t",
                message: "a coreset needs at least one representative".into(),
            });
        }
        if self.machines == 0 {
            return Err(KCenterError::InvalidParameter {
                name: "machines",
                message: "at least one machine is required".into(),
            });
        }
        if !space.is_metric() {
            return Err(KCenterError::NotAMetric {
                distance: space.distance_name(),
            });
        }

        let mut cluster = Cluster::unchecked(ClusterConfig::new(self.machines, n.max(1)))
            .with_executor(self.executor);
        if let Some(faults) = &self.faults {
            cluster.set_fault_injection(Some(faults.clone()));
        }
        let degrade = cluster.degrade_enabled();
        let mut dropped: Vec<DroppedShard> = Vec::new();
        let mut lost: Vec<PointId> = Vec::new();
        let scan = self.parallel_scan && self.machines == 1;
        let t = self.t;
        let first = self.first_center;

        // Round 1: every reducer builds a local coreset of its partition by
        // farthest-point traversal (the composable-coreset map side).  This
        // round holds the source data: a shard dropped here takes its
        // chunk's points out of the coverage claim.
        let ids: Vec<PointId> = (0..n).collect();
        let parts = partition::chunks(&ids, self.machines);
        let label = format!(
            "coreset round 1: local gonzalez (t={t} on {} machines)",
            parts.len()
        );
        let round1_reduce =
            |_: usize, chunk: &[PointId]| gonzalez::select_centers(space, chunk, t, first, scan);
        let locals: Vec<Vec<PointId>> = if degrade {
            let out = cluster.run_round_degradable(&label, &parts, round1_reduce, Vec::len)?;
            for shard in &out.dropped {
                lost.extend(parts[shard.machine].iter().copied());
            }
            dropped.extend(out.dropped);
            out.outputs.into_iter().flatten().collect()
        } else {
            cluster.run_round(&label, &parts, round1_reduce, Vec::len)?
        };

        // Round 2: one reducer merges the local coresets by re-running the
        // traversal on their union (identity when only one machine ran).
        // A single-reducer round never degrades: losing it loses the whole
        // build, so exhaustion fails the job even in degrade mode.
        let union: Vec<PointId> = locals.into_iter().flatten().collect();
        if union.is_empty() {
            // Every round-1 shard died: there is nothing to degrade to.
            let shard = dropped.last().expect("empty round output implies drops");
            return Err(KCenterError::MapReduce(MapReduceError::RoundFailed {
                round: shard.round,
                machine: shard.machine,
                attempts: shard.attempts,
                source: shard.cause,
            }));
        }
        let reps = cluster.run_single(
            "coreset round 2: merge local coresets",
            union,
            |u| gonzalez::select_centers(space, u, t, first, scan),
            Vec::len,
        )?;

        // Round 3: weigh every representative by the surviving source
        // points it covers and certify the construction radius over them.
        let survivors = surviving_ids(n, &lost);
        let (weights, construction_radius) = weight_and_certify_round(
            &mut cluster,
            space,
            &reps,
            &survivors,
            self.machines,
            "coreset round 3: weights + certification",
            degrade,
            &mut dropped,
            &mut lost,
        )?;

        lost.sort_unstable();
        let coverage = CoresetCoverage {
            covered_source_len: n - lost.len(),
            dropped_shards: dropped,
            lost_source_ids: lost,
        };
        Ok(WeightedCoreset::from_parts(
            gather_rows(space, &reps),
            reps,
            weights,
            n,
            construction_radius,
            CoresetBuilder::Gonzalez,
            None,
            cluster.into_stats(),
            coverage,
        ))
    }
}

impl EimConfig {
    /// Runs EIM's iterative-sampling MapReduce loop **once** and keeps the
    /// hand-off set `C = S ∪ R` as a reusable [`WeightedCoreset`] instead
    /// of consuming it in a final clustering round.
    ///
    /// The configuration's `k` acts as `k_max`: the sampling probabilities
    /// (`9·k·n^ε·log n / |R|`) and the loop threshold are monotone in `k`,
    /// so a coreset built at `k` retains the scheme's probabilistic
    /// guarantee for every downstream instance with `k' ≤ k`.  The build is
    /// deterministic per `(seed, precision)` like [`EimConfig::run`].
    pub fn build_coreset<D: Distance + Clone, S: Scalar>(
        &self,
        space: &VecSpace<D, S>,
    ) -> Result<WeightedCoreset<D, S>, KCenterError> {
        let n = MetricSpace::len(space);
        let (phase, mut cluster) = sampling_phase(self, space, "coreset ")?;
        let degrade = cluster.degrade_enabled();
        let mut dropped = phase.dropped;
        let mut lost = phase.lost;

        // The hand-off set C = S ∪ R (disjoint by construction).
        let mut reps: Vec<PointId> = Vec::with_capacity(phase.sample.len() + phase.remaining.len());
        reps.extend(phase.sample.iter().copied());
        reps.extend(phase.remaining.iter().copied());
        if reps.is_empty() {
            // Degrade mode lost every shard before anything was sampled:
            // there is no hand-off set to weigh.
            let shard = dropped.last().expect("an empty hand-off implies drops");
            return Err(KCenterError::MapReduce(MapReduceError::RoundFailed {
                round: shard.round,
                machine: shard.machine,
                attempts: shard.attempts,
                source: shard.cause,
            }));
        }

        let survivors = surviving_ids(n, &lost);
        let (weights, construction_radius) = weight_and_certify_round(
            &mut cluster,
            space,
            &reps,
            &survivors,
            self.machines,
            "coreset final round: weights + certification",
            degrade,
            &mut dropped,
            &mut lost,
        )?;

        lost.sort_unstable();
        let coverage = CoresetCoverage {
            covered_source_len: n - lost.len(),
            dropped_shards: dropped,
            lost_source_ids: lost,
        };
        Ok(WeightedCoreset::from_parts(
            gather_rows(space, &reps),
            reps,
            weights,
            n,
            construction_radius,
            CoresetBuilder::Eim,
            Some(self.seed),
            cluster.into_stats(),
            coverage,
        ))
    }
}

/// Copies the rows of `ids` out of `space` into an owned flat store and
/// wraps them in a [`VecSpace`] with the same distance — the coreset's own
/// standalone metric space.
fn gather_rows<D: Distance + Clone, S: Scalar>(
    space: &VecSpace<D, S>,
    ids: &[PointId],
) -> VecSpace<D, S> {
    let dim = space.dim().expect("gathering from a non-empty space");
    let mut flat = FlatPoints::<S>::with_capacity(dim, ids.len());
    for &id in ids {
        flat.push_row(space.row(id));
    }
    VecSpace::from_flat_with_distance(flat, space.metric().clone())
}

/// Name of the [`JobStats`] counter the weights/certification round records:
/// how many `(point, representative)` certification pairs its early-exit
/// pruning skipped, summed over reducers.  Read it with
/// `coreset.stats().counter(PRUNED_PAIRS_COUNTER)`.
pub const PRUNED_PAIRS_COUNTER: &str = "weights round pruned pairs";

/// The ascending source ids not present in `lost` (which need not be
/// sorted) — the points a degraded build still speaks for.
fn surviving_ids(n: usize, lost: &[PointId]) -> Vec<PointId> {
    if lost.is_empty() {
        return (0..n).collect();
    }
    let mut dead = vec![false; n];
    for &id in lost {
        dead[id] = true;
    }
    (0..n).filter(|&id| !dead[id]).collect()
}

/// One MapReduce round that assigns every surviving source point (`ids`)
/// to its nearest representative (comparison space, ties to the smaller
/// representative position — the [`crate::evaluate::assign`] convention)
/// and certifies the construction radius with the `wide_cmp_*`
/// (`f64`-accumulating, max-pruned) discipline.  Returns
/// per-representative weights and the certified radius.
///
/// With `degrade` set the round itself may drop shards: a dropped chunk's
/// points leave the coverage claim (appended to `lost`, provenance to
/// `dropped`) — including any representative whose self-weight lived in
/// that chunk, which then simply carries the weight of its surviving
/// coverage.  Losing *every* chunk fails the round even in degrade mode:
/// a coreset with no certified weight is not a degraded result, it is no
/// result.
///
/// The certification side is **pruned**: the dense version of this round
/// scanned all `|reps|` representatives twice per point (once for the
/// argmin, once for the wide max-of-mins).  Instead, each reducer seeds the
/// wide scan with its previous-best radius (the running `wide_max`) and
/// first checks only the point's *assigned* representative — if that single
/// wide distance is already within `wide_max`, the point's true wide
/// minimum is too, so it cannot raise the maximum and the whole second scan
/// is skipped.  Only candidate new maxima (a handful of points per chunk)
/// pay the full `wide_cmp_distance_to_set_bounded` scan, whose early exit
/// keeps the result exact above `wide_max` — so the returned radius is
/// bit-identical to the dense scan's while the certification cost drops
/// from `O(n · |reps|)` to `O(n)` plus the few candidates, which is what
/// makes EIM-built coresets (where `|reps|` is tens of thousands at large
/// `k`) cheap to weigh.  The number of pairs skipped this way lands in the
/// round's [`JobStats`] under [`PRUNED_PAIRS_COUNTER`].
#[allow(clippy::too_many_arguments)] // crate-private round: shared verbatim by both builders
fn weight_and_certify_round<Sp: MetricSpace + ?Sized>(
    cluster: &mut Cluster,
    space: &Sp,
    reps: &[PointId],
    ids: &[PointId],
    machines: usize,
    label: &str,
    degrade: bool,
    dropped: &mut Vec<DroppedShard>,
    lost: &mut Vec<PointId>,
) -> Result<(Vec<u64>, f64), KCenterError> {
    let parts = partition::chunks(ids, machines);
    // Grid arm for the nearest-rep argmin (and the wide fallback scan):
    // bucket the representatives once, then each point probes Chebyshev
    // rings of cells around itself instead of scanning all |reps|.  The
    // argmin is bit-identical to the dense loop (same per-pair values,
    // ties to the smaller rep position), the wide scans keep the same
    // exact-above-`wide_max` contract, and the assignment pair for the
    // weights histogram is never pruned — so weights, radius, and even the
    // pruned-pairs counter are arm-independent.
    let dim = reps
        .first()
        .and_then(|&r| space.coord_row(r))
        .map_or(0, <[Sp::Cmp]>::len);
    let shape = grid::ScanShape {
        points: ids.len(),
        candidates: reps.len(),
        dim,
    };
    let rep_grid = if grid::select_mode(shape) == grid::AssignMode::Grid {
        SpatialGrid::build(space, reps, grid::NEAREST_OCCUPANCY)
    } else {
        None
    };
    let arm = if rep_grid.is_some() {
        grid::AssignMode::Grid
    } else {
        grid::AssignMode::Dense
    };
    grid::note_scan(arm);
    // Round accounting shows which arm actually ran.
    let label = format!("{label} [{arm}]");
    let label = label.as_str();
    let reduce = |_: usize, chunk: &[PointId]| {
        let mut counts = vec![0u64; reps.len()];
        let mut wide_max = f64::NEG_INFINITY;
        let mut pruned: u64 = 0;
        for &x in chunk {
            let (best, _) = match &rep_grid {
                Some(g) => g.nearest_member(space, reps, x),
                None => {
                    let mut best = 0usize;
                    let mut best_d = <Sp::Cmp as Scalar>::INFINITY;
                    for (ri, &r) in reps.iter().enumerate() {
                        let d = space.cmp_distance(x, r);
                        if d < best_d {
                            best_d = d;
                            best = ri;
                        }
                    }
                    (best, best_d)
                }
            };
            counts[best] += 1;
            // wide_min(x) <= wide(x, assigned rep): within the running
            // max the point cannot raise it — skip the wide scan.
            let w_assigned = space.wide_cmp_distance(x, reps[best]);
            if w_assigned <= wide_max {
                pruned += reps.len() as u64 - 1;
                continue;
            }
            let w = match &rep_grid {
                Some(g) => g.wide_nearest_bounded(space, reps, x, wide_max),
                None => space.wide_cmp_distance_to_set_bounded(x, reps, wide_max),
            };
            if w > wide_max {
                wide_max = w;
            }
        }
        (counts, wide_max, pruned)
    };
    let count_out = |(counts, _, _): &(Vec<u64>, f64, u64)| counts.len();
    let outputs: Vec<(Vec<u64>, f64, u64)> = if degrade {
        let out = cluster.run_round_degradable(label, &parts, reduce, count_out)?;
        for shard in &out.dropped {
            lost.extend(parts[shard.machine].iter().copied());
        }
        let survived: Vec<(Vec<u64>, f64, u64)> = out.outputs.into_iter().flatten().collect();
        if survived.is_empty() {
            let shard = out
                .dropped
                .last()
                .expect("empty round output implies drops");
            return Err(KCenterError::MapReduce(MapReduceError::RoundFailed {
                round: shard.round,
                machine: shard.machine,
                attempts: shard.attempts,
                source: shard.cause,
            }));
        }
        dropped.extend(out.dropped);
        survived
    } else {
        cluster.run_round(label, &parts, reduce, count_out)?
    };

    let mut weights = vec![0u64; reps.len()];
    let mut wide_max = f64::NEG_INFINITY;
    let mut pruned_total = 0u64;
    for (counts, local_max, pruned) in outputs {
        for (w, c) in weights.iter_mut().zip(counts) {
            *w += c;
        }
        wide_max = wide_max.max(local_max);
        pruned_total += pruned;
    }
    cluster.record_counter(PRUNED_PAIRS_COUNTER, pruned_total);
    Ok((weights, space.wide_cmp_to_distance(wide_max.max(0.0))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gonzalez::GonzalezConfig;
    use kcenter_metric::Point;

    /// Deterministic pseudo-random cloud of `n` points in a 100×100 square.
    fn cloud(n: usize, seed: u64) -> VecSpace {
        VecSpace::new(
            (0..n)
                .map(|i| {
                    let v = seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64)
                        .wrapping_mul(0xD129_0DDB_53C4_3E49);
                    let x = (v % 10_000) as f64 / 100.0;
                    let y = ((v >> 20) % 10_000) as f64 / 100.0;
                    Point::xy(x, y)
                })
                .collect(),
        )
    }

    #[test]
    fn gonzalez_coreset_weights_partition_the_source() {
        let space = cloud(2_000, 1);
        let coreset = GonzalezCoresetConfig::new(64).build(&space).unwrap();
        assert_eq!(coreset.len(), 64);
        assert_eq!(coreset.total_weight(), 2_000);
        assert_eq!(coreset.source_len(), 2_000);
        assert!(coreset.weights().iter().all(|&w| w >= 1));
        assert!(coreset.construction_radius() > 0.0);
        assert_eq!(coreset.builder(), CoresetBuilder::Gonzalez);
        assert_eq!(coreset.precision_name(), "f64");
        // Build accounting: exactly the three construction rounds.
        assert_eq!(coreset.stats().num_rounds_labelled("coreset"), 3);
    }

    #[test]
    fn sequential_build_equals_plain_gonzalez_prefix() {
        let space = cloud(1_500, 2);
        let coreset = GonzalezCoresetConfig::new(32).build(&space).unwrap();
        // A single-machine build's representatives are exactly the first 32
        // picks of the plain farthest-point traversal.
        let ids: Vec<PointId> = (0..1_500).collect();
        let plain = gonzalez::select_centers(&space, &ids, 32, FirstCenter::default(), false);
        assert_eq!(coreset.source_ids(), &plain[..]);
    }

    #[test]
    fn construction_radius_matches_exact_covering_radius_of_reps() {
        let space = cloud(1_200, 3);
        for machines in [1usize, 6] {
            let coreset = GonzalezCoresetConfig::new(40)
                .with_machines(machines)
                .build(&space)
                .unwrap();
            let exact = covering_radius(&space, coreset.source_ids());
            assert!(
                (coreset.construction_radius() - exact).abs() <= 1e-12,
                "machines={machines}: certificate {} vs exact {exact}",
                coreset.construction_radius()
            );
        }
    }

    #[test]
    fn solve_certificate_bounds_the_full_data_radius() {
        let space = cloud(3_000, 4);
        let coreset = GonzalezCoresetConfig::new(100)
            .with_machines(5)
            .build(&space)
            .unwrap();
        for k in [2usize, 5, 10] {
            for solver in [SequentialSolver::Gonzalez, SequentialSolver::HochbaumShmoys] {
                let sol = coreset.solve(k, solver, FirstCenter::default()).unwrap();
                let full = sol.certify(&space);
                assert!(
                    full <= sol.radius_bound + 1e-9,
                    "k={k} {}: certified {} exceeds bound {}",
                    solver.name(),
                    full,
                    sol.radius_bound
                );
                // Representatives are real points, so the coreset radius
                // never exceeds the full radius.
                assert!(sol.coreset_radius <= full + 1e-9);
                assert_eq!(sol.centers.len(), sol.local_centers.len());
                for (&local, &global) in sol.local_centers.iter().zip(&sol.centers) {
                    assert_eq!(coreset.source_ids()[local], global);
                }
            }
        }
    }

    #[test]
    fn sweep_solves_share_one_relax_grid_and_stay_bit_identical() {
        // Large enough that the auto crossover picks the grid arm for the
        // per-k selections: ≥ 4096 representatives, k ≥ 16, dim 2.
        let space = cloud(4_800, 11);
        let coreset = GonzalezCoresetConfig::new(4_200).build(&space).unwrap();
        assert_eq!(coreset.len(), 4_200);
        assert!(!coreset.relax_grid.is_built());
        let local_ids: Vec<PointId> = (0..coreset.len()).collect();
        for k in [16usize, 24, 40] {
            let sol = coreset
                .solve(k, SequentialSolver::Gonzalez, FirstCenter::default())
                .unwrap();
            // Uncached reference: a fresh selection (fresh grid build)
            // for every k.
            let fresh = SequentialSolver::Gonzalez.select_centers_weighted(
                coreset.space(),
                &local_ids,
                coreset.weights(),
                k,
                FirstCenter::default(),
            );
            assert_eq!(sol.local_centers, fresh, "k={k}");
            // The first grid-mode solve latches the bucketing; every
            // later solve reuses it.
            assert!(coreset.relax_grid.is_built(), "k={k}");
        }
        // Clones share the latched grid rather than rebuilding.
        assert!(coreset.clone().relax_grid.is_built());
    }

    #[test]
    fn mapreduce_build_stays_close_to_the_sequential_build() {
        let space = cloud(4_000, 5);
        let seq = GonzalezCoresetConfig::new(80).build(&space).unwrap();
        let par = GonzalezCoresetConfig::new(80)
            .with_machines(8)
            .build(&space)
            .unwrap();
        // The merged construction loses at most one local radius: both
        // certificates are the same order of magnitude.
        assert!(par.construction_radius() <= 3.0 * seq.construction_radius() + 1e-9);
        assert_eq!(par.total_weight(), 4_000);
    }

    #[test]
    fn eim_coreset_matches_the_runs_sample_and_is_deterministic() {
        let space = cloud(4_000, 6);
        let config = EimConfig::new(2)
            .with_epsilon(0.13)
            .with_machines(8)
            .with_seed(9);
        let coreset = config.build_coreset(&space).unwrap();
        let rerun = config.build_coreset(&space).unwrap();
        assert_eq!(coreset.source_ids(), rerun.source_ids());
        assert_eq!(coreset.weights(), rerun.weights());
        assert_eq!(coreset.construction_radius(), rerun.construction_radius());
        assert_eq!(coreset.builder(), CoresetBuilder::Eim);
        assert_eq!(coreset.seed(), Some(9));
        // The representatives are exactly the sample C = S ∪ R the full run
        // hands to its final round.
        let run = config.run(&space).unwrap();
        assert_eq!(coreset.len(), run.sample_size);
        assert_eq!(coreset.total_weight(), 4_000);
        // All build rounds carry the "coreset" label prefix.
        assert_eq!(
            coreset.stats().num_rounds_labelled("coreset"),
            coreset.stats().num_rounds()
        );
    }

    #[test]
    fn eim_coreset_solution_is_sane_versus_gonzalez_baseline() {
        let space = cloud(4_000, 7);
        let config = EimConfig::new(3)
            .with_epsilon(0.13)
            .with_machines(8)
            .with_seed(1);
        let coreset = config.build_coreset(&space).unwrap();
        let sol = coreset
            .solve(3, SequentialSolver::Gonzalez, FirstCenter::default())
            .unwrap();
        let full = sol.certify(&space);
        let gon = GonzalezConfig::new(3).solve(&space).unwrap();
        // Same probabilistic 10x-of-baseline sanity bound the EIM tests use.
        assert!(
            full <= 10.0 * gon.radius + 1e-9,
            "coreset solution {full} strays from baseline {}",
            gon.radius
        );
        assert!(full <= sol.radius_bound + 1e-9);
    }

    #[test]
    fn threaded_executor_builds_bit_identical_coresets() {
        let space = cloud(3_000, 9);
        let gon_sim = GonzalezCoresetConfig::new(60)
            .with_machines(6)
            .build(&space)
            .unwrap();
        let eim_cfg = EimConfig::new(2)
            .with_epsilon(0.13)
            .with_machines(8)
            .with_seed(5);
        let eim_sim = eim_cfg.build_coreset(&space).unwrap();
        for threads in [1usize, 4] {
            let gon_thr = GonzalezCoresetConfig::new(60)
                .with_machines(6)
                .with_executor(Executor::threads(threads))
                .build(&space)
                .unwrap();
            assert_eq!(gon_thr.source_ids(), gon_sim.source_ids());
            assert_eq!(gon_thr.weights(), gon_sim.weights());
            assert_eq!(gon_thr.construction_radius(), gon_sim.construction_radius());
            let eim_thr = eim_cfg
                .clone()
                .with_executor(Executor::threads(threads))
                .build_coreset(&space)
                .unwrap();
            assert_eq!(eim_thr.source_ids(), eim_sim.source_ids());
            assert_eq!(eim_thr.weights(), eim_sim.weights());
            assert_eq!(eim_thr.construction_radius(), eim_sim.construction_radius());
        }
    }

    #[test]
    fn solve_on_cluster_charges_one_round_per_cell() {
        let space = cloud(2_000, 8);
        let coreset = GonzalezCoresetConfig::new(50)
            .with_machines(4)
            .build(&space)
            .unwrap();
        let mut cluster = Cluster::unchecked(ClusterConfig::new(4, coreset.len()));
        for (i, k) in [2usize, 4, 8].iter().enumerate() {
            let label = format!("sweep solve k={k}");
            let sol = coreset
                .solve_on_cluster(
                    *k,
                    SequentialSolver::Gonzalez,
                    FirstCenter::default(),
                    &mut cluster,
                    &label,
                )
                .unwrap();
            assert_eq!(sol.local_centers.len(), *k);
            assert_eq!(cluster.stats().num_rounds(), i + 1);
        }
        assert_eq!(cluster.stats().num_rounds_labelled("sweep solve"), 3);
        // And solving off-cluster gives the identical solution.
        let direct = coreset
            .solve(4, SequentialSolver::Gonzalez, FirstCenter::default())
            .unwrap();
        let charged = coreset
            .solve_on_cluster(
                4,
                SequentialSolver::Gonzalez,
                FirstCenter::default(),
                &mut cluster,
                "sweep solve k=4 again",
            )
            .unwrap();
        assert_eq!(direct, charged);
    }

    #[test]
    fn pruned_weights_round_matches_dense_assignment_and_records_the_counter() {
        let space = cloud(3_000, 13);
        let coreset = GonzalezCoresetConfig::new(150).build(&space).unwrap();
        // Weights are exactly the nearest-representative histogram (the
        // `assign` convention): pruning only skips certification pairs,
        // never assignment pairs.
        let assignment = crate::evaluate::assign(&space, coreset.source_ids());
        let mut hist = vec![0u64; coreset.len()];
        for a in assignment {
            hist[a] += 1;
        }
        assert_eq!(coreset.weights(), &hist[..]);
        // The certificate is still the exact dense covering radius.
        let exact = covering_radius(&space, coreset.source_ids());
        assert!((coreset.construction_radius() - exact).abs() <= 1e-12);
        // The early-exit certification skipped the bulk of the n·t wide
        // pairs, and the count is visible in the job accounting.
        let pruned = coreset.stats().counter(PRUNED_PAIRS_COUNTER);
        assert!(
            pruned >= (3_000 / 2) * 149,
            "expected most certification pairs pruned, got {pruned}"
        );
        let round = coreset
            .stats()
            .rounds_labelled("coreset round 3")
            .next()
            .expect("weights round recorded");
        assert_eq!(round.counter(PRUNED_PAIRS_COUNTER), Some(pruned));
    }

    #[test]
    fn eim_weights_round_records_the_pruned_counter_too() {
        let space = cloud(3_000, 14);
        let config = EimConfig::new(4)
            .with_epsilon(0.13)
            .with_machines(6)
            .with_seed(2);
        let coreset = config.build_coreset(&space).unwrap();
        assert!(coreset.stats().counter(PRUNED_PAIRS_COUNTER) > 0);
        // Pruning must not perturb the certificate.
        let exact = covering_radius(&space, coreset.source_ids());
        assert!((coreset.construction_radius() - exact).abs() <= 1e-12);
    }

    #[test]
    fn zero_weight_representatives_are_never_selected() {
        // Hand-build a coreset-like situation through the public solver
        // path: weight the far cluster to zero via a merged coreset whose
        // weights we tamper with is not possible publicly, so check the
        // weighted solver contract directly on the coreset space.
        let space = cloud(500, 9);
        let coreset = GonzalezCoresetConfig::new(10).build(&space).unwrap();
        let ids: Vec<PointId> = (0..coreset.len()).collect();
        let mut weights = coreset.weights().to_vec();
        weights[3] = 0;
        let centers = SequentialSolver::Gonzalez.select_centers_weighted(
            coreset.space(),
            &ids,
            &weights,
            10,
            FirstCenter::default(),
        );
        assert!(!centers.contains(&3));
    }

    #[test]
    fn builders_reject_invalid_parameters() {
        let empty: VecSpace = VecSpace::new(vec![]);
        assert_eq!(
            GonzalezCoresetConfig::new(5).build(&empty).unwrap_err(),
            KCenterError::EmptyInput
        );
        let space = cloud(100, 10);
        assert!(matches!(
            GonzalezCoresetConfig::new(0).build(&space).unwrap_err(),
            KCenterError::InvalidParameter { name: "t", .. }
        ));
        assert!(matches!(
            GonzalezCoresetConfig::new(5)
                .with_machines(0)
                .build(&space)
                .unwrap_err(),
            KCenterError::InvalidParameter {
                name: "machines",
                ..
            }
        ));
        let coreset = GonzalezCoresetConfig::new(5).build(&space).unwrap();
        assert_eq!(
            coreset
                .solve(0, SequentialSolver::Gonzalez, FirstCenter::default())
                .unwrap_err(),
            KCenterError::ZeroK
        );
    }

    #[test]
    fn t_at_least_n_reproduces_the_space_with_unit_weights() {
        let space = cloud(30, 11);
        let coreset = GonzalezCoresetConfig::new(64).build(&space).unwrap();
        assert_eq!(coreset.len(), 30);
        assert!(coreset.weights().iter().all(|&w| w == 1));
        assert_eq!(coreset.construction_radius(), 0.0);
    }

    #[test]
    fn f32_coreset_build_is_deterministic_and_certified() {
        use kcenter_metric::FlatPoints;
        let pts = cloud(1_000, 12).points();
        let space32: VecSpace<Euclidean, f32> =
            VecSpace::from_flat(FlatPoints::<f32>::from_points(&pts));
        let a = GonzalezCoresetConfig::new(40)
            .with_machines(4)
            .build(&space32)
            .unwrap();
        let b = GonzalezCoresetConfig::new(40)
            .with_machines(4)
            .build(&space32)
            .unwrap();
        assert_eq!(a.source_ids(), b.source_ids());
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.construction_radius(), b.construction_radius());
        assert_eq!(a.precision_name(), "f32");
        // The certificate is the exact f64 covering radius of the reps.
        let exact = covering_radius(&space32, a.source_ids());
        assert!((a.construction_radius() - exact).abs() <= 1e-12);
    }

    #[test]
    fn fault_free_builds_report_full_coverage() {
        let space = cloud(1_000, 15);
        let coreset = GonzalezCoresetConfig::new(32)
            .with_machines(4)
            .build(&space)
            .unwrap();
        assert!(!coreset.is_partial());
        assert_eq!(coreset.coverage_fraction(), 1.0);
        assert_eq!(coreset.coverage().covered_source_len, 1_000);
        assert!(coreset.coverage().dropped_shards.is_empty());
        let sol = coreset
            .solve(4, SequentialSolver::Gonzalez, FirstCenter::default())
            .unwrap();
        assert_eq!(sol.covered_fraction, 1.0);
        assert!(!sol.is_partial());
        // certify_covered degenerates to the full-data certify.
        assert_eq!(coreset.certify_covered(&space, &sol), sol.certify(&space));
    }

    #[test]
    fn eventually_succeeding_faults_leave_both_builds_bit_identical() {
        use kcenter_mapreduce::{FaultPlan, FaultPolicy};
        let space = cloud(2_000, 16);
        let faults = FaultConfig::new(FaultPlan::seeded(555))
            .with_policy(FaultPolicy::with_max_attempts(64));

        let clean = GonzalezCoresetConfig::new(64)
            .with_machines(8)
            .build(&space)
            .unwrap();
        let faulty = GonzalezCoresetConfig::new(64)
            .with_machines(8)
            .with_faults(faults.clone())
            .build(&space)
            .unwrap();
        assert_eq!(clean.source_ids(), faulty.source_ids());
        assert_eq!(clean.weights(), faulty.weights());
        assert_eq!(clean.construction_radius(), faulty.construction_radius());
        assert!(!faulty.is_partial());
        assert!(!faulty.stats().fault_summary().is_quiet());

        let eim = EimConfig::new(2)
            .with_epsilon(0.13)
            .with_machines(8)
            .with_seed(9);
        let clean = eim.build_coreset(&space).unwrap();
        let faulty = eim
            .clone()
            .with_faults(faults)
            .build_coreset(&space)
            .unwrap();
        assert_eq!(clean.source_ids(), faulty.source_ids());
        assert_eq!(clean.weights(), faulty.weights());
        assert_eq!(clean.construction_radius(), faulty.construction_radius());
        assert!(!faulty.is_partial());
    }

    #[test]
    fn degrade_mode_build_reports_partial_coverage_and_partial_certificates() {
        use kcenter_mapreduce::{FaultKind, FaultPlan, FaultPolicy, ScheduledFault};
        let space = cloud(2_000, 17);
        // Machine 2 of the data-holding round 1 dies on all three attempts;
        // 10 machines x 200 points each.
        let plan = FaultPlan::explicit(
            (0..3)
                .map(|attempt| ScheduledFault {
                    round: 0,
                    machine: 2,
                    attempt,
                    kind: FaultKind::Crash,
                })
                .collect(),
        );
        let faults = FaultConfig::new(plan)
            .with_policy(FaultPolicy::with_max_attempts(3))
            .with_degrade(true);

        // Without degrade mode the same plan fails the build outright.
        let err = GonzalezCoresetConfig::new(64)
            .with_machines(10)
            .with_faults(faults.clone().with_degrade(false))
            .build(&space)
            .unwrap_err();
        assert!(matches!(
            err,
            KCenterError::MapReduce(MapReduceError::RoundFailed {
                round: 0,
                machine: 2,
                attempts: 3,
                ..
            })
        ));

        let coreset = GonzalezCoresetConfig::new(64)
            .with_machines(10)
            .with_faults(faults)
            .build(&space)
            .unwrap();
        assert!(coreset.is_partial());
        assert_eq!(coreset.coverage().covered_source_len, 1_800);
        assert_eq!(coreset.coverage_fraction(), 0.9);
        assert_eq!(coreset.coverage().lost_source_ids.len(), 200);
        assert_eq!(coreset.coverage().dropped_shards.len(), 1);
        let shard = &coreset.coverage().dropped_shards[0];
        assert_eq!((shard.round, shard.machine, shard.items), (0, 2, 200));
        // Weights partition the survivors, not the full source.
        assert_eq!(coreset.total_weight(), 1_800);
        assert_eq!(coreset.source_len(), 2_000);
        // The lost ids are exactly machine 2's contiguous chunk.
        let lost = &coreset.coverage().lost_source_ids;
        assert_eq!(lost[0], 400);
        assert_eq!(lost[199], 599);
        assert_eq!(coreset.covered_source_ids().len(), 1_800);
        assert!(!coreset.covered_source_ids().contains(&450));

        // Solutions inherit the partial coverage, and the partial bound
        // holds over the surviving subset.
        let sol = coreset
            .solve(5, SequentialSolver::Gonzalez, FirstCenter::default())
            .unwrap();
        assert!(sol.is_partial());
        assert_eq!(sol.covered_fraction, 0.9);
        let covered_radius = coreset.certify_covered(&space, &sol);
        assert!(
            covered_radius <= sol.radius_bound + 1e-9,
            "covered radius {covered_radius} exceeds partial bound {}",
            sol.radius_bound
        );
    }

    #[test]
    fn degraded_weights_round_drops_its_chunks_points_from_coverage() {
        use kcenter_mapreduce::{FaultKind, FaultPlan, FaultPolicy, ScheduledFault};
        let space = cloud(1_500, 18);
        // Round index 2 is the weights/certification round of the Gonzalez
        // build (rounds 0 and 1 are local coresets and the merge).
        let plan = FaultPlan::explicit(
            (0..2)
                .map(|attempt| ScheduledFault {
                    round: 2,
                    machine: 4,
                    attempt,
                    kind: FaultKind::Crash,
                })
                .collect(),
        );
        let faults = FaultConfig::new(plan)
            .with_policy(FaultPolicy::with_max_attempts(2))
            .with_degrade(true);
        let coreset = GonzalezCoresetConfig::new(48)
            .with_machines(5)
            .with_faults(faults)
            .build(&space)
            .unwrap();
        assert!(coreset.is_partial());
        // 5 machines x 300 points: machine 4's weights chunk is lost.
        assert_eq!(coreset.coverage().covered_source_len, 1_200);
        assert_eq!(coreset.total_weight(), 1_200);
        let shard = &coreset.coverage().dropped_shards[0];
        assert_eq!((shard.round, shard.machine, shard.items), (2, 4, 300));
        // The certificate speaks for the survivors and is exact over them.
        let exact =
            covering_radius_subset(&space, &coreset.covered_source_ids(), coreset.source_ids());
        assert!((coreset.construction_radius() - exact).abs() <= 1e-12);
    }
}
