//! Mergeable coresets: compose batch summaries, re-compress against a
//! budget, and heal degraded coverage by re-ingesting lost points.
//!
//! This is the composable-summary discipline of Aghamolaei & Ghodsi's
//! data-distributed 2-approximation (see PAPERS.md): the union of two
//! certified summaries is itself a certified summary, so a stream can be
//! folded batch by batch without ever revisiting raw points.  Three
//! operations, three certificate rules:
//!
//! * **[`WeightedCoreset::merge`]** — concatenate the representative rows
//!   of two summaries over *disjoint* source prefixes.  Every source point
//!   still reaches a representative within its own builder's radius, so the
//!   composed certificate is `max(r_a, r_b)` — no slack is added.
//! * **[`WeightedCoreset::recompress`]** — when the accumulated summary
//!   exceeds a budget, re-run a weighted farthest-point selection *on the
//!   representatives themselves* and fold each old representative's weight
//!   into its nearest survivor.  A source point now pays two hops (to its
//!   old representative, then to that representative's survivor), so the
//!   certificate composes **additively**: `r_new = r_old + r_compress`,
//!   where `r_compress` is the certified covering radius of the survivors
//!   over the positive-weight old representatives.
//! * **[`WeightedCoreset::absorb_reingested`]** — a degraded batch build
//!   (PR 6's disclose-as-lost semantics) names exactly which source ids
//!   fell out of its claim; a service that still holds the source of
//!   record can rebuild a summary of just those points and fold it back
//!   in, restoring full coverage.  The certificate is again the `max` of
//!   the two, because the re-ingested points reach their own
//!   representatives directly.
//!
//! All three are deterministic per `(seed, precision, kernel, assign)`:
//! the only selection they run is the same weighted Gonzalez traversal the
//! sweep path uses, and every reported radius is certified with the
//! `wide_cmp_*` (`f64`-accumulating) discipline.

use super::{gather_rows, CoresetBuilder, CoresetCoverage, WeightedCoreset};
use crate::error::KCenterError;
use crate::evaluate::{assign, weighted_covering_radius};
use crate::gonzalez::FirstCenter;
use crate::solver::SequentialSolver;
use kcenter_metric::distance::Distance;
use kcenter_metric::{MetricSpace, PointId, Scalar, VecSpace};

impl<D: Distance + Clone, S: Scalar> WeightedCoreset<D, S> {
    /// Composes this summary with a summary of the **next** `other.source_len()`
    /// source points: the merged coreset summarises a source of
    /// `self.source_len() + other.source_len()` points in which `other`'s
    /// source ids are shifted up by `self.source_len()`.
    ///
    /// This is the streaming fold: batches arrive in order, each batch is
    /// summarised on its own, and the accumulated summary is the running
    /// merge.  The composed certificate is `max(r_a, r_b)` (each source
    /// point still reaches a representative of its own batch), coverage
    /// provenance concatenates with the same id shift, and the builder
    /// becomes [`CoresetBuilder::Merged`].  The build seed survives only
    /// when both sides agree (otherwise there is no single seed to report).
    ///
    /// # Errors
    ///
    /// [`KCenterError::InvalidParameter`] when the two summaries disagree
    /// on distance function, storage dimension, or when either side is
    /// empty of representatives (an empty side summarises nothing and
    /// would silently shift ids).
    pub fn merge(&self, other: &Self) -> Result<Self, KCenterError> {
        if self.is_empty() || other.is_empty() {
            return Err(KCenterError::InvalidParameter {
                name: "merge",
                message: "cannot merge an empty coreset".into(),
            });
        }
        if self.space.distance_name() != other.space.distance_name() {
            return Err(KCenterError::InvalidParameter {
                name: "merge",
                message: format!(
                    "distance mismatch: {} vs {}",
                    self.space.distance_name(),
                    other.space.distance_name()
                ),
            });
        }
        if self.space.dim() != other.space.dim() {
            return Err(KCenterError::InvalidParameter {
                name: "merge",
                message: format!(
                    "dimension mismatch: {:?} vs {:?}",
                    self.space.dim(),
                    other.space.dim()
                ),
            });
        }

        let offset = self.source_len;
        let mut flat = self.space.flat().clone();
        flat.append(other.space.flat());
        let space = VecSpace::from_flat_with_distance(flat, self.space.metric().clone());

        let mut source_ids = self.source_ids.clone();
        source_ids.extend(other.source_ids.iter().map(|&id| id + offset));
        let mut weights = self.weights.clone();
        weights.extend_from_slice(&other.weights);

        // Both lost lists are ascending and `other`'s shifted ids all sit
        // above `self`'s range, so concatenation stays ascending.
        let mut lost = self.coverage.lost_source_ids.clone();
        lost.extend(other.coverage.lost_source_ids.iter().map(|&id| id + offset));
        let mut dropped = self.coverage.dropped_shards.clone();
        dropped.extend(other.coverage.dropped_shards.iter().cloned());
        let coverage = CoresetCoverage {
            covered_source_len: self.coverage.covered_source_len
                + other.coverage.covered_source_len,
            dropped_shards: dropped,
            lost_source_ids: lost,
        };

        let mut stats = self.stats.clone();
        stats.extend(other.stats.clone());
        let seed = if self.seed == other.seed {
            self.seed
        } else {
            None
        };

        Ok(Self::from_parts(
            space,
            source_ids,
            weights,
            self.source_len + other.source_len,
            self.construction_radius.max(other.construction_radius),
            CoresetBuilder::Merged,
            seed,
            stats,
            coverage,
        ))
    }

    /// Shrinks the summary to at most `budget` representatives by a
    /// weighted farthest-point selection **on the representatives
    /// themselves**, folding each old representative's weight into its
    /// nearest survivor (the [`assign`] convention: comparison-space
    /// argmin, ties to the smaller survivor position).
    ///
    /// The certificate composes additively: a covered source point reaches
    /// its old representative within `r_old` and that representative
    /// reaches its survivor within the certified compression radius, so
    /// `r_new = r_old + r_compress`.  `r_compress` is the `f64`-certified
    /// weighted covering radius of the survivors over the old
    /// representatives (zero-weight rows drop out of both candidacy and
    /// the radius, as everywhere else).
    ///
    /// Returns a clone when the summary already fits the budget.
    ///
    /// # Errors
    ///
    /// [`KCenterError::InvalidParameter`] when `budget` is zero.
    pub fn recompress(&self, budget: usize) -> Result<Self, KCenterError> {
        if budget == 0 {
            return Err(KCenterError::InvalidParameter {
                name: "budget",
                message: "a coreset budget needs at least one representative".into(),
            });
        }
        if self.len() <= budget {
            return Ok(self.clone());
        }

        let ids: Vec<PointId> = (0..self.len()).collect();
        let survivors = SequentialSolver::Gonzalez.select_centers_weighted_cached(
            &self.space,
            &ids,
            &self.weights,
            budget,
            FirstCenter::default(),
            Some(&self.relax_grid),
        );
        let r_compress = weighted_covering_radius(&self.space, &self.weights, &survivors);

        // Fold every old representative's weight into its nearest survivor.
        let assignment = assign(&self.space, &survivors);
        let mut weights = vec![0u64; survivors.len()];
        for (old, &slot) in assignment.iter().enumerate() {
            weights[slot] += self.weights[old];
        }

        let source_ids: Vec<PointId> = survivors.iter().map(|&s| self.source_ids[s]).collect();
        Ok(Self::from_parts(
            gather_rows(&self.space, &survivors),
            source_ids,
            weights,
            self.source_len,
            self.construction_radius + r_compress,
            CoresetBuilder::Merged,
            self.seed,
            self.stats.clone(),
            self.coverage.clone(),
        ))
    }

    /// [`WeightedCoreset::merge`] followed by [`WeightedCoreset::recompress`]
    /// whenever the merged summary exceeds `budget` — the periodic
    /// re-compression step of a streaming fold.
    pub fn merge_bounded(&self, other: &Self, budget: usize) -> Result<Self, KCenterError> {
        let merged = self.merge(other)?;
        if merged.len() > budget {
            merged.recompress(budget)
        } else {
            Ok(merged)
        }
    }

    /// Heals a degraded summary by folding in a summary of its lost points
    /// — the re-replication a service performs from the source of record
    /// instead of PR 6's disclose-as-lost degradation.
    ///
    /// `supplement` must be a **full-coverage** summary of exactly the
    /// points named by `recovered_ids` (its local source id `i` stands for
    /// this coreset's source id `recovered_ids[i]`), and every recovered id
    /// must currently be lost here.  The healed summary covers the union;
    /// when every lost point is recovered, the dropped-shard provenance is
    /// cleared — the summary is whole again, and the *history* of the drop
    /// belongs to the ingest log, not the certificate.  The composed
    /// certificate is `max(r_self, r_supplement)`.
    ///
    /// # Errors
    ///
    /// [`KCenterError::InvalidParameter`] when the supplement is partial,
    /// its source length disagrees with `recovered_ids`, an id is not
    /// currently lost, or spaces disagree on distance/dimension.
    pub fn absorb_reingested(
        &self,
        supplement: &Self,
        recovered_ids: &[PointId],
    ) -> Result<Self, KCenterError> {
        if supplement.is_partial() {
            return Err(KCenterError::InvalidParameter {
                name: "supplement",
                message: "a re-ingested summary must itself be full-coverage".into(),
            });
        }
        if supplement.source_len() != recovered_ids.len() {
            return Err(KCenterError::InvalidParameter {
                name: "recovered_ids",
                message: format!(
                    "supplement summarises {} points but {} ids were recovered",
                    supplement.source_len(),
                    recovered_ids.len()
                ),
            });
        }
        if self.space.distance_name() != supplement.space.distance_name()
            || (!supplement.is_empty() && self.space.dim() != supplement.space.dim())
        {
            return Err(KCenterError::InvalidParameter {
                name: "supplement",
                message: "supplement space disagrees with the coreset space".into(),
            });
        }
        let currently_lost: std::collections::BTreeSet<PointId> =
            self.coverage.lost_source_ids.iter().copied().collect();
        if !recovered_ids.iter().all(|id| currently_lost.contains(id)) {
            return Err(KCenterError::InvalidParameter {
                name: "recovered_ids",
                message: "every recovered id must currently be lost".into(),
            });
        }

        let mut flat = self.space.flat().clone();
        flat.append(supplement.space.flat());
        let space = VecSpace::from_flat_with_distance(flat, self.space.metric().clone());

        let mut source_ids = self.source_ids.clone();
        source_ids.extend(supplement.source_ids.iter().map(|&i| recovered_ids[i]));
        let mut weights = self.weights.clone();
        weights.extend_from_slice(&supplement.weights);

        let recovered: std::collections::BTreeSet<PointId> =
            recovered_ids.iter().copied().collect();
        let lost: Vec<PointId> = self
            .coverage
            .lost_source_ids
            .iter()
            .copied()
            .filter(|id| !recovered.contains(id))
            .collect();
        let dropped = if lost.is_empty() {
            Vec::new()
        } else {
            self.coverage.dropped_shards.clone()
        };
        let coverage = CoresetCoverage {
            covered_source_len: self.coverage.covered_source_len + recovered_ids.len(),
            dropped_shards: dropped,
            lost_source_ids: lost,
        };

        let mut stats = self.stats.clone();
        stats.extend(supplement.stats.clone());
        Ok(Self::from_parts(
            space,
            source_ids,
            weights,
            self.source_len,
            self.construction_radius.max(supplement.construction_radius),
            CoresetBuilder::Merged,
            self.seed,
            stats,
            coverage,
        ))
    }
}

/// Folds an ordered sequence of batch summaries into one bounded summary:
/// plain merge while the running summary fits `budget`, re-compression
/// whenever it spills over.  Convenience wrapper over
/// [`WeightedCoreset::merge_bounded`] for callers that already hold all
/// batch summaries (streaming callers fold incrementally instead).
///
/// # Errors
///
/// [`KCenterError::EmptyInput`] on an empty sequence; otherwise whatever
/// the pairwise merges return.
pub fn merge_all<D: Distance + Clone, S: Scalar>(
    batches: &[WeightedCoreset<D, S>],
    budget: usize,
) -> Result<WeightedCoreset<D, S>, KCenterError> {
    let (first, rest) = batches.split_first().ok_or(KCenterError::EmptyInput)?;
    let mut acc = first.clone();
    if acc.len() > budget {
        acc = acc.recompress(budget)?;
    }
    for batch in rest {
        acc = acc.merge_bounded(batch, budget)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::super::GonzalezCoresetConfig;
    use super::*;
    use crate::evaluate::covering_radius;
    use kcenter_metric::Point;

    fn cloud(n: usize, seed: u64) -> VecSpace {
        VecSpace::new(
            (0..n)
                .map(|i| {
                    let v = seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64)
                        .wrapping_mul(0xD129_0DDB_53C4_3E49);
                    let x = (v % 10_000) as f64 / 100.0;
                    let y = ((v >> 20) % 10_000) as f64 / 100.0;
                    Point::xy(x, y)
                })
                .collect(),
        )
    }

    /// Splits a cloud's rows into `parts` contiguous batches (as spaces).
    fn split(space: &VecSpace, parts: usize) -> Vec<VecSpace> {
        let n = MetricSpace::len(space);
        let base = n / parts;
        let rem = n % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0usize;
        for p in 0..parts {
            let len = base + usize::from(p < rem);
            let mut flat = kcenter_metric::FlatPoints::<f64>::with_capacity(2, len);
            for id in start..start + len {
                flat.push_row(space.row(id));
            }
            out.push(VecSpace::from_flat_with_distance(flat, *space.metric()));
            start += len;
        }
        out
    }

    #[test]
    fn merge_concatenates_with_max_certificate() {
        let space = cloud(2_000, 21);
        let parts = split(&space, 2);
        let a = GonzalezCoresetConfig::new(48).build(&parts[0]).unwrap();
        let b = GonzalezCoresetConfig::new(48).build(&parts[1]).unwrap();
        let m = a.merge(&b).unwrap();
        assert_eq!(m.len(), 96);
        assert_eq!(m.source_len(), 2_000);
        assert_eq!(m.total_weight(), 2_000);
        assert_eq!(m.builder(), CoresetBuilder::Merged);
        assert_eq!(
            m.construction_radius(),
            a.construction_radius().max(b.construction_radius())
        );
        // Shifted ids point at the right global rows: the merged
        // representative rows are the rows of their claimed source ids.
        for (local, &global) in m.source_ids().iter().enumerate() {
            assert_eq!(m.space().row(local), space.row(global), "rep {local}");
        }
        // The composed certificate really bounds the source-to-rep radius.
        let exact = covering_radius(&space, m.source_ids());
        assert!(exact <= m.construction_radius() + 1e-12);
    }

    #[test]
    fn merged_solutions_carry_a_valid_bound_over_the_union() {
        let space = cloud(3_000, 22);
        let parts = split(&space, 3);
        let summaries: Vec<_> = parts
            .iter()
            .map(|p| GonzalezCoresetConfig::new(64).build(p).unwrap())
            .collect();
        let merged = merge_all(&summaries, usize::MAX).unwrap();
        let sol = merged
            .solve(5, SequentialSolver::Gonzalez, FirstCenter::default())
            .unwrap();
        let full = sol.certify(&space);
        assert!(
            full <= sol.radius_bound + 1e-9,
            "full radius {full} exceeds merged bound {}",
            sol.radius_bound
        );
    }

    #[test]
    fn recompress_folds_weights_and_composes_additively() {
        let space = cloud(2_400, 23);
        let parts = split(&space, 2);
        let a = GonzalezCoresetConfig::new(80).build(&parts[0]).unwrap();
        let b = GonzalezCoresetConfig::new(80).build(&parts[1]).unwrap();
        let merged = a.merge(&b).unwrap();
        let squeezed = merged.recompress(60).unwrap();
        assert_eq!(squeezed.len(), 60);
        assert_eq!(squeezed.total_weight(), 2_400);
        assert_eq!(squeezed.source_len(), 2_400);
        assert!(squeezed.construction_radius() >= merged.construction_radius());
        // The composed certificate bounds the exact source-to-rep radius.
        let exact = covering_radius(&space, squeezed.source_ids());
        assert!(
            exact <= squeezed.construction_radius() + 1e-12,
            "exact {exact} vs composed {}",
            squeezed.construction_radius()
        );
        // And solutions on the squeezed summary still bound the full data.
        let sol = squeezed
            .solve(8, SequentialSolver::Gonzalez, FirstCenter::default())
            .unwrap();
        assert!(sol.certify(&space) <= sol.radius_bound + 1e-9);
        // Within budget, recompress is the identity (same bits).
        let kept = squeezed.recompress(60).unwrap();
        assert_eq!(kept.source_ids(), squeezed.source_ids());
        assert_eq!(kept.weights(), squeezed.weights());
        assert_eq!(kept.construction_radius(), squeezed.construction_radius());
    }

    #[test]
    fn merge_is_deterministic_bit_for_bit() {
        let space = cloud(2_000, 24);
        let parts = split(&space, 4);
        let build = || {
            let summaries: Vec<_> = parts
                .iter()
                .map(|p| GonzalezCoresetConfig::new(40).build(p).unwrap())
                .collect();
            merge_all(&summaries, 90).unwrap()
        };
        let x = build();
        let y = build();
        assert_eq!(x.source_ids(), y.source_ids());
        assert_eq!(x.weights(), y.weights());
        assert_eq!(
            x.construction_radius().to_bits(),
            y.construction_radius().to_bits()
        );
        assert_eq!(x.space().flat().coords(), y.space().flat().coords());
    }

    #[test]
    fn merge_rejects_mismatched_or_empty_inputs() {
        let space = cloud(600, 25);
        let a = GonzalezCoresetConfig::new(16).build(&space).unwrap();
        // Dimension mismatch.
        let other = VecSpace::new(vec![Point::new(vec![1.0, 2.0, 3.0]); 50]);
        let b = GonzalezCoresetConfig::new(8).build(&other).unwrap();
        assert!(matches!(
            a.merge(&b).unwrap_err(),
            KCenterError::InvalidParameter { name: "merge", .. }
        ));
        assert!(matches!(
            a.recompress(0).unwrap_err(),
            KCenterError::InvalidParameter { name: "budget", .. }
        ));
        assert!(matches!(
            merge_all::<kcenter_metric::Euclidean, f64>(&[], 10).unwrap_err(),
            KCenterError::EmptyInput
        ));
    }

    #[test]
    fn absorb_reingested_restores_full_coverage() {
        use kcenter_mapreduce::{FaultConfig, FaultKind, FaultPlan, FaultPolicy, ScheduledFault};
        let space = cloud(2_000, 26);
        // Kill machine 2 of the data-holding round for good: 10 machines x
        // 200 points, ids 400..600 disclosed as lost.
        let plan = FaultPlan::explicit(
            (0..3)
                .map(|attempt| ScheduledFault {
                    round: 0,
                    machine: 2,
                    attempt,
                    kind: FaultKind::Crash,
                })
                .collect(),
        );
        let faults = FaultConfig::new(plan)
            .with_policy(FaultPolicy::with_max_attempts(3))
            .with_degrade(true);
        let degraded = GonzalezCoresetConfig::new(64)
            .with_machines(10)
            .with_faults(faults)
            .build(&space)
            .unwrap();
        assert!(degraded.is_partial());
        let lost = degraded.coverage().lost_source_ids.clone();
        assert_eq!(lost.len(), 200);

        // Re-ingest the lost points from the source of record.
        let mut flat = kcenter_metric::FlatPoints::<f64>::with_capacity(2, lost.len());
        for &id in &lost {
            flat.push_row(space.row(id));
        }
        let lost_space = VecSpace::from_flat_with_distance(flat, *space.metric());
        let supplement = GonzalezCoresetConfig::new(16).build(&lost_space).unwrap();
        let healed = degraded.absorb_reingested(&supplement, &lost).unwrap();

        assert!(!healed.is_partial());
        assert_eq!(healed.coverage_fraction(), 1.0);
        assert_eq!(healed.total_weight(), 2_000);
        assert_eq!(healed.source_len(), 2_000);
        assert!(healed.coverage().dropped_shards.is_empty());
        // The healed certificate bounds the exact full-data radius again.
        let exact = covering_radius(&space, healed.source_ids());
        assert!(exact <= healed.construction_radius() + 1e-12);
        // Healed representative rows match their claimed source rows.
        for (local, &global) in healed.source_ids().iter().enumerate() {
            assert_eq!(healed.space().row(local), space.row(global));
        }

        // Guard rails: wrong id count, partial supplement, not-lost ids.
        assert!(degraded
            .absorb_reingested(&supplement, &lost[..100])
            .is_err());
        assert!(degraded
            .absorb_reingested(&supplement, &(0..200).collect::<Vec<_>>())
            .is_err());
    }
}
