//! Versioned binary serialization of [`WeightedCoreset`]: the wire/disk
//! format that lets a certified summary cross process boundaries.
//!
//! # Format (version 1)
//!
//! All integers little-endian; `w` is the scalar byte width (4 for `f32`,
//! 8 for `f64`).  One contiguous buffer:
//!
//! ```text
//! magic                  4  b"KCWC"
//! version                2  u16 (= 1)
//! scalar tag             1  u8  (1 = f32, 2 = f64; Scalar::TAG)
//! builder tag            1  u8  (0 gonzalez, 1 eim, 2 merged)
//! flags                  1  u8  (bit 0: seed present; others must be 0)
//! distance-name length   1  u8
//! distance name          ..  ASCII (e.g. "euclidean")
//! [seed]                 8  u64, present iff flag bit 0
//! dim                    4  u32
//! t (representatives)    8  u64
//! source_len             8  u64
//! construction radius    8  f64 bit pattern
//! rows                   t*dim*w  coordinates, row-major
//! source ids             t*8  u64 each
//! weights                t*8  u64 each
//! covered_source_len     8  u64
//! lost count             8  u64
//! lost ids               ..  u64 each, strictly ascending
//! dropped-shard count    8  u64
//! shards                 ..  round u64, machine u64, attempts u64,
//!                            items u64, cause u8 (0 crash, 1 corrupt,
//!                            2 validation)
//! checksum               8  FNV-1a 64 over every preceding byte
//! ```
//!
//! # Versioning policy
//!
//! The version is bumped whenever the byte layout changes; readers accept
//! exactly the versions they know and reject everything else as
//! [`PersistError::UnsupportedVersion`] — no silent best-effort parsing.
//! Scalar and distance tags make a summary self-describing: loading into
//! the wrong monomorphisation is a named error, not a reinterpretation.
//!
//! # Corruption discipline
//!
//! Decoding never panics and never constructs a partial coreset: every
//! length is bounds-checked before it is read, every invariant the
//! in-memory type maintains (weights partition the covered source, lost
//! ids ascending and in range, certificate finite and non-negative) is
//! re-validated, and the trailing checksum covers every byte, so a
//! bit-flip anywhere is caught even when it lands in padding-free numeric
//! data.  Round-tripping is byte-exact: `to_bytes ∘ from_bytes ∘ to_bytes`
//! is the identity on valid buffers, and coordinates/certificates travel
//! as raw IEEE-754 bit patterns (no text round-off).
//!
//! Job accounting ([`WeightedCoreset::stats`]) and the lazily built relax
//! grid are process-local artifacts and deliberately **not** persisted: a
//! loaded summary starts with empty stats and rebuilds its grid on first
//! use, bit-identically.

use super::{CoresetBuilder, CoresetCoverage, WeightedCoreset};
use kcenter_mapreduce::{DroppedShard, FaultCause, JobStats};
use kcenter_metric::distance::Distance;
use kcenter_metric::point::PointError;
use kcenter_metric::{FlatPoints, PointId, Scalar, VecSpace};
use std::fmt;

/// Magic bytes opening every persisted coreset.
pub const MAGIC: [u8; 4] = *b"KCWC";
/// The (single) format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// Why a persisted coreset failed to decode.  Every variant is a named,
/// non-panicking rejection; no partial coreset is ever constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// The buffer ended before the named field could be read.
    Truncated {
        /// Which field was being read.
        field: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were left.
        available: usize,
    },
    /// The buffer does not open with the coreset magic.
    BadMagic {
        /// The four bytes found instead of [`MAGIC`].
        found: [u8; 4],
    },
    /// The format version is not one this build understands.
    UnsupportedVersion {
        /// Version stored in the buffer.
        found: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The stored scalar tag disagrees with the requested storage type
    /// (or is unknown altogether).
    ScalarMismatch {
        /// Tag stored in the buffer.
        stored: u8,
        /// Tag of the requested `S` ([`Scalar::TAG`]).
        expected: u8,
    },
    /// The stored distance name disagrees with the requested distance.
    DistanceMismatch {
        /// Name stored in the buffer.
        stored: String,
        /// Name of the requested `D`.
        expected: &'static str,
    },
    /// The trailing FNV-1a checksum does not match the buffer contents.
    ChecksumMismatch {
        /// Checksum stored in the buffer.
        stored: u64,
        /// Checksum recomputed over the buffer.
        computed: u64,
    },
    /// A structural invariant failed (bad enum tag, counts that do not
    /// add up, out-of-range ids, non-finite certificate, trailing bytes).
    Malformed {
        /// Which invariant failed.
        what: &'static str,
    },
    /// The coordinate rows failed the flat store's validation (non-finite
    /// or out-of-range coordinates).
    Rows(PointError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated {
                field,
                needed,
                available,
            } => write!(
                f,
                "truncated coreset: field `{field}` needs {needed} bytes, {available} left"
            ),
            PersistError::BadMagic { found } => {
                write!(f, "not a persisted coreset (magic {found:02x?})")
            }
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported coreset format version {found} (this build reads {supported})"
            ),
            PersistError::ScalarMismatch { stored, expected } => write!(
                f,
                "scalar tag mismatch: stored {stored}, requested {expected}"
            ),
            PersistError::DistanceMismatch { stored, expected } => write!(
                f,
                "distance mismatch: stored `{stored}`, requested `{expected}`"
            ),
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            PersistError::Malformed { what } => write!(f, "malformed coreset: {what}"),
            PersistError::Rows(e) => write!(f, "invalid coordinate rows: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// FNV-1a 64 over `bytes` — the same digest the scenario reports use.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn builder_tag(builder: CoresetBuilder) -> u8 {
    match builder {
        CoresetBuilder::Gonzalez => 0,
        CoresetBuilder::Eim => 1,
        CoresetBuilder::Merged => 2,
    }
}

fn builder_from_tag(tag: u8) -> Option<CoresetBuilder> {
    match tag {
        0 => Some(CoresetBuilder::Gonzalez),
        1 => Some(CoresetBuilder::Eim),
        2 => Some(CoresetBuilder::Merged),
        _ => None,
    }
}

fn cause_tag(cause: FaultCause) -> u8 {
    match cause {
        FaultCause::Crashed => 0,
        FaultCause::CorruptOutput => 1,
        FaultCause::ValidationFailed => 2,
    }
}

fn cause_from_tag(tag: u8) -> Option<FaultCause> {
    match tag {
        0 => Some(FaultCause::Crashed),
        1 => Some(FaultCause::CorruptOutput),
        2 => Some(FaultCause::ValidationFailed),
        _ => None,
    }
}

/// A bounds-checked reader over the encoded buffer: every read names its
/// field, so truncation errors say exactly where the bytes ran out.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], PersistError> {
        let available = self.bytes.len() - self.pos;
        if n > available {
            return Err(PersistError::Truncated {
                field,
                needed: n,
                available,
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, PersistError> {
        Ok(self.take(1, field)?[0])
    }

    fn u16(&mut self, field: &'static str) -> Result<u16, PersistError> {
        let b = self.take(2, field)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, PersistError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, PersistError> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn usize_field(&mut self, field: &'static str) -> Result<usize, PersistError> {
        self.u64(field)?
            .try_into()
            .map_err(|_| PersistError::Malformed { what: field })
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

impl<D: Distance, S: Scalar> WeightedCoreset<D, S> {
    /// Encodes the summary into the versioned, checksummed binary format
    /// (module docs).  The inverse of [`WeightedCoreset::from_bytes`];
    /// round-trips are byte-exact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let name = self.space.metric().name().as_bytes();
        debug_assert!(name.len() <= u8::MAX as usize, "distance name too long");
        let dim = self.space.flat().dim();
        let mut out = Vec::with_capacity(64 + name.len() + self.len() * (dim * S::BYTE_WIDTH + 16));
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(S::TAG);
        out.push(builder_tag(self.builder));
        out.push(u8::from(self.seed.is_some()));
        out.push(name.len() as u8);
        out.extend_from_slice(name);
        if let Some(seed) = self.seed {
            out.extend_from_slice(&seed.to_le_bytes());
        }
        out.extend_from_slice(&(dim as u32).to_le_bytes());
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.source_len as u64).to_le_bytes());
        out.extend_from_slice(&self.construction_radius.to_bits().to_le_bytes());
        for &c in self.space.flat().coords() {
            c.write_le_bytes(&mut out);
        }
        for &id in &self.source_ids {
            out.extend_from_slice(&(id as u64).to_le_bytes());
        }
        for &w in &self.weights {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&(self.coverage.covered_source_len as u64).to_le_bytes());
        out.extend_from_slice(&(self.coverage.lost_source_ids.len() as u64).to_le_bytes());
        for &id in &self.coverage.lost_source_ids {
            out.extend_from_slice(&(id as u64).to_le_bytes());
        }
        out.extend_from_slice(&(self.coverage.dropped_shards.len() as u64).to_le_bytes());
        for shard in &self.coverage.dropped_shards {
            out.extend_from_slice(&(shard.round as u64).to_le_bytes());
            out.extend_from_slice(&(shard.machine as u64).to_le_bytes());
            out.extend_from_slice(&(shard.attempts as u64).to_le_bytes());
            out.extend_from_slice(&(shard.items as u64).to_le_bytes());
            out.push(cause_tag(shard.cause));
        }
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }
}

impl<D: Distance + Default + Clone, S: Scalar> WeightedCoreset<D, S> {
    /// Decodes a summary from the versioned binary format, re-validating
    /// every invariant the in-memory type maintains.  Corrupt, truncated,
    /// wrong-version, wrong-scalar and wrong-distance inputs all come back
    /// as named [`PersistError`]s — never panics, never a partial value.
    ///
    /// The loaded summary carries empty [`JobStats`] (accounting is
    /// process-local) and is otherwise bit-identical to the encoded one.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        // Checksum first: it covers everything, so random corruption is
        // reported as corruption, not as whichever field it happened to
        // land in.  (Truncation is still reported per-field below.)
        if bytes.len() >= 8 + MAGIC.len() {
            let body = &bytes[..bytes.len() - 8];
            let stored_tail = &bytes[bytes.len() - 8..];
            let stored = u64::from_le_bytes([
                stored_tail[0],
                stored_tail[1],
                stored_tail[2],
                stored_tail[3],
                stored_tail[4],
                stored_tail[5],
                stored_tail[6],
                stored_tail[7],
            ]);
            let computed = fnv1a64(body);
            // Only meaningful when the magic matches: otherwise this is
            // simply not a coreset buffer and BadMagic is the right error.
            if body.starts_with(&MAGIC) && stored != computed {
                return Err(PersistError::ChecksumMismatch { stored, computed });
            }
        }

        let mut cur = Cursor::new(bytes);
        let magic = cur.take(4, "magic")?;
        if magic != MAGIC {
            return Err(PersistError::BadMagic {
                found: [magic[0], magic[1], magic[2], magic[3]],
            });
        }
        let version = cur.u16("version")?;
        if version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let scalar = cur.u8("scalar tag")?;
        if scalar != S::TAG {
            return Err(PersistError::ScalarMismatch {
                stored: scalar,
                expected: S::TAG,
            });
        }
        let builder = builder_from_tag(cur.u8("builder tag")?).ok_or(PersistError::Malformed {
            what: "builder tag",
        })?;
        let flags = cur.u8("flags")?;
        if flags & !1 != 0 {
            return Err(PersistError::Malformed { what: "flags" });
        }
        let name_len = cur.u8("distance-name length")? as usize;
        let name_bytes = cur.take(name_len, "distance name")?;
        let name = std::str::from_utf8(name_bytes).map_err(|_| PersistError::Malformed {
            what: "distance name",
        })?;
        let dist = D::default();
        if name != dist.name() {
            return Err(PersistError::DistanceMismatch {
                stored: name.to_string(),
                expected: dist.name(),
            });
        }
        let seed = if flags & 1 != 0 {
            Some(cur.u64("seed")?)
        } else {
            None
        };
        let dim = cur.u32("dim")? as usize;
        let t = cur.usize_field("representative count")?;
        let source_len = cur.usize_field("source length")?;
        let radius = f64::from_bits(cur.u64("construction radius")?);
        if !radius.is_finite() || radius < 0.0 {
            return Err(PersistError::Malformed {
                what: "construction radius",
            });
        }
        if t == 0 {
            return Err(PersistError::Malformed {
                what: "empty coreset",
            });
        }
        if dim == 0 {
            return Err(PersistError::Malformed { what: "zero dim" });
        }

        let coord_count = t
            .checked_mul(dim)
            .ok_or(PersistError::Malformed { what: "row count" })?;
        let coord_bytes = coord_count
            .checked_mul(S::BYTE_WIDTH)
            .ok_or(PersistError::Malformed { what: "row count" })?;
        let row_bytes = cur.take(coord_bytes, "rows")?;
        let mut coords = Vec::with_capacity(coord_count);
        for chunk in row_bytes.chunks_exact(S::BYTE_WIDTH) {
            coords.push(S::read_le_bytes(chunk).ok_or(PersistError::Malformed { what: "rows" })?);
        }
        let flat = FlatPoints::from_coords(coords, dim).map_err(PersistError::Rows)?;

        let mut source_ids = Vec::with_capacity(t);
        {
            let b = cur.take(t * 8, "source ids")?;
            for chunk in b.chunks_exact(8) {
                let v = u64::from_le_bytes([
                    chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
                ]);
                let id: PointId = v
                    .try_into()
                    .map_err(|_| PersistError::Malformed { what: "source ids" })?;
                if id >= source_len {
                    return Err(PersistError::Malformed { what: "source ids" });
                }
                source_ids.push(id);
            }
        }
        let mut weights = Vec::with_capacity(t);
        {
            let b = cur.take(t * 8, "weights")?;
            for chunk in b.chunks_exact(8) {
                weights.push(u64::from_le_bytes([
                    chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
                ]));
            }
        }

        let covered = cur.usize_field("covered source length")?;
        let lost_count = cur.usize_field("lost count")?;
        let lost_bytes = cur.take(
            lost_count
                .checked_mul(8)
                .ok_or(PersistError::Malformed { what: "lost count" })?,
            "lost ids",
        )?;
        let mut lost = Vec::with_capacity(lost_count);
        for chunk in lost_bytes.chunks_exact(8) {
            let v = u64::from_le_bytes([
                chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
            ]);
            let id: PointId = v
                .try_into()
                .map_err(|_| PersistError::Malformed { what: "lost ids" })?;
            if id >= source_len || lost.last().is_some_and(|&prev| prev >= id) {
                return Err(PersistError::Malformed { what: "lost ids" });
            }
            lost.push(id);
        }

        let shard_count = cur.usize_field("dropped-shard count")?;
        let shard_bytes = cur.take(
            shard_count.checked_mul(33).ok_or(PersistError::Malformed {
                what: "dropped-shard count",
            })?,
            "dropped shards",
        )?;
        let mut dropped = Vec::with_capacity(shard_count);
        for chunk in shard_bytes.chunks_exact(33) {
            let field = |i: usize| -> Result<usize, PersistError> {
                let v = u64::from_le_bytes([
                    chunk[i],
                    chunk[i + 1],
                    chunk[i + 2],
                    chunk[i + 3],
                    chunk[i + 4],
                    chunk[i + 5],
                    chunk[i + 6],
                    chunk[i + 7],
                ]);
                v.try_into().map_err(|_| PersistError::Malformed {
                    what: "dropped shards",
                })
            };
            dropped.push(DroppedShard {
                round: field(0)?,
                machine: field(8)?,
                attempts: field(16)?,
                items: field(24)?,
                cause: cause_from_tag(chunk[32]).ok_or(PersistError::Malformed {
                    what: "fault cause tag",
                })?,
            });
        }

        let stored_checksum = cur.u64("checksum")?;
        let computed = fnv1a64(&bytes[..bytes.len() - cur.remaining() - 8]);
        if stored_checksum != computed {
            return Err(PersistError::ChecksumMismatch {
                stored: stored_checksum,
                computed,
            });
        }
        if cur.remaining() != 0 {
            return Err(PersistError::Malformed {
                what: "trailing bytes",
            });
        }

        // Re-establish the in-memory invariants before constructing.
        if flat.len() != t {
            return Err(PersistError::Malformed { what: "row count" });
        }
        let weight_sum: u64 = weights.iter().sum();
        if weight_sum != covered as u64 {
            return Err(PersistError::Malformed {
                what: "weights do not partition the covered source",
            });
        }
        if covered.checked_add(lost.len()) != Some(source_len) {
            return Err(PersistError::Malformed {
                what: "covered + lost must account for every source point",
            });
        }

        let coverage = CoresetCoverage {
            covered_source_len: covered,
            dropped_shards: dropped,
            lost_source_ids: lost,
        };
        Ok(Self::from_parts(
            VecSpace::from_flat_with_distance(flat, dist),
            source_ids,
            weights,
            source_len,
            radius,
            builder,
            seed,
            JobStats::default(),
            coverage,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::super::GonzalezCoresetConfig;
    use super::*;
    use kcenter_metric::{Euclidean, Manhattan, Point};

    fn cloud(n: usize, seed: u64) -> VecSpace {
        VecSpace::new(
            (0..n)
                .map(|i| {
                    let v = seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64)
                        .wrapping_mul(0xD129_0DDB_53C4_3E49);
                    let x = (v % 10_000) as f64 / 100.0;
                    let y = ((v >> 20) % 10_000) as f64 / 100.0;
                    Point::xy(x, y)
                })
                .collect(),
        )
    }

    fn sample() -> WeightedCoreset {
        GonzalezCoresetConfig::new(32)
            .with_machines(4)
            .build(&cloud(1_000, 41))
            .unwrap()
    }

    /// Re-stamps the trailing checksum after a deliberate body edit, so a
    /// test can reach the structural validators behind the checksum gate.
    fn restamp(mut bytes: Vec<u8>) -> Vec<u8> {
        let body_len = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        bytes
    }

    #[test]
    fn round_trip_is_byte_exact_and_bit_identical() {
        let coreset = sample();
        let bytes = coreset.to_bytes();
        let loaded = WeightedCoreset::<Euclidean, f64>::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.source_ids(), coreset.source_ids());
        assert_eq!(loaded.weights(), coreset.weights());
        assert_eq!(
            loaded.construction_radius().to_bits(),
            coreset.construction_radius().to_bits()
        );
        assert_eq!(
            loaded.space().flat().coords(),
            coreset.space().flat().coords()
        );
        assert_eq!(loaded.builder(), coreset.builder());
        assert_eq!(loaded.source_len(), coreset.source_len());
        assert_eq!(loaded.coverage(), coreset.coverage());
        // Byte-exact re-encode.
        assert_eq!(loaded.to_bytes(), bytes);
        // Stats are process-local and come back empty.
        assert_eq!(loaded.stats().num_rounds(), 0);
    }

    #[test]
    fn every_truncation_prefix_is_a_named_error() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            let err = WeightedCoreset::<Euclidean, f64>::from_bytes(&bytes[..len])
                .expect_err("truncated buffer must not decode");
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. }
                        | PersistError::BadMagic { .. }
                        | PersistError::ChecksumMismatch { .. }
                ),
                "prefix {len}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn wrong_magic_version_scalar_distance_are_named() {
        let bytes = sample().to_bytes();

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            WeightedCoreset::<Euclidean, f64>::from_bytes(&bad).unwrap_err(),
            PersistError::BadMagic { .. }
        ));

        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            WeightedCoreset::<Euclidean, f64>::from_bytes(&restamp(bad)).unwrap_err(),
            PersistError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            }
        ));

        // f64 payload into an f32 reader.
        assert!(matches!(
            WeightedCoreset::<Euclidean, f32>::from_bytes(&bytes).unwrap_err(),
            PersistError::ScalarMismatch {
                stored: 2,
                expected: 1
            }
        ));

        // Euclidean payload into a Manhattan reader.
        assert!(matches!(
            WeightedCoreset::<Manhattan, f64>::from_bytes(&bytes).unwrap_err(),
            PersistError::DistanceMismatch { .. }
        ));
    }

    #[test]
    fn bit_flips_anywhere_are_rejected() {
        let bytes = sample().to_bytes();
        // Flip one bit in a spread of positions across the buffer (every
        // position would be O(n^2); the corruption proptests cover random
        // positions).
        for pos in (0..bytes.len()).step_by(17) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                WeightedCoreset::<Euclidean, f64>::from_bytes(&bad).is_err(),
                "flip at {pos} was accepted"
            );
        }
    }

    #[test]
    fn structural_tampering_behind_a_valid_checksum_is_still_rejected() {
        let coreset = sample();
        let bytes = coreset.to_bytes();

        // Locate the weights block: header is 4+2+1+1+1+1+9 ("euclidean")
        // + 4 + 8 + 8 + 8, then rows, then ids, then weights.
        let header = 4 + 2 + 1 + 1 + 1 + 1 + "euclidean".len() + 4 + 8 + 8 + 8;
        let rows = coreset.len() * 2 * 8;
        let ids = coreset.len() * 8;
        let weights_at = header + rows + ids;

        // Inflate one weight: the partition invariant must catch it.
        let mut bad = bytes.clone();
        bad[weights_at] = bad[weights_at].wrapping_add(1);
        assert!(matches!(
            WeightedCoreset::<Euclidean, f64>::from_bytes(&restamp(bad)).unwrap_err(),
            PersistError::Malformed { .. } | PersistError::ChecksumMismatch { .. }
        ));

        // Bad builder tag.
        let mut bad = bytes.clone();
        bad[7] = 7;
        assert!(matches!(
            WeightedCoreset::<Euclidean, f64>::from_bytes(&restamp(bad)).unwrap_err(),
            PersistError::Malformed {
                what: "builder tag"
            }
        ));

        // Unknown flags.
        let mut bad = bytes.clone();
        bad[8] = 0x80;
        assert!(matches!(
            WeightedCoreset::<Euclidean, f64>::from_bytes(&restamp(bad)).unwrap_err(),
            PersistError::Malformed { what: "flags" }
        ));

        // Trailing garbage after the checksum.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(WeightedCoreset::<Euclidean, f64>::from_bytes(&bad).is_err());

        // Non-finite certificate behind a fresh checksum.
        let radius_at = header - 8;
        let mut bad = bytes;
        bad[radius_at..radius_at + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(
            WeightedCoreset::<Euclidean, f64>::from_bytes(&restamp(bad)).unwrap_err(),
            PersistError::Malformed {
                what: "construction radius"
            }
        ));
    }

    #[test]
    fn partial_coresets_round_trip_with_provenance() {
        use kcenter_mapreduce::{FaultConfig, FaultKind, FaultPlan, FaultPolicy, ScheduledFault};
        let space = cloud(2_000, 42);
        let plan = FaultPlan::explicit(
            (0..3)
                .map(|attempt| ScheduledFault {
                    round: 0,
                    machine: 2,
                    attempt,
                    kind: FaultKind::Crash,
                })
                .collect(),
        );
        let faults = FaultConfig::new(plan)
            .with_policy(FaultPolicy::with_max_attempts(3))
            .with_degrade(true);
        let coreset = GonzalezCoresetConfig::new(64)
            .with_machines(10)
            .with_faults(faults)
            .build(&space)
            .unwrap();
        assert!(coreset.is_partial());
        let loaded = WeightedCoreset::<Euclidean, f64>::from_bytes(&coreset.to_bytes()).unwrap();
        assert_eq!(loaded.coverage(), coreset.coverage());
        assert!(loaded.is_partial());
        assert_eq!(loaded.to_bytes(), coreset.to_bytes());
    }

    #[test]
    fn f32_and_seeded_coresets_round_trip() {
        use crate::eim::EimConfig;
        use kcenter_metric::FlatPoints;
        let pts = cloud(800, 43).points();
        let space32: VecSpace<Euclidean, f32> =
            VecSpace::from_flat(FlatPoints::<f32>::from_points(&pts));
        let c32 = GonzalezCoresetConfig::new(24).build(&space32).unwrap();
        let loaded = WeightedCoreset::<Euclidean, f32>::from_bytes(&c32.to_bytes()).unwrap();
        assert_eq!(loaded.space().flat().coords(), c32.space().flat().coords());
        assert_eq!(loaded.precision_name(), "f32");
        assert_eq!(loaded.to_bytes(), c32.to_bytes());

        let eim = EimConfig::new(2)
            .with_epsilon(0.13)
            .with_machines(4)
            .with_seed(7)
            .build_coreset(&cloud(1_000, 44))
            .unwrap();
        let loaded = WeightedCoreset::<Euclidean, f64>::from_bytes(&eim.to_bytes()).unwrap();
        assert_eq!(loaded.seed(), Some(7));
        assert_eq!(loaded.builder(), CoresetBuilder::Eim);
        assert_eq!(loaded.to_bytes(), eim.to_bytes());
    }
}
