//! Solution evaluation: covering radius, assignments, and cluster sizes.
//!
//! The paper reports the k-center objective (which it calls the *solution
//! value*): the maximum, over all points of the instance, of the distance to
//! the nearest chosen center.  These scans are linear in `n · |centers|` and
//! are the single most common operation in the experiment harness, so a
//! rayon-parallel implementation is provided and used by default above a
//! small size threshold.
//!
//! # Certification in `f64`
//!
//! These are the *verifiers*: every number they produce is reported as a
//! quality result, so — unlike the selection scans, which may run at a
//! reduced storage precision — they scan in **certification space**
//! (`wide_cmp_*`: squared distances for Euclidean spaces, accumulated in
//! `f64` from the stored rows; see `kcenter_metric::space`).  On an `f32`
//! space the covering radius is therefore the exact `f64` max-of-mins over
//! the rounded coordinates: storage precision perturbs the *input* (one
//! `2^-24` relative rounding per coordinate) but never the evaluation
//! arithmetic, and per `(seed, precision)` pair the result is bit-for-bit
//! deterministic.
//!
//! The scans still prune with the early-exit
//! `wide_cmp_distance_to_set_bounded`: while computing a max-of-mins, a
//! point whose running minimum has already dropped to the current maximum
//! can stop scanning centers — it cannot raise the maximum.  The winner is
//! converted back to a real distance once at the end, so exactly one `sqrt`
//! is taken per evaluation.

use kcenter_metric::grid::{self, SpatialGrid};
use kcenter_metric::{MetricSpace, PointId, Scalar};
use rayon::prelude::*;

/// Below this many (point, center) pairs the sequential scan is used; above
/// it the rayon-parallel scan is used.
const PARALLEL_THRESHOLD: usize = 1 << 14;

/// The covering radius of `centers` over the entire space: the paper's
/// solution value.  Returns `0.0` for an empty space and `f64::INFINITY`
/// when `centers` is empty but the space is not.
pub fn covering_radius<S: MetricSpace + ?Sized>(space: &S, centers: &[PointId]) -> f64 {
    let ids: Vec<PointId> = (0..space.len()).collect();
    covering_radius_subset(space, &ids, centers)
}

/// Max-of-mins over one contiguous block of points, in certification
/// (`f64`-accumulated) space, pruning each point's center scan at the
/// block's running maximum.
fn wide_radius_block<S: MetricSpace + ?Sized>(
    space: &S,
    block: &[PointId],
    centers: &[PointId],
) -> f64 {
    let mut max = f64::NEG_INFINITY;
    for &p in block {
        let d = space.wide_cmp_distance_to_set_bounded(p, centers, max);
        if d > max {
            max = d;
        }
    }
    max
}

/// The covering radius of `centers` over an explicit subset of the space.
/// Used by the multi-round algorithms, whose intermediate rounds only cover
/// the points assigned to one machine.
pub fn covering_radius_subset<S: MetricSpace + ?Sized>(
    space: &S,
    subset: &[PointId],
    centers: &[PointId],
) -> f64 {
    if subset.is_empty() {
        return 0.0;
    }
    if centers.is_empty() {
        return f64::INFINITY;
    }
    let work = subset.len().saturating_mul(centers.len());
    let wide_max = if work >= PARALLEL_THRESHOLD {
        subset
            .par_chunks(1 << 12)
            .map(|block| wide_radius_block(space, block, centers))
            .reduce(|| f64::NEG_INFINITY, f64::max)
    } else {
        wide_radius_block(space, subset, centers)
    };
    space.wide_cmp_to_distance(wide_max.max(0.0))
}

/// Weighted max-of-mins over one contiguous block of `(point, weight)`
/// pairs, in certification space.  A zero weight means "this row represents
/// no source points" (it can arise when weighted summaries are merged), so
/// such rows impose no coverage obligation and are skipped.
fn wide_weighted_radius_block<S: MetricSpace + ?Sized>(
    space: &S,
    block: &[PointId],
    block_weights: &[u64],
    centers: &[PointId],
) -> f64 {
    let mut max = f64::NEG_INFINITY;
    for (&p, &w) in block.iter().zip(block_weights) {
        if w == 0 {
            continue;
        }
        let d = space.wide_cmp_distance_to_set_bounded(p, centers, max);
        if d > max {
            max = d;
        }
    }
    max
}

/// The weighted covering radius of `centers` over the whole space:
/// `weights[i]` is the multiplicity of point `i` (the number of source
/// points a coreset representative stands for).  For the k-center
/// (max-radius) objective a positive multiplicity does not move the
/// maximum, so this equals the unweighted covering radius over the
/// positive-weight support — the weights matter exactly where a summary
/// row covers nothing (`weights[i] == 0`), which drops the row from the
/// obligation set.  Runs in certification space (`wide_cmp_*`, `f64`
/// accumulation) like [`covering_radius`].
///
/// # Panics
///
/// Panics if `weights` and the space disagree on length.
pub fn weighted_covering_radius<S: MetricSpace + ?Sized>(
    space: &S,
    weights: &[u64],
    centers: &[PointId],
) -> f64 {
    let ids: Vec<PointId> = (0..space.len()).collect();
    weighted_covering_radius_subset(space, &ids, weights, centers)
}

/// The weighted covering radius over an explicit subset: `weights[i]` is
/// the multiplicity of `subset[i]`.  See [`weighted_covering_radius`].
///
/// # Panics
///
/// Panics if `subset` and `weights` have different lengths.
pub fn weighted_covering_radius_subset<S: MetricSpace + ?Sized>(
    space: &S,
    subset: &[PointId],
    weights: &[u64],
    centers: &[PointId],
) -> f64 {
    assert_eq!(
        subset.len(),
        weights.len(),
        "subset/weights length mismatch"
    );
    if subset.is_empty() || weights.iter().all(|&w| w == 0) {
        return 0.0;
    }
    if centers.is_empty() {
        return f64::INFINITY;
    }
    let work = subset.len().saturating_mul(centers.len());
    let wide_max = if work >= PARALLEL_THRESHOLD {
        subset
            .par_chunks(1 << 12)
            .zip(weights.par_chunks(1 << 12))
            .map(|(block, block_weights)| {
                wide_weighted_radius_block(space, block, block_weights, centers)
            })
            .reduce(|| f64::NEG_INFINITY, f64::max)
    } else {
        wide_weighted_radius_block(space, subset, weights, centers)
    };
    space.wide_cmp_to_distance(wide_max.max(0.0))
}

/// Total source-point weight assigned to each center, given an assignment
/// produced by [`assign`] and the per-point multiplicities: the weighted
/// analogue of [`cluster_sizes`].  This is how a coreset solution reports
/// full-data cluster populations without rescanning the source points.
pub fn weighted_cluster_sizes(
    assignment: &[usize],
    weights: &[u64],
    num_centers: usize,
) -> Vec<u64> {
    assert_eq!(
        assignment.len(),
        weights.len(),
        "assignment/weights length mismatch"
    );
    let mut sizes = vec![0u64; num_centers];
    for (&a, &w) in assignment.iter().zip(weights) {
        assert!(a < num_centers, "assignment index out of range");
        sizes[a] += w;
    }
    sizes
}

/// Whether every point of the space lies within `radius` of some center —
/// the coverage check behind the approximation-factor probes.  Runs in
/// certification space (`f64`-accumulated regardless of storage precision)
/// with the early-exit scan: each point stops at the first center within
/// `radius`.
pub fn covered_within<S: MetricSpace + ?Sized>(
    space: &S,
    centers: &[PointId],
    radius: f64,
) -> bool {
    if space.len() == 0 {
        return true;
    }
    if centers.is_empty() {
        return false;
    }
    let wide_radius = space.distance_to_wide_cmp(radius);
    let check =
        |p: PointId| space.wide_cmp_distance_to_set_bounded(p, centers, wide_radius) <= wide_radius;
    if space.len().saturating_mul(centers.len()) >= PARALLEL_THRESHOLD {
        // `all` terminates early across workers on the first uncovered point.
        (0..space.len()).into_par_iter().all(check)
    } else {
        (0..space.len()).all(check)
    }
}

/// Assigns every point of the space to its nearest center, breaking ties by
/// the smaller center position (consistent with the paper's "breaking ties
/// arbitrarily but consistently").  Returns, for each point, the index into
/// `centers` of its assigned center.
///
/// # Panics
///
/// Panics if `centers` is empty while the space is not.
pub fn assign<S: MetricSpace + ?Sized>(space: &S, centers: &[PointId]) -> Vec<usize> {
    if space.len() == 0 {
        return Vec::new();
    }
    assert!(
        !centers.is_empty(),
        "cannot assign points to an empty center set"
    );
    // Argmin is order-invariant, so the scan runs in comparison space (at
    // storage precision — assignment is a selection, not a reported
    // distance; ties from coarser rounding still resolve to the smaller
    // center position, deterministically).  The grid arm buckets the
    // centers and probes cell rings per point — bit-identical to the dense
    // loop (see `kcenter_metric::grid`) — when the `--assign` dispatch and
    // the space allow it.
    let dim = space.coord_row(centers[0]).map_or(0, <[S::Cmp]>::len);
    let shape = grid::ScanShape {
        points: space.len(),
        candidates: centers.len(),
        dim,
    };
    let center_grid = if grid::select_mode(shape) == grid::AssignMode::Grid {
        SpatialGrid::build(space, centers, grid::NEAREST_OCCUPANCY)
    } else {
        None
    };
    grid::note_scan(if center_grid.is_some() {
        grid::AssignMode::Grid
    } else {
        grid::AssignMode::Dense
    });
    let assign_one = |p: PointId| -> usize {
        if let Some(g) = &center_grid {
            return g.nearest_member(space, centers, p).0;
        }
        let mut best = 0usize;
        let mut best_d = <S::Cmp as Scalar>::INFINITY;
        for (ci, &c) in centers.iter().enumerate() {
            let d = space.cmp_distance(p, c);
            if d < best_d {
                best_d = d;
                best = ci;
            }
        }
        best
    };
    let work = space.len().saturating_mul(centers.len());
    if work >= PARALLEL_THRESHOLD {
        (0..space.len()).into_par_iter().map(assign_one).collect()
    } else {
        (0..space.len()).map(assign_one).collect()
    }
}

/// Number of points assigned to each center, given an assignment produced by
/// [`assign`].
pub fn cluster_sizes(assignment: &[usize], num_centers: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; num_centers];
    for &a in assignment {
        assert!(a < num_centers, "assignment index out of range");
        sizes[a] += 1;
    }
    sizes
}

/// The per-point distance to the nearest center, for all points — useful for
/// diagnostics and for the EIM distance cache tests.
pub fn distances_to_centers<S: MetricSpace + ?Sized>(space: &S, centers: &[PointId]) -> Vec<f64> {
    let ids: Vec<PointId> = (0..space.len()).collect();
    if centers.is_empty() {
        return vec![f64::INFINITY; ids.len()];
    }
    // Min in certification space (these distances are reported), one
    // conversion per point at the end.
    let one = |p: PointId| space.wide_cmp_to_distance(space.wide_cmp_distance_to_set(p, centers));
    if ids.len().saturating_mul(centers.len()) >= PARALLEL_THRESHOLD {
        ids.par_iter().map(|&p| one(p)).collect()
    } else {
        ids.iter().map(|&p| one(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::{Point, VecSpace};

    fn line(n: usize) -> VecSpace {
        VecSpace::new((0..n).map(|i| Point::xy(i as f64, 0.0)).collect())
    }

    #[test]
    fn covering_radius_of_line_with_endpoints_as_centers() {
        let s = line(11);
        let r = covering_radius(&s, &[0, 10]);
        assert!((r - 5.0).abs() < 1e-12);
    }

    #[test]
    fn covering_radius_zero_when_every_point_is_a_center() {
        let s = line(5);
        let r = covering_radius(&s, &[0, 1, 2, 3, 4]);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn covering_radius_empty_center_set_is_infinite() {
        let s = line(3);
        assert!(covering_radius(&s, &[]).is_infinite());
    }

    #[test]
    fn covering_radius_of_empty_space_is_zero() {
        let s = VecSpace::new(vec![]);
        assert_eq!(covering_radius(&s, &[]), 0.0);
    }

    #[test]
    fn covering_radius_subset_only_counts_subset_points() {
        let s = line(100);
        // Center at 0, subset only near it: the far points do not count.
        let r = covering_radius_subset(&s, &[0, 1, 2], &[0]);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_and_sequential_paths_agree() {
        // Large enough to cross PARALLEL_THRESHOLD with 3 centers.
        let s = line(20_000);
        let centers = vec![0, 10_000, 19_999];
        let par = covering_radius(&s, &centers);
        let seq: f64 = (0..20_000)
            .map(|p| s.distance_to_set(p, &centers))
            .fold(0.0, f64::max);
        assert!((par - seq).abs() < 1e-9);
    }

    #[test]
    fn weighted_covering_radius_with_unit_weights_matches_unweighted() {
        let s = line(11);
        let centers = vec![0, 10];
        let ones = vec![1u64; 11];
        assert_eq!(
            weighted_covering_radius(&s, &ones, &centers),
            covering_radius(&s, &centers)
        );
    }

    #[test]
    fn zero_weight_points_impose_no_coverage_obligation() {
        let s = line(11);
        // Point 10 is far from the single center but carries weight 0.
        let mut w = vec![1u64; 11];
        w[10] = 0;
        w[9] = 0;
        let r = weighted_covering_radius(&s, &w, &[0]);
        assert!((r - 8.0).abs() < 1e-12);
        // All-zero weights mean nothing needs covering at all.
        assert_eq!(weighted_covering_radius(&s, &[0u64; 11], &[]), 0.0);
    }

    #[test]
    fn weighted_covering_radius_empty_center_set_is_infinite() {
        let s = line(3);
        assert!(weighted_covering_radius(&s, &[1, 1, 1], &[]).is_infinite());
    }

    #[test]
    fn weighted_parallel_and_sequential_paths_agree() {
        let s = line(20_000);
        let centers = vec![0, 10_000, 19_999];
        let mut w = vec![1u64; 20_000];
        for i in (0..20_000).step_by(7) {
            w[i] = 0;
        }
        let par = weighted_covering_radius(&s, &w, &centers);
        let seq: f64 = (0..20_000)
            .filter(|i| w[*i] > 0)
            .map(|p| s.distance_to_set(p, &centers))
            .fold(0.0, f64::max);
        assert!((par - seq).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "subset/weights length mismatch")]
    fn weighted_covering_radius_rejects_length_mismatch() {
        weighted_covering_radius(&line(3), &[1, 1], &[0]);
    }

    #[test]
    fn weighted_cluster_sizes_sums_multiplicities() {
        let sizes = weighted_cluster_sizes(&[0, 0, 1, 2, 1, 0], &[5, 1, 2, 7, 0, 3], 3);
        assert_eq!(sizes, vec![9, 2, 7]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn weighted_cluster_sizes_rejects_bad_assignment() {
        weighted_cluster_sizes(&[0, 5], &[1, 1], 2);
    }

    #[test]
    fn assign_picks_nearest_center_with_consistent_ties() {
        let s = line(5);
        let a = assign(&s, &[0, 4]);
        assert_eq!(a, vec![0, 0, 0, 1, 1]); // point 2 ties -> smaller index 0
    }

    #[test]
    #[should_panic(expected = "empty center set")]
    fn assign_rejects_empty_centers() {
        assign(&line(3), &[]);
    }

    #[test]
    fn assign_of_empty_space_is_empty() {
        let s = VecSpace::new(vec![]);
        assert!(assign(&s, &[]).is_empty());
    }

    #[test]
    fn cluster_sizes_counts_assignments() {
        let sizes = cluster_sizes(&[0, 0, 1, 2, 1, 0], 3);
        assert_eq!(sizes, vec![3, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cluster_sizes_rejects_bad_assignment() {
        cluster_sizes(&[0, 5], 2);
    }

    #[test]
    fn distances_to_centers_matches_covering_radius() {
        let s = line(50);
        let centers = vec![10, 40];
        let d = distances_to_centers(&s, &centers);
        let max = d.iter().copied().fold(0.0, f64::max);
        assert!((max - covering_radius(&s, &centers)).abs() < 1e-12);
        assert_eq!(d.len(), 50);
        assert_eq!(d[10], 0.0);
    }

    #[test]
    fn distances_to_centers_with_no_centers_is_infinite() {
        let d = distances_to_centers(&line(3), &[]);
        assert!(d.iter().all(|x| x.is_infinite()));
    }
}
