//! The Hochbaum–Shmoys bottleneck 2-approximation (1985).
//!
//! The paper's future-work section asks how MRG would behave with an
//! alternative sequential sub-procedure "such as that of Hochbaum &
//! Shmoys"; this module provides it.  The classic scheme binary-searches
//! over the sorted pairwise distances; for a candidate radius `r` it greedily
//! picks an uncovered point as a center and covers everything within `2r`.
//! If at most `k` centers suffice, `r` is feasible; the smallest feasible
//! `r` is at most `OPT`, and the produced centers then cover every point
//! within `2·OPT`.
//!
//! Unlike GON this needs the full sorted pairwise distance list, so it is
//! `O(N² log N)` and only sensible for the moderate point counts that occur
//! in final aggregation rounds — which is precisely where it is offered as
//! an alternative to GON.

use crate::error::KCenterError;
use crate::evaluate::covering_radius;
use crate::solution::KCenterSolution;
use kcenter_metric::{MetricSpace, PointId};
use serde::{Deserialize, Serialize};

/// Configuration of the Hochbaum–Shmoys solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HochbaumShmoysConfig {
    /// Number of centers to select.
    pub k: usize,
}

impl HochbaumShmoysConfig {
    /// Creates a configuration selecting `k` centers.
    pub fn new(k: usize) -> Self {
        Self { k }
    }

    /// Runs the algorithm on the whole space.
    pub fn solve<S: MetricSpace + ?Sized>(
        &self,
        space: &S,
    ) -> Result<KCenterSolution, KCenterError> {
        if space.len() == 0 {
            return Err(KCenterError::EmptyInput);
        }
        if self.k == 0 {
            return Err(KCenterError::ZeroK);
        }
        if !space.is_metric() {
            return Err(KCenterError::NotAMetric {
                distance: space.distance_name(),
            });
        }
        let ids: Vec<PointId> = (0..space.len()).collect();
        let centers = select_centers(space, &ids, self.k);
        let radius = covering_radius(space, &centers);
        Ok(KCenterSolution::new(self.k, centers, radius))
    }
}

/// Greedy covering test: returns the centers chosen when every center covers
/// all points within `threshold`, or `None` if more than `k` centers would
/// be needed.
fn greedy_cover<S: MetricSpace + ?Sized>(
    space: &S,
    subset: &[PointId],
    k: usize,
    threshold: f64,
) -> Option<Vec<PointId>> {
    let mut covered = vec![false; subset.len()];
    let mut centers = Vec::with_capacity(k);
    for i in 0..subset.len() {
        if covered[i] {
            continue;
        }
        if centers.len() == k {
            return None;
        }
        let c = subset[i];
        centers.push(c);
        for (j, &p) in subset.iter().enumerate() {
            if !covered[j] && space.distance(p, c) <= threshold {
                covered[j] = true;
            }
        }
    }
    Some(centers)
}

/// Selects at most `k` centers from `subset` using the bottleneck binary
/// search.  This is the routine exposed to MRG/EIM as an alternative
/// final-round sub-procedure.
pub fn select_centers<S: MetricSpace + ?Sized>(
    space: &S,
    subset: &[PointId],
    k: usize,
) -> Vec<PointId> {
    if subset.is_empty() || k == 0 {
        return Vec::new();
    }
    if k >= subset.len() {
        return subset.to_vec();
    }

    // Candidate thresholds: all pairwise distances within the subset.
    // The optimal radius is one of them, and the greedy cover with
    // threshold 2r uses at most k centers whenever r >= OPT.
    let mut candidates: Vec<f64> = Vec::with_capacity(subset.len() * (subset.len() - 1) / 2);
    for (i, &a) in subset.iter().enumerate() {
        for &b in &subset[i + 1..] {
            candidates.push(space.distance(a, b));
        }
    }
    candidates.sort_by(f64::total_cmp);
    candidates.dedup_by(|a, b| (*a - *b).abs() < f64::EPSILON);

    // Binary search for the smallest candidate r whose doubled threshold
    // admits a cover with at most k centers.
    let mut lo = 0usize;
    let mut hi = candidates.len() - 1;
    let mut best: Option<Vec<PointId>> = None;
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        let r = candidates[mid];
        match greedy_cover(space, subset, k, 2.0 * r) {
            Some(centers) => {
                best = Some(centers);
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
            None => {
                lo = mid + 1;
            }
        }
    }
    // The largest candidate (the subset diameter) always admits a cover with
    // a single center, so `best` is always set by the time we get here.
    best.unwrap_or_else(|| vec![subset[0]])
}

/// Selects at most `k` centers from a **weighted** subset: `weights[i]` is
/// the multiplicity of `subset[i]`.
///
/// The bottleneck search minimises the *maximum* covering distance, and a
/// positive multiplicity cannot move a maximum, so the candidate radii, the
/// greedy covering counts and the binary search are exactly those of the
/// unweighted instance over the positive-weight support — all-positive (in
/// particular all-unit) weights reproduce [`select_centers`] bit-for-bit.
/// Zero-weight rows drop out entirely: they neither need covering (they
/// stand for no source points) nor become centers, and their pairwise
/// distances do not enter the candidate-threshold list.
///
/// # Panics
///
/// Panics if `subset` and `weights` have different lengths.
pub fn select_centers_weighted<S: MetricSpace + ?Sized>(
    space: &S,
    subset: &[PointId],
    weights: &[u64],
    k: usize,
) -> Vec<PointId> {
    assert_eq!(
        subset.len(),
        weights.len(),
        "subset/weights length mismatch"
    );
    if weights.iter().all(|&w| w > 0) {
        return select_centers(space, subset, k);
    }
    let support: Vec<PointId> = subset
        .iter()
        .zip(weights)
        .filter(|&(_, &w)| w > 0)
        .map(|(&p, _)| p)
        .collect();
    select_centers(space, &support, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::optimal_radius;
    use crate::gonzalez::GonzalezConfig;
    use kcenter_metric::{Point, SquaredEuclidean, VecSpace};

    fn grid(n_side: usize) -> VecSpace {
        let mut pts = Vec::new();
        for x in 0..n_side {
            for y in 0..n_side {
                pts.push(Point::xy(x as f64, y as f64));
            }
        }
        VecSpace::new(pts)
    }

    #[test]
    fn two_obvious_clusters_are_found() {
        let s = VecSpace::new(vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(50.0, 0.0),
            Point::xy(51.0, 0.0),
        ]);
        let sol = HochbaumShmoysConfig::new(2).solve(&s).unwrap();
        assert_eq!(sol.centers.len(), 2);
        assert!(sol.radius <= 2.0);
    }

    #[test]
    fn two_approximation_holds_on_small_instances() {
        for seed in 0..5u64 {
            let pts: Vec<Point> = (0..12)
                .map(|i| {
                    let v = seed.wrapping_mul(104_729).wrapping_add(i as u64 * 7919);
                    Point::xy((v % 101) as f64, ((v / 101) % 103) as f64)
                })
                .collect();
            let space = VecSpace::new(pts);
            for k in 1..=4 {
                let sol = HochbaumShmoysConfig::new(k).solve(&space).unwrap();
                let opt = optimal_radius(&space, k).unwrap();
                assert!(
                    sol.radius <= 2.0 * opt + 1e-9,
                    "HS exceeded 2*OPT: {} > 2*{} (seed {seed}, k {k})",
                    sol.radius,
                    opt
                );
            }
        }
    }

    #[test]
    fn comparable_to_gonzalez_on_a_grid() {
        let s = grid(6);
        for k in [1usize, 2, 4, 8] {
            let hs = HochbaumShmoysConfig::new(k).solve(&s).unwrap();
            let gon = GonzalezConfig::new(k).solve(&s).unwrap();
            // Both are 2-approximations, so each is within a factor 4 of the
            // other; in practice they are much closer.
            assert!(hs.radius <= 4.0 * gon.radius + 1e-9);
            assert!(gon.radius <= 4.0 * hs.radius + 1e-9);
        }
    }

    #[test]
    fn k_at_least_n_uses_every_point() {
        let s = grid(2);
        let sol = HochbaumShmoysConfig::new(10).solve(&s).unwrap();
        assert_eq!(sol.centers.len(), 4);
        assert_eq!(sol.radius, 0.0);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let empty = VecSpace::new(vec![]);
        assert_eq!(
            HochbaumShmoysConfig::new(1).solve(&empty).unwrap_err(),
            KCenterError::EmptyInput
        );
        assert_eq!(
            HochbaumShmoysConfig::new(0).solve(&grid(2)).unwrap_err(),
            KCenterError::ZeroK
        );
        let sq = VecSpace::with_distance(
            vec![Point::xy(0.0, 0.0), Point::xy(1.0, 1.0)],
            SquaredEuclidean,
        );
        assert!(matches!(
            HochbaumShmoysConfig::new(1).solve(&sq).unwrap_err(),
            KCenterError::NotAMetric { .. }
        ));
    }

    #[test]
    fn select_centers_respects_subset_and_edge_cases() {
        let s = grid(3);
        assert!(select_centers(&s, &[], 2).is_empty());
        assert!(select_centers(&s, &[0, 1], 0).is_empty());
        assert_eq!(select_centers(&s, &[2, 5], 4), vec![2, 5]);
        let chosen = select_centers(&s, &[0, 1, 2], 1);
        assert_eq!(chosen.len(), 1);
        assert!([0usize, 1, 2].contains(&chosen[0]));
    }

    #[test]
    fn weighted_selection_matches_unweighted_on_positive_weights() {
        let s = grid(4);
        let subset: Vec<usize> = (0..s.len()).collect();
        let ones = vec![1u64; subset.len()];
        let varied: Vec<u64> = (0..subset.len() as u64).map(|i| i % 5 + 1).collect();
        let plain = select_centers(&s, &subset, 3);
        assert_eq!(select_centers_weighted(&s, &subset, &ones, 3), plain);
        assert_eq!(select_centers_weighted(&s, &subset, &varied, 3), plain);
    }

    #[test]
    fn weighted_selection_ignores_zero_weight_rows() {
        let s = VecSpace::new(vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(100.0, 0.0), // weight 0: an empty summary row
        ]);
        let centers = select_centers_weighted(&s, &[0, 1, 2], &[1, 1, 0], 1);
        assert_eq!(centers.len(), 1);
        assert!(centers[0] < 2, "zero-weight row became a center");
    }

    #[test]
    fn identical_points_collapse_to_one_center() {
        let s = VecSpace::new(vec![Point::xy(1.0, 1.0); 5]);
        let sol = HochbaumShmoysConfig::new(2).solve(&s).unwrap();
        assert_eq!(sol.radius, 0.0);
        assert!(sol.centers.len() <= 2);
    }
}
