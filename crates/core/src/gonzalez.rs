//! GON — Gonzalez's greedy farthest-point 2-approximation (1985).
//!
//! The algorithm picks an arbitrary first center, then repeatedly promotes
//! the point farthest from the current center set until `k` centers have
//! been chosen.  With a maintained "distance to nearest chosen center"
//! array each iteration is a single linear scan, giving the `O(k · N)`
//! runtime the paper's analysis uses (Section 5.1).
//!
//! Both the paper's sequential baseline and the per-reducer sub-procedure of
//! MRG and EIM are this routine; the only difference is whether the inner
//! scan runs sequentially or through rayon (the baseline on a million points
//! benefits from the parallel scan, a reducer working on `n/m` points does
//! not need it).

use crate::error::KCenterError;
use crate::evaluate::covering_radius;
use crate::solution::KCenterSolution;
use kcenter_metric::grid::{self, GridRelaxer, RelaxGridCache};
use kcenter_metric::space::is_identity_subset;
use kcenter_metric::{MetricSpace, PointId, Scalar};
use serde::{Deserialize, Serialize};

/// How GON chooses its (arbitrary) first center.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FirstCenter {
    /// Use the point at this position within the subset being clustered
    /// (position 0 by default — the paper's implementation style).
    Position(usize),
    /// Derive the position pseudo-randomly from this seed, so repeated runs
    /// explore different seedings (used when averaging over runs).
    Seeded(u64),
}

impl Default for FirstCenter {
    fn default() -> Self {
        FirstCenter::Position(0)
    }
}

impl FirstCenter {
    /// Resolves the first-center choice to a position in `0..len`.
    pub fn resolve(&self, len: usize) -> usize {
        assert!(len > 0, "cannot pick a first center from an empty subset");
        match *self {
            FirstCenter::Position(p) => p % len,
            FirstCenter::Seeded(seed) => {
                // SplitMix64 scramble; cheap and deterministic.
                let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) as usize % len
            }
        }
    }
}

/// Configuration of the sequential GON baseline.
///
/// ```
/// use kcenter_core::GonzalezConfig;
/// use kcenter_metric::{Point, VecSpace};
///
/// let space = VecSpace::new(vec![
///     Point::xy(0.0, 0.0), Point::xy(1.0, 0.0),
///     Point::xy(50.0, 0.0), Point::xy(51.0, 0.0),
/// ]);
/// let solution = GonzalezConfig::new(2).solve(&space).unwrap();
/// assert_eq!(solution.centers.len(), 2);
/// assert!(solution.radius <= 1.0 + 1e-9); // one center per obvious pair
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GonzalezConfig {
    /// Number of centers to select.
    pub k: usize,
    /// First-center policy.
    pub first_center: FirstCenter,
    /// Whether the inner farthest-point scan may use rayon.  The sequential
    /// baseline GON in the paper is single-threaded; enabling this gives the
    /// "parallel inner loop" ablation discussed in `DESIGN.md` §8.
    pub parallel_scan: bool,
}

impl GonzalezConfig {
    /// GON with `k` centers, first center at position 0, sequential scan.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            first_center: FirstCenter::default(),
            parallel_scan: false,
        }
    }

    /// Sets the first-center policy.
    pub fn with_first_center(mut self, first: FirstCenter) -> Self {
        self.first_center = first;
        self
    }

    /// Enables or disables the rayon-parallel inner scan.
    pub fn with_parallel_scan(mut self, parallel: bool) -> Self {
        self.parallel_scan = parallel;
        self
    }

    /// Runs GON on the whole space and evaluates the covering radius over
    /// the whole space.
    pub fn solve<S: MetricSpace + ?Sized>(
        &self,
        space: &S,
    ) -> Result<KCenterSolution, KCenterError> {
        if space.len() == 0 {
            return Err(KCenterError::EmptyInput);
        }
        if self.k == 0 {
            return Err(KCenterError::ZeroK);
        }
        if !space.is_metric() {
            return Err(KCenterError::NotAMetric {
                distance: space.distance_name(),
            });
        }
        let ids: Vec<PointId> = (0..space.len()).collect();
        let centers = select_centers(space, &ids, self.k, self.first_center, self.parallel_scan);
        let radius = covering_radius(space, &centers);
        Ok(KCenterSolution::new(self.k, centers, radius))
    }
}

/// Runs the greedy farthest-point selection on an explicit subset of the
/// space and returns the chosen centers (as global point ids).
///
/// This is the reusable inner routine: MRG's reducers call it on their
/// partitions, EIM's final round calls it on the sample, and
/// [`GonzalezConfig::solve`] calls it on the full space.
///
/// If `k >= subset.len()` every subset point becomes a center.
pub fn select_centers<S: MetricSpace + ?Sized>(
    space: &S,
    subset: &[PointId],
    k: usize,
    first: FirstCenter,
    parallel_scan: bool,
) -> Vec<PointId> {
    select_centers_cached(space, subset, k, first, parallel_scan, None)
}

/// [`select_centers`] with an optional build-once cache for the relax
/// grid's bucketing.
///
/// A `(k, φ)` sweep re-selects centers many times over the *same* subset
/// (a coreset's representatives); with a [`RelaxGridCache`] the
/// [`SpatialGrid`](kcenter_metric::grid::SpatialGrid) is built on the
/// first grid-mode selection and every later one pays only the cheap
/// relax-state reset.  The cache must belong to this exact `(space,
/// subset)` pair — keying is the caller's responsibility — and results are
/// bit-identical with or without it.  The grid-vs-dense crossover still
/// runs per selection (it depends on `k`), so the cache is consulted only
/// when the grid arm is selected.
pub fn select_centers_cached<S: MetricSpace + ?Sized>(
    space: &S,
    subset: &[PointId],
    k: usize,
    first: FirstCenter,
    parallel_scan: bool,
    relax_cache: Option<&RelaxGridCache>,
) -> Vec<PointId> {
    if subset.is_empty() || k == 0 {
        return Vec::new();
    }
    if k >= subset.len() {
        return subset.to_vec();
    }

    let mut centers = Vec::with_capacity(k);
    let first_pos = first.resolve(subset.len());
    let first_center = subset[first_pos];
    centers.push(first_center);

    // The whole selection runs in *comparison space* (squared distances for
    // Euclidean spaces — see `kcenter_metric::space`), which for a
    // reduced-precision `VecSpace` also means *storage precision*: an `f32`
    // space relaxes an `f32` nearest-center array over `f32` rows, halving
    // the scan bandwidth.  Farthest-point selection only needs the ordering,
    // so no `sqrt` is ever taken here and no `f64` refinement is needed —
    // the certified covering radius is recomputed in `f64` afterwards.
    // Each iteration is ONE fused pass (`relax_nearest_max`): relax every
    // point's nearest-center entry against the newest center and track the
    // farthest survivor in the same walk over the flat rows.
    let parallel = parallel_scan && subset.len() >= PARALLEL_SCAN_THRESHOLD;
    // Detecting the full-space case once lets every iteration stream rows
    // without per-point id loads (and without re-checking per call).
    let identity = is_identity_subset(subset, space.len());
    // Grid arm: bucket the subset once and serve every relax pass from the
    // occupied-cell sweep.  `select_mode` applies the `--assign` pin or the
    // measured crossover; the build itself refuses incompatible spaces
    // (non-Euclidean surrogate, no coordinates, all-duplicate data), in
    // which case the dense kernels below run as before.  Results are
    // bit-identical either way (see `kcenter_metric::grid`).
    let dim = space.coord_row(subset[0]).map_or(0, <[S::Cmp]>::len);
    let shape = grid::ScanShape {
        points: subset.len(),
        candidates: k,
        dim,
    };
    let mut relaxer = if grid::select_mode(shape) == grid::AssignMode::Grid {
        match relax_cache {
            Some(cache) => cache.get_or_build(space, subset),
            None => GridRelaxer::build(space, subset),
        }
    } else {
        None
    };
    grid::note_scan(if relaxer.is_some() {
        grid::AssignMode::Grid
    } else {
        grid::AssignMode::Dense
    });
    let mut nearest: Vec<S::Cmp> = vec![<S::Cmp as Scalar>::INFINITY; subset.len()];
    let mut newest = first_center;
    while centers.len() < k {
        let (far_pos, far_dist) = match relaxer.as_mut() {
            Some(relaxer) => relaxer.relax_max(space, subset, newest, &mut nearest),
            None => match (identity, parallel) {
                (true, true) => space.par_relax_all_max(newest, &mut nearest),
                (true, false) => space.relax_all_max(newest, &mut nearest),
                (false, true) => space.par_relax_nearest_max(subset, newest, &mut nearest),
                (false, false) => space.relax_nearest_max(subset, newest, &mut nearest),
            },
        };
        // All remaining points coincide with existing centers: no point in
        // adding duplicates (the covering radius is already 0).
        if far_dist <= <S::Cmp as Scalar>::ZERO {
            break;
        }
        newest = subset[far_pos];
        centers.push(newest);
    }
    centers
}

/// Runs the greedy farthest-point selection on a **weighted** subset:
/// `weights[i]` is the multiplicity of `subset[i]` (how many source points
/// a coreset representative stands for).
///
/// For the k-center (max-radius) objective a positive multiplicity never
/// moves the farthest point, so the traversal is exactly the unweighted one
/// over the positive-weight support: with all weights positive (in
/// particular, all-unit weights) the result is **bit-for-bit identical** to
/// [`select_centers`] at any storage precision.  Zero-weight entries —
/// summary rows that cover no source points — are excluded both as center
/// candidates and as coverage obligations.
///
/// # Panics
///
/// Panics if `subset` and `weights` have different lengths.
pub fn select_centers_weighted<S: MetricSpace + ?Sized>(
    space: &S,
    subset: &[PointId],
    weights: &[u64],
    k: usize,
    first: FirstCenter,
    parallel_scan: bool,
) -> Vec<PointId> {
    select_centers_weighted_cached(space, subset, weights, k, first, parallel_scan, None)
}

/// [`select_centers_weighted`] with an optional relax-grid cache (see
/// [`select_centers_cached`] for the contract).  The cache is keyed on the
/// **full** `subset`, so it is consulted only on the all-positive-weights
/// fast path; a zero-weight entry changes the member list the grid would
/// bucket, and that selection falls back to a fresh build.
///
/// # Panics
///
/// Panics if `subset` and `weights` have different lengths.
pub fn select_centers_weighted_cached<S: MetricSpace + ?Sized>(
    space: &S,
    subset: &[PointId],
    weights: &[u64],
    k: usize,
    first: FirstCenter,
    parallel_scan: bool,
    relax_cache: Option<&RelaxGridCache>,
) -> Vec<PointId> {
    assert_eq!(
        subset.len(),
        weights.len(),
        "subset/weights length mismatch"
    );
    if weights.iter().all(|&w| w > 0) {
        return select_centers_cached(space, subset, k, first, parallel_scan, relax_cache);
    }
    let support: Vec<PointId> = subset
        .iter()
        .zip(weights)
        .filter(|&(_, &w)| w > 0)
        .map(|(&p, _)| p)
        .collect();
    select_centers(space, &support, k, first, parallel_scan)
}

/// Minimum subset size before the parallel scan is worth the rayon overhead.
const PARALLEL_SCAN_THRESHOLD: usize = 1 << 13;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::optimal_radius;
    use kcenter_metric::{Point, SquaredEuclidean, VecSpace};

    fn two_clusters() -> VecSpace {
        // Two tight groups far apart.
        VecSpace::new(vec![
            Point::xy(0.0, 0.0),
            Point::xy(0.5, 0.0),
            Point::xy(0.0, 0.5),
            Point::xy(100.0, 100.0),
            Point::xy(100.5, 100.0),
            Point::xy(100.0, 100.5),
        ])
    }

    #[test]
    fn finds_one_center_per_obvious_cluster() {
        let space = two_clusters();
        let sol = GonzalezConfig::new(2).solve(&space).unwrap();
        assert_eq!(sol.centers.len(), 2);
        // One center from each group.
        let groups: Vec<usize> = sol
            .centers
            .iter()
            .map(|&c| if c < 3 { 0 } else { 1 })
            .collect();
        assert_ne!(groups[0], groups[1]);
        assert!(sol.radius < 1.0);
    }

    #[test]
    fn k1_picks_first_point_and_radius_is_farthest() {
        let space = two_clusters();
        let sol = GonzalezConfig::new(1).solve(&space).unwrap();
        assert_eq!(sol.centers, vec![0]);
        assert!(sol.radius > 100.0);
    }

    #[test]
    fn k_at_least_n_returns_all_points_with_zero_radius() {
        let space = two_clusters();
        let sol = GonzalezConfig::new(10).solve(&space).unwrap();
        assert_eq!(sol.centers.len(), 6);
        assert_eq!(sol.radius, 0.0);
    }

    #[test]
    fn rejects_empty_input_zero_k_and_non_metrics() {
        let empty = VecSpace::new(vec![]);
        assert_eq!(
            GonzalezConfig::new(2).solve(&empty).unwrap_err(),
            KCenterError::EmptyInput
        );

        let space = two_clusters();
        assert_eq!(
            GonzalezConfig::new(0).solve(&space).unwrap_err(),
            KCenterError::ZeroK
        );

        let sq = VecSpace::with_distance(
            vec![Point::xy(0.0, 0.0), Point::xy(1.0, 1.0)],
            SquaredEuclidean,
        );
        assert!(matches!(
            GonzalezConfig::new(1).solve(&sq).unwrap_err(),
            KCenterError::NotAMetric { .. }
        ));
    }

    #[test]
    fn duplicate_points_do_not_produce_duplicate_centers() {
        let space = VecSpace::new(vec![
            Point::xy(0.0, 0.0),
            Point::xy(0.0, 0.0),
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
        ]);
        let sol = GonzalezConfig::new(3).solve(&space).unwrap();
        // After covering both distinct locations the radius is 0 and the
        // greedy loop stops early rather than duplicating a center.
        assert!(sol.centers.len() <= 3);
        assert_eq!(sol.radius, 0.0);
    }

    #[test]
    fn first_center_policies_are_respected() {
        let space = two_clusters();
        let sol = GonzalezConfig::new(1)
            .with_first_center(FirstCenter::Position(4))
            .solve(&space)
            .unwrap();
        assert_eq!(sol.centers, vec![4]);

        // Seeded choice is deterministic.
        let a = FirstCenter::Seeded(7).resolve(6);
        let b = FirstCenter::Seeded(7).resolve(6);
        assert_eq!(a, b);
        assert!(a < 6);
        // Position wraps around.
        assert_eq!(FirstCenter::Position(8).resolve(6), 2);
    }

    #[test]
    #[should_panic(expected = "empty subset")]
    fn first_center_rejects_empty_subset() {
        FirstCenter::Position(0).resolve(0);
    }

    #[test]
    fn select_centers_on_subset_only_uses_subset_points() {
        let space = two_clusters();
        let subset = vec![3, 4, 5];
        let centers = select_centers(&space, &subset, 2, FirstCenter::default(), false);
        assert!(centers.iter().all(|c| subset.contains(c)));
        assert_eq!(centers.len(), 2);
    }

    #[test]
    fn weighted_selection_with_positive_weights_is_bit_identical() {
        let space = two_clusters();
        let subset: Vec<usize> = (0..space.len()).collect();
        let ones = vec![1u64; subset.len()];
        let heavy = vec![7u64, 1, 3, 2, 9, 1];
        let plain = select_centers(&space, &subset, 3, FirstCenter::default(), false);
        for weights in [&ones, &heavy] {
            let weighted =
                select_centers_weighted(&space, &subset, weights, 3, FirstCenter::default(), false);
            assert_eq!(weighted, plain);
        }
    }

    #[test]
    fn weighted_selection_skips_zero_weight_entries() {
        let space = two_clusters();
        let subset: Vec<usize> = (0..space.len()).collect();
        // The whole far cluster carries weight 0: it must neither seed nor
        // attract a center.
        let weights = vec![1u64, 1, 1, 0, 0, 0];
        let centers =
            select_centers_weighted(&space, &subset, &weights, 2, FirstCenter::default(), false);
        assert!(
            centers.iter().all(|&c| c < 3),
            "picked a zero-weight center"
        );
    }

    #[test]
    #[should_panic(expected = "subset/weights length mismatch")]
    fn weighted_selection_rejects_length_mismatch() {
        let space = two_clusters();
        select_centers_weighted(&space, &[0, 1], &[1], 1, FirstCenter::default(), false);
    }

    #[test]
    fn select_centers_edge_cases() {
        let space = two_clusters();
        assert!(select_centers(&space, &[], 3, FirstCenter::default(), false).is_empty());
        assert!(select_centers(&space, &[0, 1], 0, FirstCenter::default(), false).is_empty());
        assert_eq!(
            select_centers(&space, &[1, 2], 5, FirstCenter::default(), false),
            vec![1, 2]
        );
    }

    #[test]
    fn parallel_scan_matches_sequential_scan() {
        // A deterministic pseudo-random cloud large enough to engage the
        // parallel path.
        let pts: Vec<Point> = (0..9000)
            .map(|i| {
                let x = ((i as u64).wrapping_mul(2654435761) % 10_000) as f64 / 10.0;
                let y = ((i as u64).wrapping_mul(40503) % 10_000) as f64 / 10.0;
                Point::xy(x, y)
            })
            .collect();
        let space = VecSpace::new(pts);
        let seq = GonzalezConfig::new(8).solve(&space).unwrap();
        let par = GonzalezConfig::new(8)
            .with_parallel_scan(true)
            .solve(&space)
            .unwrap();
        assert_eq!(seq.centers, par.centers);
        assert_eq!(seq.radius, par.radius);
    }

    #[test]
    fn two_approximation_holds_on_small_instances() {
        // Deterministic small instances where brute force is feasible.
        for seed in 0..5u64 {
            let pts: Vec<Point> = (0..12)
                .map(|i| {
                    let v = seed.wrapping_mul(1_000_003).wrapping_add(i as u64 * 7919);
                    Point::xy((v % 97) as f64, ((v / 97) % 89) as f64)
                })
                .collect();
            let space = VecSpace::new(pts);
            for k in 1..=4 {
                let sol = GonzalezConfig::new(k).solve(&space).unwrap();
                let opt = optimal_radius(&space, k).unwrap();
                assert!(
                    sol.radius <= 2.0 * opt + 1e-9,
                    "GON exceeded 2*OPT: {} > 2*{} (seed {seed}, k {k})",
                    sol.radius,
                    opt
                );
            }
        }
    }
}
