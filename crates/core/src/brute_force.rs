//! Exact optimum by exhaustive search — only for tiny verification
//! instances.
//!
//! k-center is NP-hard, so no polynomial exact algorithm exists; the tests
//! nonetheless need ground truth to verify the approximation factors of GON
//! (2), MRG (4 in two rounds) and EIM (10 w.s.p.).  Enumerating every
//! k-subset of candidate centers is perfectly fine for `n ≤ ~20`.

use crate::error::KCenterError;
use crate::evaluate::covering_radius;
use crate::solution::KCenterSolution;
use kcenter_metric::{MetricSpace, PointId};

/// Hard cap on the instance size accepted by the brute-force solver; above
/// this the search space explodes and the call is almost certainly a bug.
pub const MAX_BRUTE_FORCE_POINTS: usize = 24;

/// Finds an optimal set of at most `k` centers by exhaustive enumeration.
///
/// # Errors
///
/// * [`KCenterError::EmptyInput`] / [`KCenterError::ZeroK`] as usual.
/// * [`KCenterError::InvalidParameter`] if the instance exceeds
///   [`MAX_BRUTE_FORCE_POINTS`].
pub fn optimal_solution<S: MetricSpace + ?Sized>(
    space: &S,
    k: usize,
) -> Result<KCenterSolution, KCenterError> {
    let n = space.len();
    if n == 0 {
        return Err(KCenterError::EmptyInput);
    }
    if k == 0 {
        return Err(KCenterError::ZeroK);
    }
    if n > MAX_BRUTE_FORCE_POINTS {
        return Err(KCenterError::InvalidParameter {
            name: "n",
            message: format!(
                "brute force supports at most {MAX_BRUTE_FORCE_POINTS} points, got {n}"
            ),
        });
    }
    if k >= n {
        let centers: Vec<PointId> = (0..n).collect();
        return Ok(KCenterSolution::new(k, centers, 0.0));
    }

    let mut best_radius = f64::INFINITY;
    let mut best_centers: Vec<PointId> = Vec::new();
    let mut current: Vec<PointId> = Vec::with_capacity(k);
    enumerate(
        space,
        k,
        0,
        &mut current,
        &mut best_radius,
        &mut best_centers,
    );
    Ok(KCenterSolution::new(k, best_centers, best_radius))
}

/// The optimal covering radius (convenience wrapper around
/// [`optimal_solution`]).
pub fn optimal_radius<S: MetricSpace + ?Sized>(space: &S, k: usize) -> Result<f64, KCenterError> {
    optimal_solution(space, k).map(|s| s.radius)
}

fn enumerate<S: MetricSpace + ?Sized>(
    space: &S,
    k: usize,
    start: PointId,
    current: &mut Vec<PointId>,
    best_radius: &mut f64,
    best_centers: &mut Vec<PointId>,
) {
    if current.len() == k {
        let r = covering_radius(space, current);
        if r < *best_radius {
            *best_radius = r;
            *best_centers = current.clone();
        }
        return;
    }
    let remaining_slots = k - current.len();
    let n = space.len();
    // Leave enough points for the remaining slots.
    for candidate in start..=(n - remaining_slots) {
        current.push(candidate);
        enumerate(space, k, candidate + 1, current, best_radius, best_centers);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::{Point, VecSpace};

    fn line(n: usize) -> VecSpace {
        VecSpace::new((0..n).map(|i| Point::xy(i as f64, 0.0)).collect())
    }

    #[test]
    fn optimal_on_a_line_with_one_center() {
        // Points 0..=6: best single center is 3, radius 3.
        let s = line(7);
        let sol = optimal_solution(&s, 1).unwrap();
        assert_eq!(sol.centers, vec![3]);
        assert!((sol.radius - 3.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_on_a_line_with_two_centers() {
        // Points 0..=7 split optimally into [0..=3] and [4..=7]: radius 1.5
        // is unreachable with centers restricted to the points, so OPT is 2
        // (centers at 1 or 2 and 5 or 6).
        let s = line(8);
        let sol = optimal_solution(&s, 2).unwrap();
        assert!((sol.radius - 2.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_two_obvious_clusters() {
        let s = VecSpace::new(vec![
            Point::xy(0.0, 0.0),
            Point::xy(1.0, 0.0),
            Point::xy(100.0, 0.0),
            Point::xy(101.0, 0.0),
        ]);
        let sol = optimal_solution(&s, 2).unwrap();
        assert!((sol.radius - 1.0).abs() < 1e-12);
        assert_eq!(sol.centers.len(), 2);
    }

    #[test]
    fn k_at_least_n_gives_zero_radius() {
        let s = line(4);
        let sol = optimal_solution(&s, 6).unwrap();
        assert_eq!(sol.radius, 0.0);
        assert_eq!(sol.centers.len(), 4);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let empty = VecSpace::new(vec![]);
        assert_eq!(
            optimal_solution(&empty, 1).unwrap_err(),
            KCenterError::EmptyInput
        );
        assert_eq!(
            optimal_solution(&line(3), 0).unwrap_err(),
            KCenterError::ZeroK
        );
        let big = line(MAX_BRUTE_FORCE_POINTS + 1);
        assert!(matches!(
            optimal_solution(&big, 2).unwrap_err(),
            KCenterError::InvalidParameter { name: "n", .. }
        ));
    }

    #[test]
    fn optimal_radius_is_monotone_in_k() {
        let s = line(12);
        let radii: Vec<f64> = (1..=5).map(|k| optimal_radius(&s, k).unwrap()).collect();
        for w in radii.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "optimal radius must not increase with k"
            );
        }
    }
}
