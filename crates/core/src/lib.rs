//! Parallel k-center clustering algorithms.
//!
//! This crate implements the algorithms studied in *"Efficient Parallel
//! Algorithms for k-Center Clustering"* (McClintock & Wirth, ICPP 2016):
//!
//! * [`gonzalez`] — **GON**, Gonzalez's greedy sequential 2-approximation,
//!   with an optional rayon-parallel inner scan;
//! * [`mrg`] — **MRG**, the paper's multi-round "MapReduce Gonzalez"
//!   (Algorithm 1): a 4-approximation in the common two-round case, adding
//!   +2 to the factor per extra reduction round;
//! * [`eim`] — **EIM**, the paper's generalisation (new parameter φ) of the
//!   iterative-sampling MapReduce algorithm of Ene, Im & Moseley, including
//!   the termination fixes of Section 4.1 (Algorithms 2 and 3);
//! * [`hochbaum_shmoys`] — the alternative sequential 2-approximation the
//!   paper lists as future work, usable as the final-round sub-procedure;
//! * [`coreset`] — reusable weighted coresets (Gonzalez-seeded or
//!   EIM-sampled) with an additive quality certificate: build the summary
//!   once, then sweep many `(k, φ)` instances on it through the
//!   weight-aware solver entry points;
//! * [`brute_force`] — exact optimum for tiny instances, used to verify the
//!   approximation factors in tests;
//! * [`evaluate`] — covering radius / assignment evaluation (the paper's
//!   "solution value");
//! * [`outliers`] — the robust with-outliers objective: certify a center
//!   set over the `n − z` kept points after dropping the `z` farthest;
//! * [`cost_model`] — the theoretical comparison of Table 1 as executable
//!   formulas.
//!
//! # Quick example
//!
//! ```
//! use kcenter_core::prelude::*;
//! use kcenter_metric::{Point, VecSpace};
//!
//! let points = vec![
//!     Point::xy(0.0, 0.0), Point::xy(0.1, 0.0), Point::xy(10.0, 0.0),
//!     Point::xy(10.1, 0.0), Point::xy(5.0, 8.0),
//! ];
//! let space = VecSpace::new(points);
//!
//! // Sequential baseline (2-approximation).
//! let gon = GonzalezConfig::new(2).solve(&space).unwrap();
//!
//! // Two-round parallel MRG (4-approximation) on a 4-machine cluster.
//! let mrg = MrgConfig::new(2).with_machines(4).run(&space).unwrap();
//! assert_eq!(mrg.solution.centers.len(), 2);
//! assert!(mrg.solution.radius <= 2.0 * gon.radius + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute_force;
pub mod coreset;
pub mod cost_model;
pub mod eim;
pub mod error;
pub mod evaluate;
pub mod gonzalez;
pub mod hochbaum_shmoys;
pub mod mrg;
pub mod outliers;
pub mod select;
pub mod solution;
pub mod solver;
pub mod tightness;

pub use coreset::{
    CoresetBuilder, CoresetCoverage, CoresetSolution, GonzalezCoresetConfig, PersistError,
    WeightedCoreset,
};
pub use eim::{EimConfig, EimResult};
pub use error::KCenterError;
pub use gonzalez::{FirstCenter, GonzalezConfig};
pub use hochbaum_shmoys::HochbaumShmoysConfig;
pub use mrg::{MrgConfig, MrgResult};
pub use outliers::{evaluate_with_outliers, OutlierEvaluation};
pub use solution::KCenterSolution;
pub use solver::SequentialSolver;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::coreset::{
        CoresetBuilder, CoresetCoverage, CoresetSolution, GonzalezCoresetConfig, WeightedCoreset,
    };
    pub use crate::eim::{EimConfig, EimResult};
    pub use crate::error::KCenterError;
    pub use crate::evaluate::{assign, covering_radius};
    pub use crate::gonzalez::{FirstCenter, GonzalezConfig};
    pub use crate::hochbaum_shmoys::HochbaumShmoysConfig;
    pub use crate::mrg::{MrgConfig, MrgResult};
    pub use crate::outliers::{evaluate_with_outliers, OutlierEvaluation};
    pub use crate::solution::KCenterSolution;
    pub use crate::solver::SequentialSolver;
}
