//! Error types shared by every k-center algorithm in this crate.

use kcenter_mapreduce::MapReduceError;
use std::fmt;

/// Errors raised by the k-center algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KCenterError {
    /// The input point set is empty.
    EmptyInput,
    /// `k` was zero; at least one center is required.
    ZeroK,
    /// The supplied distance does not satisfy the metric axioms, so the
    /// approximation guarantees would not hold.
    NotAMetric {
        /// Name of the offending distance function.
        distance: &'static str,
    },
    /// The simulated cluster could not execute the requested plan.
    MapReduce(MapReduceError),
    /// A multi-round reduction stopped making progress (the per-round
    /// sample no longer shrinks because `k` is too close to the machine
    /// capacity, the situation discussed after Lemma 3).
    NoProgress {
        /// Size of the sample when progress stalled.
        sample_size: usize,
        /// The machine capacity it needed to fit into.
        capacity: usize,
    },
    /// An algorithm parameter was outside its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        message: String,
    },
}

impl fmt::Display for KCenterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KCenterError::EmptyInput => write!(f, "the input point set is empty"),
            KCenterError::ZeroK => write!(f, "k must be at least 1"),
            KCenterError::NotAMetric { distance } => {
                write!(f, "distance function {distance:?} is not a metric; approximation guarantees would not hold")
            }
            KCenterError::MapReduce(e) => write!(f, "MapReduce execution failed: {e}"),
            KCenterError::NoProgress { sample_size, capacity } => write!(
                f,
                "multi-round reduction stalled: sample of {sample_size} points cannot shrink below the capacity {capacity} (k is too close to c)"
            ),
            KCenterError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter {name}: {message}")
            }
        }
    }
}

impl std::error::Error for KCenterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KCenterError::MapReduce(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MapReduceError> for KCenterError {
    fn from(e: MapReduceError) -> Self {
        KCenterError::MapReduce(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(KCenterError::EmptyInput.to_string().contains("empty"));
        assert!(KCenterError::ZeroK.to_string().contains("k"));
        assert!(KCenterError::NotAMetric {
            distance: "squared-euclidean"
        }
        .to_string()
        .contains("squared-euclidean"));
        let e = KCenterError::NoProgress {
            sample_size: 500,
            capacity: 100,
        };
        assert!(e.to_string().contains("500") && e.to_string().contains("100"));
        let e = KCenterError::InvalidParameter {
            name: "epsilon",
            message: "must be positive".into(),
        };
        assert!(e.to_string().contains("epsilon"));
    }

    #[test]
    fn mapreduce_errors_convert_and_expose_source() {
        let inner = MapReduceError::EmptyRound;
        let outer: KCenterError = inner.clone().into();
        assert_eq!(outer, KCenterError::MapReduce(inner));
        assert!(std::error::Error::source(&outer).is_some());
        assert!(std::error::Error::source(&KCenterError::ZeroK).is_none());
    }
}
