//! The common solution type returned by every k-center algorithm.

use kcenter_metric::PointId;
use serde::{Deserialize, Serialize};

/// A k-center solution: the chosen centers and the covering radius they
/// achieve on the point set they were evaluated against (the paper's
/// "solution value").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KCenterSolution {
    /// The number of centers that was requested.
    pub k: usize,
    /// Indices of the chosen centers (at most `k`, possibly fewer when the
    /// input has fewer than `k` points).
    pub centers: Vec<PointId>,
    /// The covering radius: the maximum over all points of the distance to
    /// the nearest chosen center.
    pub radius: f64,
}

impl KCenterSolution {
    /// Creates a solution record.
    ///
    /// # Panics
    ///
    /// Panics if more than `k` centers are supplied, if the radius is
    /// negative or not finite, or if the same center appears twice.
    pub fn new(k: usize, centers: Vec<PointId>, radius: f64) -> Self {
        assert!(
            centers.len() <= k,
            "a k-center solution may contain at most k centers"
        );
        assert!(
            radius.is_finite() && radius >= 0.0,
            "covering radius must be finite and non-negative"
        );
        let mut sorted = centers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), centers.len(), "centers must be distinct");
        Self { k, centers, radius }
    }

    /// Number of centers actually used.
    pub fn num_centers(&self) -> usize {
        self.centers.len()
    }

    /// Whether the solution uses the full budget of `k` centers.
    pub fn uses_full_budget(&self) -> bool {
        self.centers.len() == self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_valid_solutions() {
        let s = KCenterSolution::new(3, vec![5, 9], 1.25);
        assert_eq!(s.num_centers(), 2);
        assert!(!s.uses_full_budget());
        let s = KCenterSolution::new(2, vec![0, 1], 0.0);
        assert!(s.uses_full_budget());
    }

    #[test]
    #[should_panic(expected = "at most k centers")]
    fn new_rejects_too_many_centers() {
        KCenterSolution::new(1, vec![0, 1], 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn new_rejects_negative_radius() {
        KCenterSolution::new(2, vec![0], -1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn new_rejects_nan_radius() {
        KCenterSolution::new(2, vec![0], f64::NAN);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn new_rejects_duplicate_centers() {
        KCenterSolution::new(3, vec![4, 4], 1.0);
    }
}
