//! `Select(H, S)` — Algorithm 3 of the paper, with the new parameter φ.
//!
//! Given the candidate set `H` (with each candidate's distance to the
//! current sample `S`), order the candidates from farthest to closest and
//! return the one in position `φ · log n`.  The original scheme of Ene et
//! al. effectively fixes `φ = 8`; the paper shows the probabilistic
//! guarantee survives for `φ > 5.15` and experiments with φ ∈ {1, 4, 6, 8}
//! to trade approximation quality for speed.

use kcenter_metric::{PointId, Scalar};

/// The pivot threshold above which the Section 6 analysis guarantees the
/// 10-approximation with sufficient probability (`φ > 5.15`).
pub const PHI_GUARANTEE_THRESHOLD: f64 = 5.15;

/// The effective φ of the original Ene et al. scheme.
pub const PHI_ORIGINAL: f64 = 8.0;

/// Selects the pivot: the `φ·log n`-th farthest candidate from the sample.
///
/// `candidates` pairs every point of `H` with its distance `d(x, S)` — in
/// whatever comparison-space scalar the caller's metric space uses (`f32`
/// for a reduced-precision store; ordering is all that matters here, and
/// ties broken by point id keep the choice deterministic at any precision);
/// `n` is the size of the full instance (the paper's `log n` is the natural
/// logarithm of the instance size, not of `|H|`).
///
/// Returns `None` when `H` is empty.  When `φ·log n` exceeds `|H|`, the
/// closest candidate is returned (the deepest cut available), mirroring the
/// clamping any implementation must perform on small candidate sets.
pub fn select_pivot<C: Scalar>(
    candidates: &[(PointId, C)],
    phi: f64,
    n: usize,
) -> Option<(PointId, C)> {
    assert!(
        phi > 0.0 && phi.is_finite(),
        "phi must be positive and finite"
    );
    if candidates.is_empty() {
        return None;
    }
    let mut ordered: Vec<(PointId, C)> = candidates.to_vec();
    // Farthest first; ties broken by point id for determinism.
    ordered.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let rank = pivot_rank(phi, n, ordered.len());
    Some(ordered[rank])
}

/// The 0-based index into the farthest-first ordering that
/// [`select_pivot`] picks: `min(⌈φ·ln n⌉, |H|) - 1`.
pub fn pivot_rank(phi: f64, n: usize, h_len: usize) -> usize {
    assert!(h_len > 0, "pivot rank needs a non-empty candidate set");
    let log_n = (n.max(2) as f64).ln();
    let target = (phi * log_n).ceil() as usize;
    target.clamp(1, h_len) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates(dists: &[f64]) -> Vec<(PointId, f64)> {
        dists.iter().enumerate().map(|(i, &d)| (i, d)).collect()
    }

    #[test]
    fn empty_candidate_set_has_no_pivot() {
        assert_eq!(select_pivot::<f64>(&[], 8.0, 1000), None);
        assert_eq!(select_pivot::<f32>(&[], 8.0, 1000), None);
    }

    #[test]
    fn pivot_rank_grows_with_phi() {
        let n = 10_000; // ln ≈ 9.2
        let r1 = pivot_rank(1.0, n, 1_000);
        let r8 = pivot_rank(8.0, n, 1_000);
        assert!(r1 < r8);
        assert_eq!(r1, (1.0f64 * (n as f64).ln()).ceil() as usize - 1);
    }

    #[test]
    fn pivot_rank_clamps_to_candidate_count() {
        assert_eq!(pivot_rank(8.0, 1_000_000, 5), 4);
        assert_eq!(pivot_rank(0.0001, 1_000_000, 5), 0);
    }

    #[test]
    fn select_pivot_orders_farthest_first() {
        // phi tiny -> rank 0 -> farthest point.
        let c = candidates(&[1.0, 9.0, 3.0, 7.0]);
        let (id, d) = select_pivot(&c, 0.0001, 100).unwrap();
        assert_eq!(id, 1);
        assert_eq!(d, 9.0);
    }

    #[test]
    fn select_pivot_with_large_phi_returns_closest() {
        let c = candidates(&[1.0, 9.0, 3.0, 7.0]);
        let (id, d) = select_pivot(&c, 1_000.0, 100).unwrap();
        assert_eq!(id, 0);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn larger_phi_never_selects_a_farther_pivot() {
        let c = candidates(&[5.0, 2.0, 8.0, 1.0, 9.0, 4.0, 3.0, 7.0, 6.0, 0.5]);
        let mut last = f64::INFINITY;
        for phi in [0.5, 1.0, 2.0, 4.0, 6.0, 8.0] {
            let (_, d) = select_pivot(&c, phi, 50).unwrap();
            assert!(d <= last + 1e-12, "pivot distance increased as phi grew");
            last = d;
        }
    }

    #[test]
    fn ties_are_broken_deterministically() {
        let c = vec![(7, 3.0), (2, 3.0), (9, 3.0)];
        let a = select_pivot(&c, 0.0001, 10).unwrap();
        let b = select_pivot(&c, 0.0001, 10).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.0, 2, "ties must prefer the smaller point id");
    }

    #[test]
    #[should_panic(expected = "phi must be positive")]
    fn select_pivot_rejects_nonpositive_phi() {
        select_pivot(&candidates(&[1.0]), 0.0, 10);
    }

    #[test]
    fn constants_match_the_paper() {
        assert_eq!(PHI_ORIGINAL, 8.0);
        assert!((PHI_GUARANTEE_THRESHOLD - 5.15).abs() < 1e-12);
    }
}
