//! The theoretical comparison of Table 1 as executable formulas.
//!
//! | Algorithm | α | Rounds | Runtime |
//! |-----------|---|--------|---------|
//! | GON       | 2 | n/a    | `k·n` |
//! | MRG       | 4 | 2      | `k·n/m + k²·m` |
//! | EIM       | 10| O(1/ε) | `k·n^(1+ε)·log n / (m·(1 − n^(−ε))²)` |
//!
//! The functions below evaluate the dominant-term operation counts so the
//! `repro table1` command can print the table, benches can check predicted
//! speed-ups, and tests can verify the qualitative relations the paper
//! derives in Section 5 (e.g. "we expect EIM to be slower than MRG by a
//! factor of `n^ε (1 − n^(−ε))^(−2) log n`").

use serde::{Deserialize, Serialize};

/// How many MapReduce rounds an algorithm needs, as reported in Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RoundCount {
    /// Not applicable (sequential algorithm).
    NotApplicable,
    /// A fixed constant number of rounds.
    Constant(u32),
    /// Asymptotic description, e.g. `O(1/ε)`.
    Order(String),
}

impl std::fmt::Display for RoundCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoundCount::NotApplicable => write!(f, "n/a"),
            RoundCount::Constant(c) => write!(f, "{c}"),
            RoundCount::Order(o) => write!(f, "{o}"),
        }
    }
}

/// One row of Table 1, instantiated for concrete `n`, `k`, `m`, `ε`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmProfile {
    /// Algorithm name as used in the paper.
    pub name: &'static str,
    /// Worst-case approximation factor α.
    pub approximation: f64,
    /// Round count column.
    pub rounds: RoundCount,
    /// The asymptotic runtime expression, as written in the paper.
    pub runtime_expression: &'static str,
    /// The dominant-term operation count for the given parameters.
    pub predicted_operations: f64,
}

/// Dominant-term operation count of sequential GON: `k·n`.
pub fn gon_operations(n: usize, k: usize) -> f64 {
    k as f64 * n as f64
}

/// Dominant-term operation count of MRG: `k·n/m + k²·m` (Section 5.1).
pub fn mrg_operations(n: usize, k: usize, m: usize) -> f64 {
    assert!(m > 0, "machine count must be positive");
    k as f64 * n as f64 / m as f64 + (k as f64) * (k as f64) * m as f64
}

/// Dominant-term operation count of EIM's round 3 (Section 5.2):
/// `k·n^(1+ε)·log n / (m·(1 − n^(−ε))²)`.
pub fn eim_operations(n: usize, k: usize, m: usize, epsilon: f64) -> f64 {
    assert!(m > 0, "machine count must be positive");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0, 1)");
    let nf = (n.max(2)) as f64;
    let shrink = 1.0 - nf.powf(-epsilon);
    k as f64 * nf.powf(1.0 + epsilon) * nf.ln() / (m as f64 * shrink * shrink)
}

/// The factor by which the paper expects EIM to be slower than MRG when the
/// `k·n/m` term dominates MRG: `n^ε·(1 − n^(−ε))^(−2)·log n` (Section 5.2).
pub fn eim_over_mrg_slowdown(n: usize, epsilon: f64) -> f64 {
    let nf = (n.max(2)) as f64;
    let shrink = 1.0 - nf.powf(-epsilon);
    nf.powf(epsilon) * nf.ln() / (shrink * shrink)
}

/// All three rows of Table 1 for the given parameters.
pub fn table1(n: usize, k: usize, m: usize, epsilon: f64) -> Vec<AlgorithmProfile> {
    vec![
        AlgorithmProfile {
            name: "GON",
            approximation: 2.0,
            rounds: RoundCount::NotApplicable,
            runtime_expression: "k*n",
            predicted_operations: gon_operations(n, k),
        },
        AlgorithmProfile {
            name: "MRG",
            approximation: 4.0,
            rounds: RoundCount::Constant(2),
            runtime_expression: "k*n/m + k^2*m",
            predicted_operations: mrg_operations(n, k, m),
        },
        AlgorithmProfile {
            name: "EIM",
            approximation: 10.0,
            rounds: RoundCount::Order("O(1/eps)".to_string()),
            runtime_expression: "k*n^(1+eps)*log n / (m*(1-n^-eps)^2)",
            predicted_operations: eim_operations(n, k, m, epsilon),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gon_is_linear_in_both_k_and_n() {
        assert_eq!(gon_operations(1_000, 10), 10_000.0);
        assert_eq!(gon_operations(2_000, 10), 20_000.0);
        assert_eq!(gon_operations(1_000, 20), 20_000.0);
    }

    #[test]
    fn mrg_has_both_terms() {
        // k*n/m = 10*10000/50 = 2000, k^2*m = 100*50 = 5000.
        assert_eq!(mrg_operations(10_000, 10, 50), 7_000.0);
    }

    #[test]
    fn mrg_is_much_cheaper_than_gon_for_large_n() {
        let n = 1_000_000;
        let k = 25;
        let m = 50;
        assert!(mrg_operations(n, k, m) * 10.0 < gon_operations(n, k));
    }

    #[test]
    fn mrg_k_squared_term_dominates_for_small_n_large_k() {
        // The paper explains Figure 4b with this: for large k and small n the
        // k²·m term dominates.
        let small_n = mrg_operations(10_000, 100, 50);
        let k_term = 100.0 * 100.0 * 50.0;
        assert!(k_term / small_n > 0.7);
        // For n = 1M the linear term dominates instead.
        let large_n = mrg_operations(1_000_000, 100, 50);
        let linear = 100.0 * 1_000_000.0 / 50.0;
        assert!(linear / large_n > 0.7);
    }

    #[test]
    fn eim_is_slower_than_both_gon_and_mrg_at_paper_scale() {
        // Section 5 and Table 1: at n = 1M, eps = 0.1, m = 50, EIM's
        // dominant round exceeds even the sequential baseline.
        let n = 1_000_000;
        let k = 25;
        let m = 50;
        let eim = eim_operations(n, k, m, 0.1);
        assert!(eim > mrg_operations(n, k, m));
        assert!(eim > gon_operations(n, k));
    }

    #[test]
    fn slowdown_factor_matches_ratio_of_dominant_terms() {
        let n = 1_000_000;
        let k = 10;
        let m = 50;
        let ratio = eim_operations(n, k, m, 0.1) / (k as f64 * n as f64 / m as f64);
        let predicted = eim_over_mrg_slowdown(n, 0.1);
        assert!((ratio - predicted).abs() / predicted < 1e-9);
        // The paper's "about 100 times faster" claim is the right order of
        // magnitude: the factor lies between 10 and 1000 at paper scale.
        assert!(predicted > 10.0 && predicted < 1_000.0);
    }

    #[test]
    fn table1_has_the_paper_rows() {
        let rows = table1(1_000_000, 25, 50, 0.1);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].name, "GON");
        assert_eq!(rows[0].approximation, 2.0);
        assert_eq!(rows[0].rounds, RoundCount::NotApplicable);
        assert_eq!(rows[1].name, "MRG");
        assert_eq!(rows[1].approximation, 4.0);
        assert_eq!(rows[1].rounds, RoundCount::Constant(2));
        assert_eq!(rows[2].name, "EIM");
        assert_eq!(rows[2].approximation, 10.0);
        assert!(matches!(rows[2].rounds, RoundCount::Order(_)));
        assert!(rows.iter().all(|r| r.predicted_operations > 0.0));
    }

    #[test]
    fn round_count_display() {
        assert_eq!(RoundCount::NotApplicable.to_string(), "n/a");
        assert_eq!(RoundCount::Constant(2).to_string(), "2");
        assert_eq!(RoundCount::Order("O(1/eps)".into()).to_string(), "O(1/eps)");
    }

    #[test]
    #[should_panic(expected = "epsilon must lie in (0, 1)")]
    fn eim_operations_rejects_bad_epsilon() {
        eim_operations(100, 2, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "machine count must be positive")]
    fn mrg_operations_rejects_zero_machines() {
        mrg_operations(100, 2, 0);
    }
}
