//! Rendering experiment results as text tables.
//!
//! The output format intentionally mirrors the paper's tables: one row per
//! sweep coordinate (k, n, or φ), one column per algorithm (or per φ), and
//! either the solution value or the runtime in seconds in every cell.

use crate::experiments::ExperimentResult;
use std::fmt::Write as _;

/// Formats a cell value the way the paper prints it: three to four
/// significant digits, scientific notation only for extreme magnitudes.
pub fn format_value(v: f64) -> String {
    if !v.is_finite() {
        return "inf".to_string();
    }
    let a = v.abs();
    if a == 0.0 {
        "0".to_string()
    } else if !(1e-4..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.2}")
    } else if a >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

/// Renders an experiment result as a markdown table preceded by its title.
pub fn render_result(result: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {}", result.title);
    let _ = writeln!(
        out,
        "\n(scale = {}, metric = {})\n",
        result.scale,
        if result.is_runtime {
            "runtime in seconds (max simulated machine time per round)"
        } else {
            "solution value (covering radius)"
        }
    );

    // Header.
    let _ = write!(out, "| {} |", sweep_header(result));
    for c in &result.columns {
        let _ = write!(out, " {c} |");
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in &result.columns {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);

    // Rows.
    for row in &result.rows {
        let _ = write!(out, "| {} |", row.coordinate);
        for m in &row.measurements {
            let v = if result.is_runtime {
                m.runtime_seconds
            } else {
                m.value
            };
            let _ = write!(out, " {} |", format_value(v));
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders several results back to back (the `repro all` output).
pub fn render_all(results: &[ExperimentResult]) -> String {
    results
        .iter()
        .map(render_result)
        .collect::<Vec<_>>()
        .join("\n")
}

fn sweep_header(result: &ExperimentResult) -> &'static str {
    match result.rows.first().map(|r| r.coordinate.as_str()) {
        Some(c) if c.starts_with("n=") => "n",
        Some(c) if c.starts_with("k=") => "k",
        _ => "row",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{ExperimentResult, ResultRow};
    use crate::measure::Measurement;

    fn measurement(label: &str, value: f64, runtime: f64) -> Measurement {
        Measurement {
            algorithm: label.to_string(),
            n: 100,
            k: 5,
            value,
            runtime_seconds: runtime,
            wall_seconds: runtime,
            mapreduce_rounds: 2,
            fell_back_to_sequential: false,
        }
    }

    fn sample_result(is_runtime: bool) -> ExperimentResult {
        ExperimentResult {
            id: "table2".to_string(),
            title: "Table 2: sample".to_string(),
            columns: vec!["MRG".to_string(), "EIM".to_string(), "GON".to_string()],
            is_runtime,
            rows: vec![
                ResultRow {
                    coordinate: "k=2".to_string(),
                    measurements: vec![
                        measurement("MRG", 96.04, 0.01),
                        measurement("EIM", 93.11, 0.5),
                        measurement("GON", 95.86, 0.2),
                    ],
                },
                ResultRow {
                    coordinate: "k=25".to_string(),
                    measurements: vec![
                        measurement("MRG", 0.961, 0.02),
                        measurement("EIM", 0.854, 1.5),
                        measurement("GON", 0.961, 0.9),
                    ],
                },
            ],
            scale: 1.0,
        }
    }

    #[test]
    fn format_value_uses_sensible_precision() {
        assert_eq!(format_value(96.04), "96.040");
        assert_eq!(format_value(0.961), "0.9610");
        assert_eq!(format_value(123.456), "123.46");
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(f64::INFINITY), "inf");
        assert!(format_value(1.5e7).contains('e'));
        assert!(format_value(3.2e-6).contains('e'));
    }

    #[test]
    fn render_solution_value_table_contains_all_cells() {
        let text = render_result(&sample_result(false));
        assert!(text.contains("Table 2"));
        assert!(text.contains("| k |"));
        assert!(text.contains("MRG") && text.contains("EIM") && text.contains("GON"));
        assert!(text.contains("96.040"));
        assert!(text.contains("0.9610"));
        assert!(text.contains("solution value"));
    }

    #[test]
    fn render_runtime_table_reports_seconds() {
        let text = render_result(&sample_result(true));
        assert!(text.contains("runtime in seconds"));
        assert!(text.contains("0.5000") || text.contains("0.500"));
    }

    #[test]
    fn render_all_concatenates_results() {
        let text = render_all(&[sample_result(false), sample_result(true)]);
        assert_eq!(text.matches("Table 2").count(), 2);
    }
}
