//! Experiment harness reproducing every table and figure of the paper.
//!
//! The harness is split in three layers:
//!
//! * [`measure`] — runs one algorithm (GON, MRG, or EIM with a given φ) on
//!   one data set and records the paper's two metrics: the *solution value*
//!   (covering radius) and the *runtime* (for the parallel algorithms, the
//!   per-round maximum simulated machine time; for GON, its wall clock);
//! * [`experiments`] — a declarative registry with one entry per table and
//!   figure of the paper (Table 1 through Table 7, Figure 1 through
//!   Figure 4b), each mapping to a workload from `kcenter-data` and a sweep
//!   over `k`, `n`, or φ;
//! * [`report`] — plain-text / markdown rendering of experiment results so
//!   the `repro` binary can print rows directly comparable with the paper.
//!
//! The `repro` binary (`cargo run --release -p kcenter-bench --bin repro`)
//! regenerates any experiment; Criterion benches under `benches/` cover the
//! same code paths at reduced scale for regression tracking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod execbench;
pub mod experiments;
pub mod flatbench;
pub mod measure;
pub mod report;
pub mod scenario;
pub mod sweepbench;

pub use experiments::{all_experiments, Experiment, ExperimentKind, ExperimentResult};
pub use measure::{Algorithm, Measurement};
pub use report::render_result;
