//! The sweep benchmark: build one weighted coreset and solve a `(k, φ)`
//! grid on it, versus rerunning EIM from scratch for every cell.
//!
//! This measures the amortisation the coreset layer exists for.  Both
//! sides are charged in the paper's metric — **simulated time**, the sum
//! over MapReduce rounds of the slowest machine's processing time — so the
//! comparison is machine-count-honest: the coreset side pays its build
//! rounds (including the weight/certification pass) exactly once, the
//! baseline pays `3·iterations + 1` rounds per cell.  Wall-clock totals
//! are recorded alongside, as everywhere in this harness.
//!
//! Quality is tracked per cell: the coreset side reports the **certified**
//! full-data covering radius of its centers (exact `f64` wide scan, not
//! just the triangle-inequality bound), so `max_radius_ratio` compares
//! like with like against the EIM rerun's radius.

use kcenter_core::coreset::{GonzalezCoresetConfig, WeightedCoreset};
use kcenter_core::prelude::*;
use kcenter_data::DatasetSpec;
use kcenter_mapreduce::{Cluster, ClusterConfig};
use kcenter_metric::{Euclidean, Scalar};
use std::time::{Duration, Instant};

/// Which builder a sweep comparison exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepBuilder {
    /// Gonzalez-seeded coreset of an explicit size.
    Gonzalez {
        /// Number of representatives.
        t: usize,
    },
    /// EIM-sampled coreset built at the grid's largest `k`.
    Eim,
}

impl SweepBuilder {
    /// Name used in report rows.
    pub fn name(&self) -> &'static str {
        match self {
            SweepBuilder::Gonzalez { .. } => "gonzalez",
            SweepBuilder::Eim => "eim",
        }
    }
}

/// One `(k, φ)` cell of a sweep comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// The cell's number of centers.
    pub k: usize,
    /// The cell's pivot-rank parameter φ (the baseline EIM rerun uses it;
    /// the coreset solution is φ-independent once the coreset exists).
    pub phi: f64,
    /// Exact certified full-data radius of the coreset solution.
    pub coreset_radius: f64,
    /// The rerun baseline's radius for this cell.
    pub eim_radius: f64,
    /// The rerun baseline's simulated time for this cell.
    pub eim_simulated: Duration,
}

/// The outcome of one sweep-vs-reruns comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepComparison {
    /// Workload description (spec + seed).
    pub workload: String,
    /// Instance size.
    pub n: usize,
    /// Storage-precision name.
    pub precision: &'static str,
    /// Builder name.
    pub builder: &'static str,
    /// Number of representatives the build produced.
    pub coreset_size: usize,
    /// The coreset's certified construction radius.
    pub construction_radius: f64,
    /// MapReduce rounds the build spent (all labelled `coreset`).
    pub build_rounds: usize,
    /// Simulated time of the build (charged once).
    pub build_simulated: Duration,
    /// Simulated time of all per-`k` solves on the coreset.
    pub solve_simulated: Duration,
    /// Wall-clock time of build + solves + per-cell certification.
    pub sweep_wall: Duration,
    /// Total simulated time of the per-cell EIM reruns.
    pub eim_simulated: Duration,
    /// Wall-clock time of the per-cell EIM reruns.
    pub eim_wall: Duration,
    /// Worst quality ratio over cells:
    /// `max(coreset_radius / eim_radius)`.
    pub max_radius_ratio: f64,
    /// All grid cells.
    pub cells: Vec<SweepCell>,
}

impl SweepComparison {
    /// Simulated time of the whole sweep (one build + all solves).
    pub fn sweep_simulated(&self) -> Duration {
        self.build_simulated + self.solve_simulated
    }

    /// Simulated-time speedup of sweep-via-coreset over per-cell reruns.
    pub fn simulated_speedup(&self) -> f64 {
        self.eim_simulated.as_secs_f64() / self.sweep_simulated().as_secs_f64().max(1e-12)
    }
}

/// Runs one comparison: build a coreset over `spec` at storage precision
/// `S`, solve every `(k, φ)` cell on it, then rerun EIM per cell.
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_comparison<S: Scalar>(
    spec: &DatasetSpec,
    seed: u64,
    ks: &[usize],
    phis: &[f64],
    builder: SweepBuilder,
    machines: usize,
    epsilon: f64,
) -> SweepComparison {
    assert!(!ks.is_empty() && !phis.is_empty(), "empty sweep grid");
    let dataset = spec.build_at::<S>(seed);
    let space = &dataset.space;
    let n = dataset.len();
    let k_max = *ks.iter().max().unwrap();
    let phi_max = phis.iter().copied().fold(f64::NEG_INFINITY, f64::max);

    let sweep_start = Instant::now();
    let coreset: WeightedCoreset<Euclidean, S> = match builder {
        SweepBuilder::Gonzalez { t } => GonzalezCoresetConfig::new(t)
            .with_machines(machines)
            .build(space)
            .expect("coreset build"),
        SweepBuilder::Eim => EimConfig::new(k_max)
            .with_machines(machines)
            .with_epsilon(epsilon)
            .with_phi(phi_max)
            .with_seed(seed)
            .build_coreset(space)
            .expect("coreset build"),
    };
    let build_rounds = coreset.stats().num_rounds_labelled("coreset");
    let build_simulated = coreset.stats().simulated_time();

    let mut solve_cluster = Cluster::unchecked(ClusterConfig::new(machines, coreset.len().max(1)));
    let per_k: Vec<(usize, f64)> = ks
        .iter()
        .map(|&k| {
            let sol = coreset
                .solve_on_cluster(
                    k,
                    SequentialSolver::Gonzalez,
                    FirstCenter::default(),
                    &mut solve_cluster,
                    &format!("sweep solve k={k}"),
                )
                .expect("coreset solve");
            (k, sol.certify(space))
        })
        .collect();
    let solve_simulated = solve_cluster.stats().simulated_time();
    let sweep_wall = sweep_start.elapsed();

    let rerun_start = Instant::now();
    let mut cells = Vec::with_capacity(ks.len() * phis.len());
    let mut eim_simulated = Duration::ZERO;
    let mut max_radius_ratio: f64 = 0.0;
    for &(k, coreset_radius) in &per_k {
        for &phi in phis {
            let rerun = EimConfig::new(k)
                .with_machines(machines)
                .with_epsilon(epsilon)
                .with_phi(phi)
                .with_seed(seed)
                .run(space)
                .expect("EIM rerun");
            let cell_sim = rerun.stats.simulated_time();
            eim_simulated += cell_sim;
            if rerun.solution.radius > 0.0 {
                max_radius_ratio = max_radius_ratio.max(coreset_radius / rerun.solution.radius);
            }
            cells.push(SweepCell {
                k,
                phi,
                coreset_radius,
                eim_radius: rerun.solution.radius,
                eim_simulated: cell_sim,
            });
        }
    }
    let eim_wall = rerun_start.elapsed();

    SweepComparison {
        workload: format!("{} seed {seed}", spec.describe()),
        n,
        precision: S::NAME,
        builder: builder.name(),
        coreset_size: coreset.len(),
        construction_radius: coreset.construction_radius(),
        build_rounds,
        build_simulated,
        solve_simulated,
        sweep_wall,
        eim_simulated,
        eim_wall,
        max_radius_ratio,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_fills_every_cell_and_accounts_one_build() {
        let spec = DatasetSpec::Gau {
            n: 3_000,
            k_prime: 5,
        };
        let cmp = run_sweep_comparison::<f64>(
            &spec,
            7,
            &[2, 3],
            &[4.0, 8.0],
            SweepBuilder::Gonzalez { t: 60 },
            6,
            0.13,
        );
        assert_eq!(cmp.cells.len(), 4);
        assert_eq!(cmp.build_rounds, 3);
        assert_eq!(cmp.coreset_size, 60);
        assert_eq!(cmp.n, 3_000);
        assert_eq!(cmp.precision, "f64");
        assert!(cmp.max_radius_ratio > 0.0);
        assert!(cmp.sweep_simulated() >= cmp.build_simulated);
        assert!(cmp.simulated_speedup() > 0.0);
    }

    #[test]
    fn eim_builder_comparison_runs_at_reduced_precision() {
        let spec = DatasetSpec::Unif { n: 3_000 };
        let cmp = run_sweep_comparison::<f32>(&spec, 3, &[2], &[8.0], SweepBuilder::Eim, 6, 0.13);
        assert_eq!(cmp.builder, "eim");
        assert_eq!(cmp.precision, "f32");
        assert_eq!(cmp.cells.len(), 1);
        assert!(cmp.coreset_size > 0);
        assert!(cmp.cells[0].coreset_radius.is_finite());
    }
}
