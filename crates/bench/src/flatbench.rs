//! The flat-layout micro-benchmark: old pointer-chasing scan vs the new
//! SoA kernels.
//!
//! Both `bench_flat` (Criterion) and the `flat_report` binary (which writes
//! `BENCH_flat.json`) measure the same operation — one Gonzalez iteration,
//! i.e. one "relax nearest-center distances against a new center" pass plus
//! the farthest-point argmax — on the two layouts:
//!
//! * **old**: `Vec<Point>` (one heap allocation per point), Euclidean
//!   distance with a `sqrt` per point-center pair, separate relax and
//!   argmax passes — a faithful replica of the pre-flat implementation;
//! * **flat**: the fused `relax_nearest_max` pass over [`FlatPoints`] rows
//!   in squared space — exactly what `select_centers` now runs — plus the
//!   chunked-parallel variant, at **both storage precisions** (`f64` and
//!   `f32`; the scan is DRAM-bound at n = 1M, so the halved bytes of the
//!   `f32` rows are the measurement that justifies the precision mode).

use kcenter_metric::grid::{GridRelaxer, SpatialGrid, NEAREST_OCCUPANCY};
use kcenter_metric::kernel::{self, simd};
use kcenter_metric::{
    Distance, Euclidean, FlatPoints, KernelBackend, MetricSpace, Point, Scalar, VecSpace,
};

/// Materialises the rows of `flat` as owned `Point`s whose heap allocations
/// happen in a (deterministically) shuffled order, while the resulting
/// vector stays in row order.
///
/// A freshly built `Vec<Point>` gets its coordinate buffers laid out
/// sequentially by the allocator — the best possible case for the old
/// layout, and not the one a real run sees: the seed generators allocated
/// points from parallel workers (interleaving per-thread arenas), and any
/// long-lived process ages its heap.  Scanning shuffled-order allocations
/// shows the pointer-chasing cost the flat store removes by construction.
pub fn to_points_aged_heap(flat: &FlatPoints, seed: u64) -> Vec<Point> {
    let n = flat.len();
    let mut perm: Vec<usize> = (0..n).collect();
    // Deterministic Fisher–Yates on a SplitMix64 stream.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    let mut slots: Vec<Option<Point>> = (0..n).map(|_| None).collect();
    for &row in &perm {
        slots[row] = Some(flat.point(row));
    }
    slots
        .into_iter()
        .map(|p| p.expect("every row placed"))
        .collect()
}

/// The old-layout scan: for every point, re-derive its distance to the new
/// center through the per-point `Vec<f64>` and a `sqrt`, and relax the
/// running nearest-center array.  The center is re-indexed per pair, just
/// as the pre-flat `space.distance(p, new_center)` call did.
pub fn old_relax_nearest(points: &[Point], center: usize, nearest: &mut [f64]) {
    for (slot, p) in nearest.iter_mut().zip(points) {
        let d = Euclidean.distance(p, &points[center]);
        if d < *slot {
            *slot = d;
        }
    }
}

/// The old-layout argmax (identical logic to [`kernel::argmax`]; the layout
/// difference is entirely in the relaxation scan).
pub fn old_argmax(nearest: &[f64]) -> Option<(usize, f64)> {
    kernel::argmax(nearest)
}

/// One Gonzalez iteration on the old layout (two passes); returns the
/// farthest point so the compiler cannot discard the work.
pub fn old_iteration(points: &[Point], center: usize, nearest: &mut [f64]) -> (usize, f64) {
    old_relax_nearest(points, center, nearest);
    old_argmax(nearest).expect("non-empty scan")
}

/// One Gonzalez iteration on the flat layout: the fused row-streaming pass
/// `select_centers` runs on the full space, at whatever storage precision
/// the space carries.
pub fn flat_iteration<S: Scalar>(
    space: &VecSpace<Euclidean, S>,
    center: usize,
    nearest: &mut [S],
) -> (usize, S) {
    space.relax_all_max(center, nearest)
}

/// One Gonzalez iteration on the flat layout, chunked-parallel variant.
pub fn flat_par_iteration<S: Scalar>(
    space: &VecSpace<Euclidean, S>,
    center: usize,
    nearest: &mut [S],
) -> (usize, S) {
    space.par_relax_all_max(center, nearest)
}

/// [`flat_iteration`] under an explicit kernel backend — the A/B harness
/// entry: installs the backend in the dispatch table, then runs the same
/// fused pass the solvers run.  The `flat_report` binary interleaves this
/// across backends so `BENCH_flat.json` carries scalar and SIMD rows from
/// one measurement loop.
///
/// # Panics
///
/// Panics if `backend` is not available in this build on this machine.
pub fn flat_iteration_under<S: Scalar>(
    backend: KernelBackend,
    space: &VecSpace<Euclidean, S>,
    center: usize,
    nearest: &mut [S],
) -> (usize, S) {
    simd::set_active(backend).expect("requested kernel backend is available");
    space.relax_all_max(center, nearest)
}

/// Deterministic clustered workload for the grid-vs-dense assignment
/// benchmark: `k_prime` cluster centres uniform in `[0, side]^dim`, each
/// point a uniform offset of at most `side / 50` around its (round-robin)
/// centre.  Clustered data is the regime the paper's GAU/UNB workloads
/// live in and the one where spatial bucketing pays: most grid cells are
/// empty and the member bboxes are tight.
pub fn clustered_flat<S: Scalar>(n: usize, dim: usize, k_prime: usize, seed: u64) -> FlatPoints<S> {
    let side = 1000.0;
    let spread = side / 50.0;
    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    let mut next_f64 = move || {
        // SplitMix64 to a uniform in [0, 1).
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as f64 / (u64::MAX as f64 + 1.0)
    };
    let centres: Vec<f64> = (0..k_prime * dim).map(|_| next_f64() * side).collect();
    let mut coords: Vec<S> = Vec::with_capacity(n * dim);
    for p in 0..n {
        let c = (p % k_prime) * dim;
        for i in 0..dim {
            coords.push(S::from_f64(centres[c + i] + (next_f64() - 0.5) * spread));
        }
    }
    FlatPoints::from_coords(coords, dim).expect("clustered workload dimensions are consistent")
}

/// The first `k` centers a farthest-point (Gonzalez) traversal picks,
/// starting from row 0 — the candidate distribution the assignment scans
/// face in practice.  Solver-chosen centers are spread out by
/// construction; an arbitrary index stride is not (on the round-robin
/// clustered store a stride divisible by `k_prime` lands every candidate
/// in one cluster, which neuters cell pruning on both arms and benchmarks
/// a workload no solver produces).  Prefixes are themselves Gonzalez
/// center sets, so one call serves a whole `k` sweep.
pub fn gonzalez_centers<S: Scalar>(space: &VecSpace<Euclidean, S>, k: usize) -> Vec<usize> {
    let mut nearest = vec![S::INFINITY; space.len()];
    let mut centers = Vec::with_capacity(k);
    let mut next = 0usize;
    for _ in 0..k {
        centers.push(next);
        next = space.relax_all_max(next, &mut nearest).0;
    }
    centers
}

/// `k` consecutive relax rounds on the dense arm — the scan loop of
/// `select_centers` with the grid disabled.  Returns the last round's
/// farthest point so the work cannot be discarded.
pub fn dense_relax_rounds<S: Scalar>(
    space: &VecSpace<Euclidean, S>,
    centers: &[usize],
    nearest: &mut [S],
) -> (usize, S) {
    let mut last = (0, S::ZERO);
    for &c in centers {
        last = space.relax_all_max(c, nearest);
    }
    last
}

/// `k` consecutive relax rounds on the grid arm: one [`GridRelaxer`] build
/// (charged here, exactly as `select_centers` pays it) plus `k` occupied-
/// cell sweeps.  `members` must be the identity id list of `space`; `None`
/// when the grid refuses the space.
pub fn grid_relax_rounds<S: Scalar>(
    space: &VecSpace<Euclidean, S>,
    members: &[usize],
    centers: &[usize],
    nearest: &mut [S],
) -> Option<(usize, S)> {
    let mut relaxer = GridRelaxer::build(space, members)?;
    let mut last = (0, S::ZERO);
    for &c in centers {
        last = relaxer.relax_max(space, members, c, nearest);
    }
    Some(last)
}

/// One dense assignment scan: per-point argmin over `centers` with
/// smallest-position tie-breaking — the dense arm of `evaluate::assign`
/// and the coreset weights round.  Returns a label checksum so the work
/// cannot be discarded.
pub fn dense_assign_scan<S: Scalar>(space: &VecSpace<Euclidean, S>, centers: &[usize]) -> u64 {
    let mut acc = 0u64;
    for p in 0..space.len() {
        let mut best = 0usize;
        let mut best_d = space.cmp_distance(p, centers[0]);
        for (i, &c) in centers.iter().enumerate().skip(1) {
            let d = space.cmp_distance(p, c);
            if d < best_d {
                best = i;
                best_d = d;
            }
        }
        acc = acc.wrapping_add(best as u64);
    }
    acc
}

/// One grid assignment scan: bucket the centers once ([`NEAREST_OCCUPANCY`],
/// charged here) and answer every point's nearest-center query from the
/// ring sweep.  `None` when the grid refuses the center set.
pub fn grid_assign_scan<S: Scalar>(
    space: &VecSpace<Euclidean, S>,
    centers: &[usize],
) -> Option<u64> {
    let grid = SpatialGrid::build(space, centers, NEAREST_OCCUPANCY)?;
    let mut acc = 0u64;
    for p in 0..space.len() {
        acc = acc.wrapping_add(grid.nearest_member(space, centers, p).0 as u64);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_data::{PointGenerator, UnifGenerator};

    #[test]
    fn old_and_flat_iterations_pick_the_same_farthest_point() {
        let g = UnifGenerator::with_dim_and_side(2_000, 3, 100.0);
        let flat = g.generate_flat(5);
        let points = flat.to_points();
        let space = VecSpace::from_flat(flat);
        let mut old_nearest = vec![f64::INFINITY; points.len()];
        let mut flat_nearest = vec![f64::INFINITY; points.len()];
        let (old_far, old_d) = old_iteration(&points, 0, &mut old_nearest);
        let (flat_far, flat_d) = flat_iteration(&space, 0, &mut flat_nearest);
        assert_eq!(old_far, flat_far, "layouts disagree on the farthest point");
        // Old scan reports a distance, flat scan a squared distance.
        assert!((old_d * old_d - flat_d).abs() <= 1e-9 * (1.0 + flat_d));
        let mut par_nearest = vec![f64::INFINITY; points.len()];
        let (par_far, par_d) = flat_par_iteration(&space, 0, &mut par_nearest);
        assert_eq!((flat_far, flat_d), (par_far, par_d));
        assert_eq!(flat_nearest, par_nearest);
    }

    #[test]
    fn f32_iteration_picks_the_same_farthest_point_as_f64() {
        let g = UnifGenerator::with_dim_and_side(2_000, 16, 100.0);
        let flat64 = g.generate_flat(5);
        let flat32 = g.generate_flat_at::<f32>(5);
        let space64 = VecSpace::from_flat(flat64);
        let space32 = VecSpace::from_flat(flat32);
        let mut near64 = vec![f64::INFINITY; 2_000];
        let mut near32 = vec![f32::INFINITY; 2_000];
        let (far64, d64) = flat_iteration(&space64, 0, &mut near64);
        let (far32, d32) = flat_iteration(&space32, 0, &mut near32);
        assert_eq!(far64, far32, "precisions disagree on the farthest point");
        // The f32 surrogate matches the f64 one to input-rounding accuracy.
        assert!((d64 - d32 as f64).abs() <= 1e-4 * (1.0 + d64));
    }

    #[test]
    fn backend_pinned_iterations_agree_on_the_farthest_point() {
        // Parity check at the kernel level (no global dispatch mutation, so
        // concurrently running tests are unaffected): every available
        // backend picks the same farthest point on a random 16-d cloud.
        let g = UnifGenerator::with_dim_and_side(2_000, 16, 100.0);
        let flat = g.generate_flat(5);
        let mut reference: Option<(usize, f64)> = None;
        for backend in simd::available_backends() {
            let mut nearest = vec![f64::INFINITY; 2_000];
            let got = kernel::relax_max_rows_coords_with(
                backend,
                flat.coords(),
                16,
                flat.row(0),
                &mut nearest,
            );
            match reference {
                None => reference = Some(got),
                Some((pos, val)) => {
                    assert_eq!(got.0, pos, "{backend}: winner diverged");
                    assert!(
                        (got.1 - val).abs() <= 1e-9 * (1.0 + val),
                        "{backend}: value diverged ({} vs {val})",
                        got.1
                    );
                }
            }
        }
    }

    #[test]
    fn grid_and_dense_bench_arms_agree() {
        // Integer-snapped coordinates keep every squared distance exactly
        // representable, so the per-pair kernel the grid arm scans with and
        // the fused-rows kernel the dense arm scans with return identical
        // bits on every backend — the cross-kernel contract the simd module
        // documents.  On raw float coordinates the two code paths may
        // differ in the last ulps under AVX2 (different documented
        // reduction orders), which is a kernel property, not a grid bug.
        let snapped: Vec<f64> = clustered_flat::<f64>(4_000, 4, 25, 11)
            .coords()
            .iter()
            .map(|c| c.round())
            .collect();
        let flat = FlatPoints::from_coords(snapped, 4).expect("consistent dims");
        let space = VecSpace::from_flat(flat);
        let members: Vec<usize> = (0..space.len()).collect();
        let centers = gonzalez_centers(&space, 40);

        let mut dense_nearest = vec![f64::INFINITY; space.len()];
        let mut grid_nearest = dense_nearest.clone();
        let dense = dense_relax_rounds(&space, &centers, &mut dense_nearest);
        let grid = grid_relax_rounds(&space, &members, &centers, &mut grid_nearest)
            .expect("clustered f64 instance buckets fine");
        assert_eq!(dense, grid);
        assert_eq!(dense_nearest, grid_nearest);

        let dense_sum = dense_assign_scan(&space, &centers);
        let grid_sum = grid_assign_scan(&space, &centers).expect("center set buckets fine");
        assert_eq!(dense_sum, grid_sum);
    }

    #[test]
    fn fused_iteration_matches_separate_relax_and_argmax() {
        let g = UnifGenerator::with_dim_and_side(3_000, 2, 50.0);
        let space = VecSpace::from_flat(g.generate_flat(9));
        let subset: Vec<usize> = (0..space.len()).collect();
        let mut fused = vec![f64::INFINITY; subset.len()];
        let mut separate = fused.clone();
        for center in [0usize, 77, 1_500] {
            let got = flat_iteration(&space, center, &mut fused);
            space.relax_nearest(&subset, center, &mut separate);
            let want = kernel::argmax(&separate).unwrap();
            assert_eq!(got, want);
        }
        assert_eq!(fused, separate);
        // The subset-based fused path agrees with the identity fast path.
        let mut via_subset = vec![f64::INFINITY; subset.len()];
        for center in [0usize, 77, 1_500] {
            space.relax_nearest_max(&subset, center, &mut via_subset);
        }
        assert_eq!(fused, via_subset);
    }
}
