//! The flat-layout micro-benchmark: old pointer-chasing scan vs the new
//! SoA kernels.
//!
//! Both `bench_flat` (Criterion) and the `flat_report` binary (which writes
//! `BENCH_flat.json`) measure the same operation — one Gonzalez iteration,
//! i.e. one "relax nearest-center distances against a new center" pass plus
//! the farthest-point argmax — on the two layouts:
//!
//! * **old**: `Vec<Point>` (one heap allocation per point), Euclidean
//!   distance with a `sqrt` per point-center pair, separate relax and
//!   argmax passes — a faithful replica of the pre-flat implementation;
//! * **flat**: the fused `relax_nearest_max` pass over [`FlatPoints`] rows
//!   in squared space — exactly what `select_centers` now runs — plus the
//!   chunked-parallel variant, at **both storage precisions** (`f64` and
//!   `f32`; the scan is DRAM-bound at n = 1M, so the halved bytes of the
//!   `f32` rows are the measurement that justifies the precision mode).

use kcenter_metric::kernel::{self, simd};
use kcenter_metric::{
    Distance, Euclidean, FlatPoints, KernelBackend, MetricSpace, Point, Scalar, VecSpace,
};

/// Materialises the rows of `flat` as owned `Point`s whose heap allocations
/// happen in a (deterministically) shuffled order, while the resulting
/// vector stays in row order.
///
/// A freshly built `Vec<Point>` gets its coordinate buffers laid out
/// sequentially by the allocator — the best possible case for the old
/// layout, and not the one a real run sees: the seed generators allocated
/// points from parallel workers (interleaving per-thread arenas), and any
/// long-lived process ages its heap.  Scanning shuffled-order allocations
/// shows the pointer-chasing cost the flat store removes by construction.
pub fn to_points_aged_heap(flat: &FlatPoints, seed: u64) -> Vec<Point> {
    let n = flat.len();
    let mut perm: Vec<usize> = (0..n).collect();
    // Deterministic Fisher–Yates on a SplitMix64 stream.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    let mut slots: Vec<Option<Point>> = (0..n).map(|_| None).collect();
    for &row in &perm {
        slots[row] = Some(flat.point(row));
    }
    slots
        .into_iter()
        .map(|p| p.expect("every row placed"))
        .collect()
}

/// The old-layout scan: for every point, re-derive its distance to the new
/// center through the per-point `Vec<f64>` and a `sqrt`, and relax the
/// running nearest-center array.  The center is re-indexed per pair, just
/// as the pre-flat `space.distance(p, new_center)` call did.
pub fn old_relax_nearest(points: &[Point], center: usize, nearest: &mut [f64]) {
    for (slot, p) in nearest.iter_mut().zip(points) {
        let d = Euclidean.distance(p, &points[center]);
        if d < *slot {
            *slot = d;
        }
    }
}

/// The old-layout argmax (identical logic to [`kernel::argmax`]; the layout
/// difference is entirely in the relaxation scan).
pub fn old_argmax(nearest: &[f64]) -> Option<(usize, f64)> {
    kernel::argmax(nearest)
}

/// One Gonzalez iteration on the old layout (two passes); returns the
/// farthest point so the compiler cannot discard the work.
pub fn old_iteration(points: &[Point], center: usize, nearest: &mut [f64]) -> (usize, f64) {
    old_relax_nearest(points, center, nearest);
    old_argmax(nearest).expect("non-empty scan")
}

/// One Gonzalez iteration on the flat layout: the fused row-streaming pass
/// `select_centers` runs on the full space, at whatever storage precision
/// the space carries.
pub fn flat_iteration<S: Scalar>(
    space: &VecSpace<Euclidean, S>,
    center: usize,
    nearest: &mut [S],
) -> (usize, S) {
    space.relax_all_max(center, nearest)
}

/// One Gonzalez iteration on the flat layout, chunked-parallel variant.
pub fn flat_par_iteration<S: Scalar>(
    space: &VecSpace<Euclidean, S>,
    center: usize,
    nearest: &mut [S],
) -> (usize, S) {
    space.par_relax_all_max(center, nearest)
}

/// [`flat_iteration`] under an explicit kernel backend — the A/B harness
/// entry: installs the backend in the dispatch table, then runs the same
/// fused pass the solvers run.  The `flat_report` binary interleaves this
/// across backends so `BENCH_flat.json` carries scalar and SIMD rows from
/// one measurement loop.
///
/// # Panics
///
/// Panics if `backend` is not available in this build on this machine.
pub fn flat_iteration_under<S: Scalar>(
    backend: KernelBackend,
    space: &VecSpace<Euclidean, S>,
    center: usize,
    nearest: &mut [S],
) -> (usize, S) {
    simd::set_active(backend).expect("requested kernel backend is available");
    space.relax_all_max(center, nearest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_data::{PointGenerator, UnifGenerator};

    #[test]
    fn old_and_flat_iterations_pick_the_same_farthest_point() {
        let g = UnifGenerator::with_dim_and_side(2_000, 3, 100.0);
        let flat = g.generate_flat(5);
        let points = flat.to_points();
        let space = VecSpace::from_flat(flat);
        let mut old_nearest = vec![f64::INFINITY; points.len()];
        let mut flat_nearest = vec![f64::INFINITY; points.len()];
        let (old_far, old_d) = old_iteration(&points, 0, &mut old_nearest);
        let (flat_far, flat_d) = flat_iteration(&space, 0, &mut flat_nearest);
        assert_eq!(old_far, flat_far, "layouts disagree on the farthest point");
        // Old scan reports a distance, flat scan a squared distance.
        assert!((old_d * old_d - flat_d).abs() <= 1e-9 * (1.0 + flat_d));
        let mut par_nearest = vec![f64::INFINITY; points.len()];
        let (par_far, par_d) = flat_par_iteration(&space, 0, &mut par_nearest);
        assert_eq!((flat_far, flat_d), (par_far, par_d));
        assert_eq!(flat_nearest, par_nearest);
    }

    #[test]
    fn f32_iteration_picks_the_same_farthest_point_as_f64() {
        let g = UnifGenerator::with_dim_and_side(2_000, 16, 100.0);
        let flat64 = g.generate_flat(5);
        let flat32 = g.generate_flat_at::<f32>(5);
        let space64 = VecSpace::from_flat(flat64);
        let space32 = VecSpace::from_flat(flat32);
        let mut near64 = vec![f64::INFINITY; 2_000];
        let mut near32 = vec![f32::INFINITY; 2_000];
        let (far64, d64) = flat_iteration(&space64, 0, &mut near64);
        let (far32, d32) = flat_iteration(&space32, 0, &mut near32);
        assert_eq!(far64, far32, "precisions disagree on the farthest point");
        // The f32 surrogate matches the f64 one to input-rounding accuracy.
        assert!((d64 - d32 as f64).abs() <= 1e-4 * (1.0 + d64));
    }

    #[test]
    fn backend_pinned_iterations_agree_on_the_farthest_point() {
        // Parity check at the kernel level (no global dispatch mutation, so
        // concurrently running tests are unaffected): every available
        // backend picks the same farthest point on a random 16-d cloud.
        let g = UnifGenerator::with_dim_and_side(2_000, 16, 100.0);
        let flat = g.generate_flat(5);
        let mut reference: Option<(usize, f64)> = None;
        for backend in simd::available_backends() {
            let mut nearest = vec![f64::INFINITY; 2_000];
            let got = kernel::relax_max_rows_coords_with(
                backend,
                flat.coords(),
                16,
                flat.row(0),
                &mut nearest,
            );
            match reference {
                None => reference = Some(got),
                Some((pos, val)) => {
                    assert_eq!(got.0, pos, "{backend}: winner diverged");
                    assert!(
                        (got.1 - val).abs() <= 1e-9 * (1.0 + val),
                        "{backend}: value diverged ({} vs {val})",
                        got.1
                    );
                }
            }
        }
    }

    #[test]
    fn fused_iteration_matches_separate_relax_and_argmax() {
        let g = UnifGenerator::with_dim_and_side(3_000, 2, 50.0);
        let space = VecSpace::from_flat(g.generate_flat(9));
        let subset: Vec<usize> = (0..space.len()).collect();
        let mut fused = vec![f64::INFINITY; subset.len()];
        let mut separate = fused.clone();
        for center in [0usize, 77, 1_500] {
            let got = flat_iteration(&space, center, &mut fused);
            space.relax_nearest(&subset, center, &mut separate);
            let want = kernel::argmax(&separate).unwrap();
            assert_eq!(got, want);
        }
        assert_eq!(fused, separate);
        // The subset-based fused path agrees with the identity fast path.
        let mut via_subset = vec![f64::INFINITY; subset.len()];
        for center in [0usize, 77, 1_500] {
            space.relax_nearest_max(&subset, center, &mut via_subset);
        }
        assert_eq!(fused, via_subset);
    }
}
