//! Running one algorithm on one data set and recording the paper's metrics.

use kcenter_core::prelude::*;
use kcenter_metric::{MetricSpace, VecSpace};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The algorithm families compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Sequential Gonzalez baseline (2-approximation).
    Gon,
    /// MapReduce Gonzalez (typically two rounds, 4-approximation).
    Mrg,
    /// The iterative-sampling algorithm with the given pivot parameter φ
    /// (φ = 8 reproduces the original Ene et al. scheme).
    Eim {
        /// The pivot-rank parameter.
        phi: f64,
    },
}

impl Algorithm {
    /// The label used in the paper's tables and figures.
    pub fn label(&self) -> String {
        match self {
            Algorithm::Gon => "GON".to_string(),
            Algorithm::Mrg => "MRG".to_string(),
            Algorithm::Eim { phi } if (*phi - 8.0).abs() < 1e-9 => "EIM".to_string(),
            Algorithm::Eim { phi } => format!("EIM(phi={phi})"),
        }
    }

    /// The three algorithms as compared in Tables 2–5 and Figures 1–4.
    pub fn paper_trio() -> Vec<Algorithm> {
        vec![Algorithm::Mrg, Algorithm::Eim { phi: 8.0 }, Algorithm::Gon]
    }
}

/// One measurement: an algorithm run on a concrete instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Algorithm label (e.g. `"MRG"`).
    pub algorithm: String,
    /// Number of points in the instance.
    pub n: usize,
    /// Number of centers requested.
    pub k: usize,
    /// The paper's *solution value*: the covering radius.
    pub value: f64,
    /// The paper's *runtime* metric in seconds: for the parallel algorithms
    /// the sum over rounds of the slowest machine's processing time, for
    /// GON its sequential wall clock.
    pub runtime_seconds: f64,
    /// Real wall-clock seconds of the (rayon-parallel) execution.
    pub wall_seconds: f64,
    /// Number of MapReduce rounds (0 for the sequential baseline).
    pub mapreduce_rounds: usize,
    /// EIM only: whether sampling never ran because `n` was already below
    /// the loop threshold.
    pub fell_back_to_sequential: bool,
}

/// Shared knobs for a measurement run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasureConfig {
    /// Number of simulated machines (the paper uses 50).
    pub machines: usize,
    /// Sampling / seeding for algorithm-internal randomness.
    pub seed: u64,
    /// EIM's ε (the paper uses 0.1).
    pub epsilon: f64,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self {
            machines: 50,
            seed: 0,
            epsilon: 0.1,
        }
    }
}

/// Runs `algorithm` with `k` centers on `space` and records the metrics.
///
/// # Panics
///
/// Panics if the underlying algorithm reports an error (the harness always
/// builds valid configurations, so an error indicates a bug worth failing
/// loudly on).
pub fn run(space: &VecSpace, algorithm: Algorithm, k: usize, config: MeasureConfig) -> Measurement {
    let n = space.len();
    match algorithm {
        Algorithm::Gon => {
            let start = Instant::now();
            let sol = GonzalezConfig::new(k)
                .solve(space)
                .expect("GON failed on a harness-generated instance");
            let elapsed = start.elapsed().as_secs_f64();
            Measurement {
                algorithm: algorithm.label(),
                n,
                k,
                value: sol.radius,
                runtime_seconds: elapsed,
                wall_seconds: elapsed,
                mapreduce_rounds: 0,
                fell_back_to_sequential: false,
            }
        }
        Algorithm::Mrg => {
            let result = MrgConfig::new(k)
                .with_machines(config.machines)
                .with_unchecked_capacity()
                .with_first_center(FirstCenter::Seeded(config.seed))
                .run(space)
                .expect("MRG failed on a harness-generated instance");
            Measurement {
                algorithm: algorithm.label(),
                n,
                k,
                value: result.solution.radius,
                runtime_seconds: result.stats.simulated_time().as_secs_f64(),
                wall_seconds: result.stats.wall_time().as_secs_f64(),
                mapreduce_rounds: result.mapreduce_rounds,
                fell_back_to_sequential: false,
            }
        }
        Algorithm::Eim { phi } => {
            let result = EimConfig::new(k)
                .with_machines(config.machines)
                .with_epsilon(config.epsilon)
                .with_phi(phi)
                .with_seed(config.seed)
                .with_first_center(FirstCenter::Seeded(config.seed))
                .run(space)
                .expect("EIM failed on a harness-generated instance");
            Measurement {
                algorithm: algorithm.label(),
                n,
                k,
                value: result.solution.radius,
                runtime_seconds: result.stats.simulated_time().as_secs_f64(),
                wall_seconds: result.stats.wall_time().as_secs_f64(),
                mapreduce_rounds: result.mapreduce_rounds,
                fell_back_to_sequential: result.fell_back_to_sequential,
            }
        }
    }
}

/// Runs the same configuration over several seeds and averages value and
/// runtime — the paper averages multiple runs over multiple generated
/// graphs.
pub fn run_averaged(
    space: &VecSpace,
    algorithm: Algorithm,
    k: usize,
    base_config: MeasureConfig,
    repeats: usize,
) -> Measurement {
    assert!(repeats > 0, "at least one repeat is required");
    let mut acc: Option<Measurement> = None;
    for r in 0..repeats {
        let config = MeasureConfig {
            seed: base_config.seed.wrapping_add(r as u64),
            ..base_config
        };
        let m = run(space, algorithm, k, config);
        acc = Some(match acc {
            None => m,
            Some(prev) => Measurement {
                value: prev.value + m.value,
                runtime_seconds: prev.runtime_seconds + m.runtime_seconds,
                wall_seconds: prev.wall_seconds + m.wall_seconds,
                mapreduce_rounds: prev.mapreduce_rounds.max(m.mapreduce_rounds),
                fell_back_to_sequential: prev.fell_back_to_sequential || m.fell_back_to_sequential,
                ..prev
            },
        });
    }
    let mut out = acc.expect("repeats > 0");
    out.value /= repeats as f64;
    out.runtime_seconds /= repeats as f64;
    out.wall_seconds /= repeats as f64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_data::{DatasetSpec, PointGenerator, UnifGenerator};

    fn small_space() -> VecSpace {
        VecSpace::from_flat(UnifGenerator::new(400).generate_flat(1))
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(Algorithm::Gon.label(), "GON");
        assert_eq!(Algorithm::Mrg.label(), "MRG");
        assert_eq!(Algorithm::Eim { phi: 8.0 }.label(), "EIM");
        assert_eq!(Algorithm::Eim { phi: 4.0 }.label(), "EIM(phi=4)");
        assert_eq!(Algorithm::paper_trio().len(), 3);
    }

    #[test]
    fn all_three_algorithms_produce_comparable_values() {
        let space = small_space();
        let config = MeasureConfig {
            machines: 8,
            ..Default::default()
        };
        let measurements: Vec<Measurement> = Algorithm::paper_trio()
            .into_iter()
            .map(|a| run(&space, a, 5, config))
            .collect();
        for m in &measurements {
            assert_eq!(m.k, 5);
            assert_eq!(m.n, 400);
            assert!(m.value.is_finite() && m.value > 0.0);
            assert!(m.runtime_seconds >= 0.0);
        }
        // All three are constant-factor approximations of the same optimum,
        // so their values are within a factor of 10 of one another.
        let max = measurements.iter().map(|m| m.value).fold(0.0, f64::max);
        let min = measurements
            .iter()
            .map(|m| m.value)
            .fold(f64::INFINITY, f64::min);
        assert!(
            max / min < 10.0,
            "values diverge implausibly: {min} vs {max}"
        );
    }

    #[test]
    fn mrg_reports_mapreduce_rounds_gon_does_not() {
        let space = small_space();
        let config = MeasureConfig {
            machines: 8,
            ..Default::default()
        };
        let gon = run(&space, Algorithm::Gon, 3, config);
        let mrg = run(&space, Algorithm::Mrg, 3, config);
        assert_eq!(gon.mapreduce_rounds, 0);
        assert!(mrg.mapreduce_rounds >= 1);
    }

    #[test]
    fn averaging_reduces_to_single_run_for_one_repeat() {
        let space = small_space();
        let config = MeasureConfig {
            machines: 4,
            ..Default::default()
        };
        let a = run(&space, Algorithm::Mrg, 4, config);
        let b = run_averaged(&space, Algorithm::Mrg, 4, config, 1);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn averaged_measurements_average_the_value() {
        let space = VecSpace::from_flat(DatasetSpec::Gau { n: 600, k_prime: 4 }.generate_flat(3));
        let config = MeasureConfig {
            machines: 4,
            ..Default::default()
        };
        let avg = run_averaged(&space, Algorithm::Eim { phi: 8.0 }, 4, config, 3);
        assert!(avg.value.is_finite() && avg.value > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one repeat")]
    fn zero_repeats_is_rejected() {
        run_averaged(
            &small_space(),
            Algorithm::Gon,
            2,
            MeasureConfig::default(),
            0,
        );
    }
}
