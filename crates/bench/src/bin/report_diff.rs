//! Compares two scenario reports against per-metric tolerances — the CI
//! regression gate.
//!
//! Usage:
//! `cargo run --release -p kcenter-bench --bin report_diff -- BASE.json
//!  CURRENT.json [--radius-tol T] [--sim-tol F] [--wall-tol F]`
//!
//! The deterministic metrics (center-set digest, center count, MapReduce
//! rounds, coverage fraction) are always compared exactly; the certified
//! radii admit an absolute tolerance `--radius-tol` (default 0: exact,
//! which is sound because reports round-trip `f64` bit-exactly).  The
//! timing columns are only gated when `--sim-tol` / `--wall-tol` give an
//! allowed fractional slowdown (e.g. `0.25` = 25%) — committed baselines
//! come from other machines, so wall time stays ungated by default.
//!
//! Exit status: 0 when the gate passes, 1 on any regression, 2 on a
//! usage/parse error.

use kcenter_bench::scenario::{diff_reports, DiffTolerances, ScenarioReport};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(regressions) if regressions.is_empty() => {
            eprintln!("report_diff: gate passes (no regressions)");
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            eprintln!("report_diff: {} regression(s):", regressions.len());
            for line in &regressions {
                eprintln!("  {line}");
            }
            ExitCode::from(1)
        }
        Err(message) => {
            eprintln!("report_diff: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<Vec<String>, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut tol = DiffTolerances::default();

    let parse_frac = |raw: &str, flag: &str| {
        raw.parse::<f64>()
            .ok()
            .filter(|f| f.is_finite() && *f >= 0.0)
            .ok_or_else(|| format!("{flag} {raw:?} is not a non-negative number"))
    };

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--radius-tol" => {
                let raw = it.next().ok_or("--radius-tol needs a value")?;
                tol.radius = parse_frac(&raw, "--radius-tol")?;
            }
            "--sim-tol" => {
                let raw = it.next().ok_or("--sim-tol needs a value")?;
                tol.simulated_frac = Some(parse_frac(&raw, "--sim-tol")?);
            }
            "--wall-tol" => {
                let raw = it.next().ok_or("--wall-tol needs a value")?;
                tol.wall_frac = Some(parse_frac(&raw, "--wall-tol")?);
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: report_diff BASE.json CURRENT.json [--radius-tol T] [--sim-tol F] [--wall-tol F]"
                );
                return Ok(Vec::new());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}"));
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.len() != 2 {
        return Err("expected exactly two report files: BASE.json CURRENT.json".to_string());
    }

    let load = |path: &str| -> Result<ScenarioReport, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        ScenarioReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = load(&paths[0])?;
    let current = load(&paths[1])?;
    eprintln!(
        "comparing {} cells (baseline) vs {} cells (current), radius tol {}",
        baseline.cells.len(),
        current.cells.len(),
        tol.radius
    );
    Ok(diff_reports(&baseline, &current, &tol))
}
