//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro list
//! repro table2 [--scale 0.05] [--machines 50] [--repeats 2] [--seed 1]
//! repro all    [--scale 0.02] ...
//! repro all --out EXPERIMENTS_RAW.md
//! ```
//!
//! `--scale 1.0` reproduces the paper's workload sizes (up to a million
//! points); smaller scales shrink every `n` proportionally so the full suite
//! finishes quickly while keeping the qualitative shape.

use kcenter_bench::experiments::{all_experiments, find_experiment, run_experiment, RunOptions};
use kcenter_bench::report::{render_all, render_result};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    let command = args[0].clone();
    if command == "list" {
        for e in all_experiments() {
            println!("{:10}  {}", e.id, e.title);
        }
        return;
    }
    if command == "--help" || command == "-h" || command == "help" {
        print_usage();
        return;
    }

    let (options, out_path) = match parse_options(&args[1..]) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            print_usage();
            std::process::exit(2);
        }
    };

    let output = if command == "all" {
        let results: Vec<_> = all_experiments()
            .iter()
            .map(|e| {
                eprintln!("running {} ...", e.id);
                run_experiment(e, options)
            })
            .collect();
        render_all(&results)
    } else {
        match find_experiment(&command) {
            Some(e) => render_result(&run_experiment(&e, options)),
            None => {
                eprintln!("error: unknown experiment {command:?}; use `repro list`");
                std::process::exit(2);
            }
        }
    };

    match out_path {
        Some(path) => {
            let mut f = std::fs::File::create(&path).expect("cannot create output file");
            f.write_all(output.as_bytes())
                .expect("cannot write output file");
            eprintln!("wrote {path}");
        }
        None => print!("{output}"),
    }
}

fn parse_options(args: &[String]) -> Result<(RunOptions, Option<String>), String> {
    let mut options = RunOptions::default();
    let mut out = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--scale" => {
                options.scale = value
                    .parse()
                    .map_err(|_| format!("bad --scale {value:?}"))?
            }
            "--machines" => {
                options.machines = value
                    .parse()
                    .map_err(|_| format!("bad --machines {value:?}"))?
            }
            "--repeats" => {
                options.repeats = value
                    .parse()
                    .map_err(|_| format!("bad --repeats {value:?}"))?
            }
            "--seed" => {
                options.seed = value.parse().map_err(|_| format!("bad --seed {value:?}"))?
            }
            "--out" => out = Some(value.clone()),
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if options.scale <= 0.0 {
        return Err("--scale must be positive".to_string());
    }
    if options.machines == 0 || options.repeats == 0 {
        return Err("--machines and --repeats must be at least 1".to_string());
    }
    Ok((options, out))
}

fn print_usage() {
    eprintln!(
        "usage: repro <experiment-id | all | list> [--scale F] [--machines M] [--repeats R] [--seed S] [--out FILE]\n\
         experiment ids: table1..table7, figure1, figure2a, figure2b, figure3a, figure3b, figure4a, figure4b"
    );
}
