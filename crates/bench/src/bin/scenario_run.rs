//! Runs a declarative scenario spec and writes the JSON report.
//!
//! Usage:
//! `cargo run --release -p kcenter-bench --bin scenario_run -- SPEC
//!  [--out OUT.json] [--scale F]`
//!
//! `SPEC` is a TOML (or JSON) scenario file — see
//! `kcenter_bench::scenario` for the format and `scenarios/` for the
//! committed matrices.  `--scale F` multiplies every dataset's `n` by `F`
//! (CI runs the committed scenarios shrunk this way).  The report lands in
//! `--out`, defaulting to `REPORT_<name>.json` next to the working
//! directory.
//!
//! Exit status: 0 on success, 2 on any spec/runtime error.

use kcenter_bench::scenario::{run_scenario_with, ScenarioSpec};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("scenario_run: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut spec_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut scale: f64 = 1.0;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out_path = Some(it.next().ok_or("--out needs a file path")?);
            }
            "--scale" => {
                let raw = it.next().ok_or("--scale needs a factor")?;
                scale = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|f| f.is_finite() && *f > 0.0)
                    .ok_or_else(|| format!("--scale {raw:?} is not a positive number"))?;
            }
            "--help" | "-h" => {
                eprintln!("usage: scenario_run SPEC [--out OUT.json] [--scale F]");
                return Ok(());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}"));
            }
            other => {
                if spec_path.replace(other.to_string()).is_some() {
                    return Err("exactly one SPEC file expected".to_string());
                }
            }
        }
    }

    let spec_path = spec_path.ok_or("usage: scenario_run SPEC [--out OUT.json] [--scale F]")?;
    let text = std::fs::read_to_string(&spec_path)
        .map_err(|e| format!("cannot read {spec_path:?}: {e}"))?;
    let mut spec = ScenarioSpec::parse(&text).map_err(|e| e.to_string())?;
    if scale != 1.0 {
        spec = spec.scaled(scale);
    }

    let total = spec.cells().len() + spec.ingest_cells().len();
    eprintln!(
        "scenario {:?}: {} cells (seed {}, k {})",
        spec.name, total, spec.seed, spec.k
    );
    let report = run_scenario_with(&spec, |index, id| {
        eprintln!("  [{}/{}] {id}", index + 1, total);
    })
    .map_err(|e| e.to_string())?;

    let out_path = out_path.unwrap_or_else(|| format!("REPORT_{}.json", spec.name));
    std::fs::write(&out_path, report.to_json())
        .map_err(|e| format!("cannot write {out_path:?}: {e}"))?;
    eprintln!("wrote {out_path}");
    Ok(())
}
