//! Writes `BENCH_flat.json`: throughput of the hot nearest-center scan on
//! the old `Vec<Point>` layout vs the new flat SoA kernels, at both storage
//! precisions (`f64` and `f32`).
//!
//! Usage: `cargo run --release -p kcenter-bench --bin flat_report [out.json]`
//!
//! Each configuration is warmed up, then measured as the best-of-`REPEATS`
//! wall time of one full scan (relax + argmax over all n points), matching
//! the `bench_flat` Criterion bench.  Both `Vec<Point>` baselines are kept
//! (ROADMAP "heap-layout honesty"): *fresh* heaps allocate the per-point
//! Vecs sequentially — the allocator best case — while *aged* heaps shuffle
//! the allocation order the way parallel generators and long-lived
//! processes do.
//!
//! A second section (`sweep_results`) measures the coreset layer's
//! build-once/solve-many amortisation: one weighted coreset (Gonzalez and
//! EIM builders, both storage precisions) against per-cell EIM reruns over
//! a `(k, φ)` grid, charged in the paper's simulated-time metric.
//!
//! A third section (`executor_results`) runs the same MRG job on the
//! simulated executor and on the threaded one per worker budget,
//! verifying bit-identical outputs and recording real wall-clock round
//! time next to `executor` / `threads` / `host_cores` — so a single-core
//! measuring host's thread overhead is disclosed rather than hidden.

use kcenter_bench::execbench::{run_executor_comparison, ExecutorComparison};
use kcenter_bench::flatbench::{
    clustered_flat, dense_assign_scan, dense_relax_rounds, flat_iteration_under,
    flat_par_iteration, gonzalez_centers, grid_assign_scan, grid_relax_rounds, old_iteration,
    to_points_aged_heap,
};
use kcenter_bench::sweepbench::{run_sweep_comparison, SweepBuilder, SweepComparison};
use kcenter_data::{DatasetSpec, PointGenerator, UnifGenerator};
use kcenter_metric::kernel::simd;
use kcenter_metric::{KernelBackend, KernelChoice, Scalar, VecSpace};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];
const DIMS: [usize; 2] = [2, 16];
const WARMUP: usize = 2;
const REPEATS: usize = 7;
/// Grid-vs-dense assignment benchmark: dimensions the spatial grid
/// targets (bucketing stops paying above d = 16).
const ASSIGN_DIMS: [usize; 4] = [2, 4, 8, 16];
/// Headline assignment rows: the paper-scale clustered workload.
const ASSIGN_N: usize = 1_000_000;
const ASSIGN_K: usize = 50;
/// Crossover sweep: candidate counts probed per dimension at a reduced
/// point count (the crossover is a per-scan property, not a scale one).
const CROSS_N: usize = 1 << 18;
const CROSS_KS: [usize; 7] = [4, 8, 12, 16, 24, 32, 48];
/// The assignment sections measure heavier scans (k candidates per point,
/// not 1), so they use a lighter best-of.
const ASSIGN_WARMUP: usize = 1;
const ASSIGN_REPEATS: usize = 3;
/// Scans per timed block: one block = one `select_centers(k = SCANS + 1)`
/// worth of consecutive nearest-center scans, the way the solver actually
/// runs them (so each layout sees its own true cache residency).
const SCANS: usize = 8;

/// Best-of-`REPEATS` wall times of the scan variants, measured
/// **interleaved** (old, flat64, flat32, old, flat64, flat32, …) after
/// `WARMUP` untimed rounds.  Interleaving plus best-of damps the scheduling
/// and bandwidth noise of shared machines, which would otherwise skew a
/// ratio whose sides were measured at different times.
fn best_interleaved(variants: &mut [&mut dyn FnMut()]) -> Vec<u128> {
    best_interleaved_n(WARMUP, REPEATS, variants)
}

/// [`best_interleaved`] with explicit round counts (the assignment
/// sections use fewer rounds per configuration — each block is k scans).
fn best_interleaved_n(
    warmup: usize,
    repeats: usize,
    variants: &mut [&mut dyn FnMut()],
) -> Vec<u128> {
    let mut best = vec![u128::MAX; variants.len()];
    for round in 0..warmup + repeats {
        for (slot, f) in best.iter_mut().zip(variants.iter_mut()) {
            let start = Instant::now();
            f();
            let t = start.elapsed().as_nanos();
            if round >= warmup {
                *slot = (*slot).min(t);
            }
        }
    }
    best
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_flat.json".to_string());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The *_simd rows run under whatever KCENTER_KERNEL resolves to (auto
    // by default: AVX2+FMA when built with `--features simd` on a
    // supporting CPU, the portable lanes otherwise) — so the scalar-vs-SIMD
    // A/B is reproducible by pinning the variable.  The scalar rows pin
    // KernelBackend::Scalar inside the same interleaved loop.
    let simd_kernel = KernelChoice::from_env()
        .and_then(KernelChoice::resolve)
        .unwrap_or_else(|e| panic!("{e}"));
    eprintln!("dispatched SIMD kernel for *_simd rows: {simd_kernel}");

    let mut rows = Vec::new();
    for &dim in &DIMS {
        for &n in &SIZES {
            let generator = UnifGenerator::with_dim_and_side(n, dim, 1000.0);
            let flat = generator.generate_flat(42);
            // Same seed at f32: identical geometry, half the bytes per row.
            let flat32 = generator.generate_flat_at::<f32>(42);
            // "fresh": per-point Vecs allocated sequentially (the best case
            // for the old layout); "aged": allocation order shuffled, the
            // layout a parallel generator / long-lived heap produces.
            let points_fresh = flat.to_points();
            let points_aged = to_points_aged_heap(&flat, 7);
            let space = VecSpace::from_flat(flat);
            let space32 = VecSpace::from_flat(flat32);
            let nearest = std::cell::RefCell::new(vec![f64::INFINITY; n]);
            let nearest32 = std::cell::RefCell::new(vec![f32::INFINITY; n]);

            // Centers spread across the instance, as successive Gonzalez
            // picks would be.  Each variant resets only the nearest array
            // it actually scans — resetting both would add the same
            // absolute overhead to every timed block and bias the ratios
            // toward 1.
            let centers: Vec<usize> = (0..SCANS).map(|i| i * (n / SCANS)).collect();
            let block64 = |scan: &mut dyn FnMut(usize)| {
                nearest.borrow_mut().fill(f64::INFINITY);
                for &c in &centers {
                    scan(c);
                }
            };
            let block32 = |scan: &mut dyn FnMut(usize)| {
                nearest32.borrow_mut().fill(f32::INFINITY);
                for &c in &centers {
                    scan(c);
                }
            };
            let timed = best_interleaved(&mut [
                &mut || {
                    block64(&mut |c| {
                        black_box(old_iteration(&points_fresh, c, &mut nearest.borrow_mut()));
                    })
                },
                &mut || {
                    block64(&mut |c| {
                        black_box(old_iteration(&points_aged, c, &mut nearest.borrow_mut()));
                    })
                },
                &mut || {
                    block64(&mut |c| {
                        black_box(flat_iteration_under(
                            KernelBackend::Scalar,
                            &space,
                            c,
                            &mut nearest.borrow_mut(),
                        ));
                    })
                },
                &mut || {
                    simd::set_active(KernelBackend::Scalar).unwrap();
                    block64(&mut |c| {
                        black_box(flat_par_iteration(&space, c, &mut nearest.borrow_mut()));
                    })
                },
                &mut || {
                    block32(&mut |c| {
                        black_box(flat_iteration_under(
                            KernelBackend::Scalar,
                            &space32,
                            c,
                            &mut nearest32.borrow_mut(),
                        ));
                    })
                },
                &mut || {
                    simd::set_active(KernelBackend::Scalar).unwrap();
                    block32(&mut |c| {
                        black_box(flat_par_iteration(&space32, c, &mut nearest32.borrow_mut()));
                    })
                },
                &mut || {
                    block64(&mut |c| {
                        black_box(flat_iteration_under(
                            simd_kernel,
                            &space,
                            c,
                            &mut nearest.borrow_mut(),
                        ));
                    })
                },
                &mut || {
                    block32(&mut |c| {
                        black_box(flat_iteration_under(
                            simd_kernel,
                            &space32,
                            c,
                            &mut nearest32.borrow_mut(),
                        ));
                    })
                },
            ]);
            let per_scan: Vec<u128> = timed.iter().map(|t| t / SCANS as u128).collect();
            let (fresh_ns, aged_ns, flat_ns, par_ns, f32_ns, f32_par_ns, simd_ns, f32_simd_ns) = (
                per_scan[0],
                per_scan[1],
                per_scan[2],
                per_scan[3],
                per_scan[4],
                per_scan[5],
                per_scan[6],
                per_scan[7],
            );

            let mpts = |ns: u128| n as f64 / (ns as f64 / 1e9) / 1e6;
            eprintln!(
                "n={n:>9} d={dim:>2}  old_fresh {:>9} ns ({:>6.1} Mpt/s)  old_aged {:>9} ns  flat64 {:>9} ns ({:>6.1} Mpt/s, {:.2}x/{:.2}x)  flat32 {:>9} ns ({:>6.1} Mpt/s, {:.2}x vs flat64)  simd64 {:>9} ns  simd32 {:>9} ns ({:.2}x vs scalar flat64)  par64 {:>9} ns  par32 {:>9} ns",
                fresh_ns, mpts(fresh_ns), aged_ns, flat_ns, mpts(flat_ns),
                fresh_ns as f64 / flat_ns as f64,
                aged_ns as f64 / flat_ns as f64,
                f32_ns, mpts(f32_ns),
                flat_ns as f64 / f32_ns as f64,
                simd_ns,
                f32_simd_ns,
                flat_ns as f64 / f32_simd_ns as f64,
                par_ns,
                f32_par_ns,
            );
            rows.push((
                n,
                dim,
                fresh_ns,
                aged_ns,
                flat_ns,
                par_ns,
                f32_ns,
                f32_par_ns,
                simd_ns,
                f32_simd_ns,
            ));
        }
    }

    // ---- Grid-vs-dense assignment scans (ISSUE 7): the clustered
    // paper-scale headline rows, then the crossover sweep that the
    // `AssignChoice::Auto` constants are read from.  Both arms run under
    // the dispatched kernel backend, so the grid must beat the *SIMD*
    // dense scan, not a strawman.
    simd::set_active(simd_kernel).unwrap();
    let mut assign_rows = Vec::new();
    for &dim in &ASSIGN_DIMS {
        let space = VecSpace::from_flat(clustered_flat::<f64>(ASSIGN_N, dim, 25, 42));
        let members: Vec<usize> = (0..ASSIGN_N).collect();
        let centers = gonzalez_centers(&space, ASSIGN_K);
        let nearest = std::cell::RefCell::new(vec![f64::INFINITY; ASSIGN_N]);
        let timed = best_interleaved_n(
            ASSIGN_WARMUP,
            ASSIGN_REPEATS,
            &mut [
                &mut || {
                    nearest.borrow_mut().fill(f64::INFINITY);
                    black_box(dense_relax_rounds(
                        &space,
                        &centers,
                        &mut nearest.borrow_mut(),
                    ));
                },
                &mut || {
                    nearest.borrow_mut().fill(f64::INFINITY);
                    black_box(
                        grid_relax_rounds(&space, &members, &centers, &mut nearest.borrow_mut())
                            .expect("clustered f64 instance buckets fine"),
                    );
                },
                &mut || {
                    black_box(dense_assign_scan(&space, &centers));
                },
                &mut || {
                    black_box(grid_assign_scan(&space, &centers).expect("center set buckets fine"));
                },
            ],
        );
        // Relax blocks are k scans; assign blocks are one k-candidate scan.
        let dense_relax_ns = timed[0] / ASSIGN_K as u128;
        let grid_relax_ns = timed[1] / ASSIGN_K as u128;
        let dense_assign_ns = timed[2];
        let grid_assign_ns = timed[3];
        eprintln!(
            "assign n={ASSIGN_N} d={dim:>2} k={ASSIGN_K}: relax dense {dense_relax_ns} ns/scan vs grid {grid_relax_ns} ns/scan ({:.2}x); assign dense {dense_assign_ns} ns vs grid {grid_assign_ns} ns ({:.2}x)",
            dense_relax_ns as f64 / grid_relax_ns as f64,
            dense_assign_ns as f64 / grid_assign_ns as f64,
        );
        assign_rows.push((
            dim,
            dense_relax_ns,
            grid_relax_ns,
            dense_assign_ns,
            grid_assign_ns,
        ));
    }

    let mut crossover_rows = Vec::new();
    for &dim in &ASSIGN_DIMS {
        let space = VecSpace::from_flat(clustered_flat::<f64>(CROSS_N, dim, 25, 43));
        let max_k = *CROSS_KS.iter().max().expect("CROSS_KS is non-empty");
        let all_centers = gonzalez_centers(&space, max_k);
        let mut dense_ns = Vec::new();
        let mut grid_ns = Vec::new();
        for &k in &CROSS_KS {
            let centers = all_centers[..k].to_vec();
            let timed = best_interleaved_n(
                ASSIGN_WARMUP,
                ASSIGN_REPEATS,
                &mut [
                    &mut || {
                        black_box(dense_assign_scan(&space, &centers));
                    },
                    &mut || {
                        black_box(
                            grid_assign_scan(&space, &centers).expect("center set buckets fine"),
                        );
                    },
                ],
            );
            dense_ns.push(timed[0]);
            grid_ns.push(timed[1]);
        }
        let crossover_k = CROSS_KS
            .iter()
            .zip(dense_ns.iter().zip(grid_ns.iter()))
            .find(|(_, (d, g))| g < d)
            .map(|(&k, _)| k);
        eprintln!(
            "crossover d={dim:>2} (n={CROSS_N}): dense {dense_ns:?} vs grid {grid_ns:?} -> grid wins from k = {crossover_k:?}"
        );
        crossover_rows.push((dim, dense_ns, grid_ns, crossover_k));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"benchmark\": \"nearest-center scan (relax + argmax, one Gonzalez iteration)\",\n",
    );
    json.push_str("  \"baseline_fresh\": \"Vec<Point>, per-point heap Vecs allocated sequentially (allocator best case), sqrt per pair, two passes\",\n");
    json.push_str("  \"baseline_aged\": \"Vec<Point>, allocation order shuffled (parallel-generator / aged-heap layout), sqrt per pair, two passes\",\n");
    json.push_str("  \"candidate\": \"FlatPoints SoA rows, fused squared-distance kernel (relax_all_max), f64 and f32 storage; *_simd columns rerun the same scan under the dispatched width-pinned kernel backend\",\n");
    let _ = writeln!(
        json,
        "  \"metric\": \"best-of-{REPEATS} interleaved wall nanoseconds per full n-point scan, {SCANS} consecutive scans per timed block ({WARMUP} warm-up rounds)\","
    );
    let _ = writeln!(
        json,
        "  \"host_cores\": {threads},\n  \"threads\": {threads},\n  \"host_note\": \"available_parallelism of the measuring host; single-vCPU containers understate the par_* rows\","
    );
    let _ = writeln!(
        json,
        "  \"kernel\": \"{simd_kernel}\",\n  \"kernel_note\": \"dispatched backend of the *_simd_ns columns (KCENTER_KERNEL resolution; flat_ns/flat_f32_ns pin the scalar kernels)\","
    );
    json.push_str("  \"results\": [\n");
    for (
        i,
        (n, dim, fresh_ns, aged_ns, flat_ns, par_ns, f32_ns, f32_par_ns, simd_ns, f32_simd_ns),
    ) in rows.iter().enumerate()
    {
        let _ = write!(
            json,
            "    {{\"n\": {n}, \"dim\": {dim}, \"old_fresh_ns\": {fresh_ns}, \"old_aged_ns\": {aged_ns}, \"flat_ns\": {flat_ns}, \"flat_par_ns\": {par_ns}, \"flat_f32_ns\": {f32_ns}, \"flat_f32_par_ns\": {f32_par_ns}, \"flat_simd_ns\": {simd_ns}, \"flat_f32_simd_ns\": {f32_simd_ns}, \"speedup_vs_fresh\": {:.3}, \"speedup_vs_aged\": {:.3}, \"speedup_par_vs_aged\": {:.3}, \"speedup_f32_vs_f64\": {:.3}, \"speedup_simd_vs_scalar\": {:.3}, \"speedup_f32_simd_vs_f64_scalar\": {:.3}}}",
            *fresh_ns as f64 / *flat_ns as f64,
            *aged_ns as f64 / *flat_ns as f64,
            *aged_ns as f64 / *par_ns as f64,
            *flat_ns as f64 / *f32_ns as f64,
            *flat_ns as f64 / *simd_ns as f64,
            *flat_ns as f64 / *f32_simd_ns as f64,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    // ---- Grid-vs-dense assignment sections.
    json.push_str("  \"assign\": \"dense flat scans vs the kcenter_metric::grid spatial-grid arm (KCENTER_ASSIGN / --assign); both arms under the dispatched kernel backend, results bit-identical by construction\",\n");
    json.push_str("  \"assign_benchmark\": \"clustered workload (25 uniform cluster centres, spread side/50), candidates from a farthest-point traversal (the spread distribution solvers actually produce): per-scan relax cost over a k-round Gonzalez loop (grid build charged to the loop) and one k-candidate assignment scan (grid build charged to the scan)\",\n");
    json.push_str("  \"assign_results\": [\n");
    for (i, (dim, dense_relax_ns, grid_relax_ns, dense_assign_ns, grid_assign_ns)) in
        assign_rows.iter().enumerate()
    {
        let _ = write!(
            json,
            "    {{\"n\": {ASSIGN_N}, \"dim\": {dim}, \"k\": {ASSIGN_K}, \"dense_relax_ns\": {dense_relax_ns}, \"grid_relax_ns\": {grid_relax_ns}, \"relax_speedup\": {:.3}, \"dense_assign_ns\": {dense_assign_ns}, \"grid_assign_ns\": {grid_assign_ns}, \"assign_speedup\": {:.3}}}",
            *dense_relax_ns as f64 / *grid_relax_ns as f64,
            *dense_assign_ns as f64 / *grid_assign_ns as f64,
        );
        json.push_str(if i + 1 < assign_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"assign_crossover_note\": \"per dimension, the smallest probed candidate count at which the grid assignment scan beats the dense one; AssignChoice::Auto's constants in kcenter_metric::grid::auto_mode are read from these records\",\n");
    json.push_str("  \"assign_crossover\": [\n");
    for (i, (dim, dense_ns, grid_ns, crossover_k)) in crossover_rows.iter().enumerate() {
        let ks: Vec<String> = CROSS_KS.iter().map(|k| k.to_string()).collect();
        let dense: Vec<String> = dense_ns.iter().map(|t| t.to_string()).collect();
        let grid: Vec<String> = grid_ns.iter().map(|t| t.to_string()).collect();
        let _ = write!(
            json,
            "    {{\"n\": {CROSS_N}, \"dim\": {dim}, \"ks\": [{}], \"dense_assign_ns\": [{}], \"grid_assign_ns\": [{}], \"crossover_k\": {}}}",
            ks.join(", "),
            dense.join(", "),
            grid.join(", "),
            crossover_k.map_or("null".to_string(), |k| k.to_string()),
        );
        json.push_str(if i + 1 < crossover_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");

    // ---- Sweep-via-coreset vs per-cell EIM reruns (build once, solve a
    // (k, phi) grid).  Both sides are charged in the paper's simulated-time
    // metric; the scan rows above keep their fresh/aged heap baselines
    // untouched (ROADMAP "heap-layout honesty").
    let mut sweeps: Vec<SweepComparison> = Vec::new();
    let gau100k = DatasetSpec::Gau {
        n: 100_000,
        k_prime: 25,
    };
    let gau50k = DatasetSpec::Gau {
        n: 50_000,
        k_prime: 25,
    };
    sweeps.push(sweep_row::<f64>(
        &gau100k,
        &[10, 25, 50],
        &[1.0, 4.0, 8.0],
        SweepBuilder::Gonzalez { t: 1_000 },
    ));
    sweeps.push(sweep_row::<f32>(
        &gau100k,
        &[10, 25, 50],
        &[1.0, 4.0, 8.0],
        SweepBuilder::Gonzalez { t: 1_000 },
    ));
    // The EIM builder's weight round costs a dense O(n·|C|) pass that a
    // single rerun never pays, so it amortises over a *bigger* grid than
    // the Gonzalez builder does — benchmarked at 5×5.
    sweeps.push(sweep_row::<f64>(
        &gau50k,
        &[2, 3, 5, 8, 10],
        &[1.0, 2.0, 4.0, 6.0, 8.0],
        SweepBuilder::Eim,
    ));
    sweeps.push(sweep_row::<f32>(
        &gau50k,
        &[2, 3, 5, 8, 10],
        &[1.0, 2.0, 4.0, 6.0, 8.0],
        SweepBuilder::Eim,
    ));

    // ---- Executor A/B (ISSUE 8): the same MRG job on the simulated
    // executor and on real threads, per worker budget.  Outputs are
    // verified bit-identical on every row; only the wall clock is allowed
    // to move, and on a single-core host the threaded rows are *expected*
    // to pay scope spawn/join overhead — recorded, not hidden.
    let mut budgets = vec![1usize, threads];
    budgets.dedup();
    let executor_cmp: ExecutorComparison = run_executor_comparison(&gau100k, 42, 25, 50, &budgets);
    assert!(
        executor_cmp.all_bit_identical(),
        "executor determinism contract violated"
    );
    for run in &executor_cmp.runs {
        eprintln!(
            "executor {} ({} threads, host {threads} cores): {} rounds, simulated {:.1}ms, sequential {:.1}ms, wall {:.1}ms, bit_identical {}",
            run.executor,
            run.executor.thread_count(),
            run.rounds,
            run.simulated.as_secs_f64() * 1e3,
            run.sequential.as_secs_f64() * 1e3,
            run.wall.as_secs_f64() * 1e3,
            run.bit_identical,
        );
    }

    json.push_str("  \"executor_benchmark\": \"one MRG job (GAU 100k, k=25, 50 machines) per executor: the paper's sequential simulated mode vs std::thread::scope fan-out per worker budget; outputs verified bit-identical on every row — the timing columns are measurements\",\n");
    json.push_str("  \"executor_note\": \"wall_ns is real concurrent elapsed round time; on a 1-core host the threaded rows pay spawn/join overhead with no parallelism to buy it back — compare wall_ns against the simulated executor's row, not against simulated_ns\",\n");
    json.push_str("  \"executor_results\": [\n");
    for (i, run) in executor_cmp.runs.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"n\": {}, \"k\": {}, \"machines\": {}, \"executor\": \"{}\", \"threads\": {}, \"host_cores\": {threads}, \"rounds\": {}, \"simulated_ns\": {}, \"sequential_ns\": {}, \"wall_ns\": {}, \"radius\": {:.6}, \"bit_identical\": {}}}",
            executor_cmp.workload,
            executor_cmp.n,
            executor_cmp.k,
            executor_cmp.machines,
            run.executor.name(),
            run.executor.thread_count(),
            run.rounds,
            run.simulated.as_nanos(),
            run.sequential.as_nanos(),
            run.wall.as_nanos(),
            run.radius,
            run.bit_identical,
        );
        json.push_str(if i + 1 < executor_cmp.runs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");

    json.push_str("  \"sweep_benchmark\": \"build one weighted coreset, solve a (k, phi) grid on it, vs rerunning EIM per cell; simulated = paper's per-round max machine time\",\n");
    json.push_str("  \"sweep_results\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"n\": {}, \"precision\": \"{}\", \"builder\": \"{}\", \"coreset_size\": {}, \"construction_radius\": {:.6}, \"build_rounds\": {}, \"grid_cells\": {}, \"build_simulated_ns\": {}, \"solve_simulated_ns\": {}, \"sweep_simulated_ns\": {}, \"eim_reruns_simulated_ns\": {}, \"sweep_wall_ns\": {}, \"eim_reruns_wall_ns\": {}, \"simulated_speedup\": {:.3}, \"max_radius_ratio\": {:.4}}}",
            s.workload,
            s.n,
            s.precision,
            s.builder,
            s.coreset_size,
            s.construction_radius,
            s.build_rounds,
            s.cells.len(),
            s.build_simulated.as_nanos(),
            s.solve_simulated.as_nanos(),
            s.sweep_simulated().as_nanos(),
            s.eim_simulated.as_nanos(),
            s.sweep_wall.as_nanos(),
            s.eim_wall.as_nanos(),
            s.simulated_speedup(),
            s.max_radius_ratio,
        );
        json.push_str(if i + 1 < sweeps.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_flat.json");
    println!("wrote {out_path}");
}

/// One sweep comparison at the report's fixed cluster shape (the paper's
/// 50 machines, ε = 0.1, seed 42), with a progress line on stderr.
fn sweep_row<S: Scalar>(
    spec: &DatasetSpec,
    ks: &[usize],
    phis: &[f64],
    builder: SweepBuilder,
) -> SweepComparison {
    let s = run_sweep_comparison::<S>(spec, 42, ks, phis, builder, 50, 0.1);
    eprintln!(
        "sweep {} {} {}: coreset t={} built in {} rounds, simulated {:.1}ms + solves {:.1}ms vs eim reruns {:.1}ms ({:.2}x), worst radius ratio {:.3}",
        s.workload,
        s.precision,
        s.builder,
        s.coreset_size,
        s.build_rounds,
        s.build_simulated.as_secs_f64() * 1e3,
        s.solve_simulated.as_secs_f64() * 1e3,
        s.eim_simulated.as_secs_f64() * 1e3,
        s.simulated_speedup(),
        s.max_radius_ratio,
    );
    s
}
